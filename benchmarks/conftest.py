"""Shared benchmark infrastructure.

Every figure/table benchmark computes its rows once (via
``benchmark.pedantic(..., rounds=1)``), prints the regenerated table,
records it to ``benchmarks/results/<name>.json`` and asserts the shape
criteria from DESIGN.md.  Absolute numbers come from the calibrated DES
(the paper's testbed is unavailable); EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: The evaluation models of §6.1.
MODELS = (
    "efficientnet-b7",
    "googlenet",
    "inception-v3",
    "mnasnet",
    "mobilenet-v3",
    "resnet-152",
    "resnet-50",
)


def record_result(name: str, payload) -> None:
    """Persist one experiment's regenerated rows for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one figure's data as an aligned text table."""
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print(f"\n=== {title}")
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def cost_model():
    from repro.simulation import CostModel

    return CostModel()
