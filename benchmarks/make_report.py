"""Consolidate benchmarks/results/*.json into a markdown report.

Run after the benchmark suite::

    pytest benchmarks/ --benchmark-only
    python benchmarks/make_report.py          # writes results/REPORT.md

The report mirrors EXPERIMENTS.md's structure but with the *current*
machine's regenerated numbers, so drift between code and documentation
is visible at a glance.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS = Path(__file__).parent / "results"

__all__ = ["build_report", "main"]


def _load(name: str) -> dict | list | None:
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _range(values) -> str:
    values = list(values)
    return f"{min(values):.2f}..{max(values):.2f}"


def _pct_range(values) -> str:
    values = [v * 100 for v in values]
    return f"{min(values):.1f}%..{max(values):.1f}%"


def build_report() -> str:
    """Render the consolidated markdown report."""
    lines = [
        "# Regenerated evaluation report",
        "",
        "Produced by `python benchmarks/make_report.py` from the JSON",
        "written by the latest `pytest benchmarks/ --benchmark-only` run.",
        "",
    ]

    fig9 = _load("fig9_partitioning")
    if fig9:
        lines += ["## Figure 9 — random-balanced partitioning", ""]
        lines += ["| model | parts | seq tput | seq lat | pipe tput | pipe lat |",
                  "|---|---|---|---|---|---|"]
        for model, per_model in sorted(fig9.items()):
            for count, r in sorted(per_model.items(), key=lambda kv: int(kv[0])):
                lines.append(
                    f"| {model} | {count} | {r['seq_tput']:.2f}x | {r['seq_lat']:.2f}x "
                    f"| {r['pipe_tput']:.2f}x | {r['pipe_lat']:.2f}x |"
                )
        lines.append("")

    fig10 = _load("fig10_enc_checkpoint")
    if fig10:
        lines += ["## Figure 10 — encryption + checkpoint overhead", ""]
        seq = [m["seq"]["overhead_enc_slow"] for m in fig10.values()]
        pipe = [m["pipe"]["overhead_enc_slow"] for m in fig10.values()]
        lines += [
            f"- sequential slow-path overhead across models: {_pct_range(seq)}",
            f"- pipelined slow-path overhead across models: {_pct_range(pipe)}",
            "",
        ]

    for name, title, metric in (
        ("fig11_horizontal", "Figure 11 — horizontal scaling (pipe tput)", "pipe_tput"),
        ("fig12_vertical", "Figure 12 — vertical scaling (pipe tput)", "pipe_tput"),
        ("fig14_real_setup", "Figure 14 — real setup (pipe tput)", "pipe_tput"),
    ):
        data = _load(name)
        if not data:
            continue
        lines += [f"## {title}", ""]
        configs = sorted({k for m in data.values() for k in m})
        lines += ["| model | " + " | ".join(str(c) for c in configs) + " |",
                  "|---" * (len(configs) + 1) + "|"]
        for model, per_model in sorted(data.items()):
            row = [model] + [
                f"{per_model[c][metric]:.2f}x" if c in per_model else "-" for c in configs
            ]
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")

    fig13 = _load("fig13_async")
    if fig13:
        lines += ["## Figure 13 — async cross-validation gains", ""]
        seq = [m["seq"]["tput_gain"] for m in fig13.values()]
        pipe = [m["pipe"]["tput_gain"] for m in fig13.values()]
        lines += [
            f"- sequential throughput gain: {_pct_range(seq)}",
            f"- pipelined throughput gain: {_pct_range(pipe)}",
            "",
        ]

    table1 = _load("table1_cve_defense")
    if table1:
        triggered = [r for r in table1 if r["triggered"]]
        detected = [r for r in triggered if r["detected"]]
        lines += [
            "## Table 1 — CVE defense",
            "",
            f"- catalogued CVEs: {len(table1)}; exercisable on the test model: "
            f"{len(triggered)}; detected: {len(detected)}",
            "",
        ]

    accuracy = _load("security_accuracy")
    if accuracy:
        lines += [
            "## Accuracy depletion (FrameFlip)",
            "",
            f"- unprotected single TEE agreement: {accuracy['unprotected_agreement'] * 100:.1f}%",
            f"- MVTEE agreement: {accuracy['protected_agreement'] * 100:.1f}%",
            "",
        ]

    ext = _load("ext_transformer")
    if ext:
        lines += ["## Extension — transformer trunk", ""]
        for count, r in sorted(ext["partitioning"].items(), key=lambda kv: int(kv[0])):
            lines.append(
                f"- {count} partitions: balance {r['balance']:.2f}, "
                f"pipe {r['pipe_tput']:.2f}x"
            )
        lines.append("")

    cluster = _load("BENCH_cluster")
    if cluster:
        lines += [
            "## Serving — process cluster vs in-process",
            "",
            "| mode | rps | p50 | p95 |",
            "|---|---|---|---|",
        ]
        for mode in ("inprocess", "process_cluster"):
            r = cluster.get(mode)
            if r:
                lines.append(
                    f"| {mode} | {r['rps']:.2f} | {r['p50_ms']:.0f} ms "
                    f"| {r['p95_ms']:.0f} ms |"
                )
        lines += [
            "",
            f"- outputs bit-identical across modes: {cluster.get('outputs_equal')}",
            "",
        ]

    inflight = _load("BENCH_inflight")
    if inflight:
        serial = inflight["serial"]
        overlapped = inflight["overlapped"]
        lines += [
            "## Serving — concurrent micro-batches",
            "",
            f"- serial ({serial['num_workers']} worker): {serial['rps']:.2f} rps, "
            f"p95 {serial['p95_ms']:.0f} ms",
            f"- overlapped ({overlapped['num_workers']} workers): "
            f"{overlapped['rps']:.2f} rps, p95 {overlapped['p95_ms']:.0f} ms",
            f"- throughput speedup: {inflight['rps_speedup']:.2f}x, "
            f"p95 improvement: {inflight['p95_improvement']:.2f}x",
            "",
        ]

    fleet = _load("BENCH_fleet")
    if fleet:
        lines += [
            "## Serving — multi-tenant isolation under burst",
            "",
            "| phase | tenant | offered rps | served | shed | p99 |",
            "|---|---|---|---|---|---|",
        ]
        for phase in ("baseline", "burst"):
            for tenant, r in sorted(fleet.get(phase, {}).items()):
                lines.append(
                    f"| {phase} | {tenant} | {r['offered_rps']:.0f} | {r['served']} "
                    f"| {r['shed']} | {r['p99_ms']:.0f} ms |"
                )
        lines += [
            "",
            f"- victim-tenant p99 regression under neighbour burst: "
            f"{fleet['alpha_p99_regression']:.2f}x",
            "",
        ]

    chaos = _load("BENCH_chaos")
    if chaos:
        lines += [
            "## Chaos — SLO floor under fault campaign",
            "",
            f"- campaign passed: {chaos['passed']} "
            f"(seed {chaos['seed']}, {len(chaos['verdicts'])} injections, "
            f"baseline p99 {(chaos.get('baseline_p99_s') or 0) * 1000:.0f} ms)",
            "",
            "| injection | class | outcome | culprit | recovery |",
            "|---|---|---|---|---|",
        ]
        for v in chaos["verdicts"]:
            recovery = (
                f"{v['recovery_s']:.2f}s" if v.get("recovery_s") is not None else "—"
            )
            culprit = {True: "yes", False: "WRONG", None: "n/a"}[v.get("culprit_correct")]
            lines.append(
                f"| {v['name']} | {v['fault_class']} | {v['outcome']} "
                f"| {culprit} | {recovery} |"
            )
        silent = sum(v["silent_corruptions"] for v in chaos["verdicts"])
        lines += ["", f"- silent corruptions across the campaign: {silent}", ""]

    return "\n".join(lines)


def main() -> int:
    """Write results/REPORT.md."""
    if not RESULTS.exists():
        print("no results/ directory; run the benchmark suite first")
        return 1
    report = build_report()
    (RESULTS / "REPORT.md").write_text(report)
    print(f"wrote {RESULTS / 'REPORT.md'} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
