"""Ablations of the design choices DESIGN.md calls out.

1. Random-balanced contraction vs a naive equal-count chain split:
   balance quality (the slowest stage bounds pipelined throughput).
2. Unanimous vs majority voting under a single faulty variant:
   detection vs availability trade-off.
3. Bulk AEAD choice: vectorized ChaCha20-Poly1305 vs pure-Python
   AES-GCM record throughput (why bulk records default to the former).
4. Two-stage bootstrap surface: second-stage manifests expose strictly
   fewer syscalls/files than a single-stage equivalent would.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_table, record_result

from repro.crypto.aead import get_aead
from repro.mvx import MvteeSystem, ResponseAction
from repro.mvx.monitor import MonitorError
from repro.partition import balance_score, find_balanced_partition, slice_by_indices
from repro.runtime.faults import FaultInjector
from repro.variants.manifests import variant_manifests
from repro.variants.spec import VariantSpec
from repro.zoo import build_model


def test_ablation_partitioning_vs_chain_split(benchmark):
    """Random-balanced contraction should beat naive equal-count slicing."""

    def compute():
        rows = []
        for name in ("googlenet", "resnet-50", "mobilenet-v3"):
            model = build_model(name, input_size=96)
            order_len = len(model.nodes)
            cuts = [int(order_len * (i + 1) / 5) - 1 for i in range(4)]
            naive = slice_by_indices(model, cuts)
            balanced = find_balanced_partition(model, 5, restarts=4, seed=0)
            rows.append(
                {
                    "model": name,
                    "naive_balance": balance_score(naive),
                    "contraction_balance": balance_score(balanced),
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Ablation: balance score (max stage cost / ideal; lower is better)",
        ["model", "naive chain split", "random-balanced contraction"],
        [[r["model"], f"{r['naive_balance']:.2f}", f"{r['contraction_balance']:.2f}"] for r in rows],
    )
    record_result("ablation_partitioning", rows)
    # Contraction wins in aggregate and dramatically on branchy models
    # (GoogleNet's inception modules defeat position-based slicing); on
    # architectures with near-uniform block costs (ResNet) a naive split
    # can tie -- randomized search still bounds the worst case.
    naive = [r["naive_balance"] for r in rows]
    balanced = [r["contraction_balance"] for r in rows]
    assert sum(balanced) < sum(naive)
    googlenet = next(r for r in rows if r["model"] == "googlenet")
    assert googlenet["contraction_balance"] < googlenet["naive_balance"] - 0.5
    assert all(b < 1.6 for b in balanced)


def test_ablation_voting_strategies(benchmark):
    """Unanimity detects but halts; majority detects and keeps serving."""

    def outcome_for(voting: str) -> dict:
        from repro.mvx.config import MvxConfig

        model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
        system = MvteeSystem.deploy(
            model,
            num_partitions=3,
            config=MvxConfig.selective(3, {1: 3}, voting=voting),
            seed=0,
            verify_partitions=False,
            verify_variants=False,
        )
        system.monitor.response_action = ResponseAction.DROP_VARIANT
        connection = system.monitor.stage_connections(1)[0]
        FaultInjector(connection.host.runtime).arm_backend_bitflip(bit=30)
        feeds = {
            "input": np.random.default_rng(0).normal(size=(1, 3, 16, 16)).astype(np.float32)
        }
        completed = True
        try:
            system.infer(feeds)
        except MonitorError:
            completed = False
        return {
            "voting": voting,
            "detected": bool(system.monitor.divergence_events()),
            "completed": completed,
            "survivors": len(system.monitor.stage_connections(1)),
        }

    rows = benchmark.pedantic(
        lambda: [outcome_for(v) for v in ("unanimous", "majority", "plurality")],
        rounds=1,
        iterations=1,
    )
    print_table(
        "Ablation: voting strategy under one corrupted variant (of 3)",
        ["voting", "detected", "batch completed", "survivors"],
        [[r["voting"], r["detected"], r["completed"], r["survivors"]] for r in rows],
    )
    record_result("ablation_voting", rows)
    by_name = {r["voting"]: r for r in rows}
    for row in rows:
        assert row["detected"], row  # every strategy detects
    # Majority/plurality keep serving after dropping the dissenter.
    assert by_name["majority"]["completed"]
    assert by_name["plurality"]["completed"]
    assert by_name["majority"]["survivors"] == 2


def test_ablation_bulk_aead_throughput(benchmark):
    """Vectorized ChaCha20-Poly1305 must beat pure-Python AES-GCM by >10x."""

    payload = np.random.default_rng(0).bytes(512 * 1024)

    def measure() -> dict:
        rates = {}
        for name, size in (("chacha20-poly1305", len(payload)), ("aes-gcm", 64 * 1024)):
            aead = get_aead(name, bytes(32))
            data = payload[:size]
            start = time.perf_counter()
            aead.encrypt(bytes(12), data)
            elapsed = time.perf_counter() - start
            rates[name] = size / elapsed / 1e6  # MB/s
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: bulk record AEAD throughput",
        ["aead", "MB/s"],
        [[k, f"{v:.2f}"] for k, v in rates.items()],
    )
    record_result("ablation_aead", rates)
    assert rates["chacha20-poly1305"] > 10 * rates["aes-gcm"]


def test_ablation_update_policy(benchmark):
    """Fresh-TEE updates (the paper's policy) vs hypothetical enclave reuse."""
    from conftest import MODELS

    from repro.graph.flops import parameter_bytes
    from repro.simulation import CostModel
    from repro.simulation.scenarios import cached_model
    from repro.simulation.updates import full_update_cost, partial_update_cost

    cost = CostModel()

    def compute():
        rows = []
        for name in ("mobilenet-v3", "resnet-152"):
            model = cached_model(name)
            artifact_bytes = parameter_bytes(model) // 5  # one partition's share
            partial = partial_update_cost(cost, variants=3, artifact_bytes=artifact_bytes)
            full = full_update_cost(cost, total_variants=9, artifact_bytes=artifact_bytes)
            rows.append(
                {
                    "model": name,
                    "partial_fresh_s": partial.fresh_total,
                    "partial_reuse_s": partial.reuse_total,
                    "full_fresh_s": full.fresh_total,
                    "premium_s": partial.soundness_premium,
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Ablation: update policy cost (seconds)",
        ["model", "partial fresh", "partial reuse", "full fresh", "soundness premium"],
        [
            [r["model"], f"{r['partial_fresh_s']:.2f}", f"{r['partial_reuse_s']:.2f}",
             f"{r['full_fresh_s']:.2f}", f"{r['premium_s']:.2f}"]
            for r in rows
        ],
    )
    record_result("ablation_update_policy", rows)
    for row in rows:
        # Fresh TEEs cost more (the premium the paper accepts)...
        assert row["partial_fresh_s"] > row["partial_reuse_s"]
        # ...but partial updates stay far cheaper than full reshuffles.
        assert row["partial_fresh_s"] < row["full_fresh_s"]
        # The premium is bounded: a few seconds per replaced variant.
        assert row["premium_s"] <= 3 * 2.0


def test_ablation_two_stage_surface(benchmark):
    """The second-stage manifest strictly shrinks the attack surface."""

    def measure() -> dict:
        spec = VariantSpec(variant_id="surface", partition_index=0)
        init_manifest, second_manifest = variant_manifests(spec)
        return {
            "init_syscalls": len(init_manifest.syscalls),
            "second_syscalls": len(second_manifest.syscalls),
            "second_env_vars": len(second_manifest.env_allowlist),
            "exec_in_second": "exec" in second_manifest.syscalls,
            "network_setup_in_second": "connect" in second_manifest.syscalls,
        }

    surface = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: two-stage attack-surface reduction",
        ["metric", "value"],
        [[k, v] for k, v in surface.items()],
    )
    record_result("ablation_two_stage", surface)
    assert surface["second_syscalls"] < surface["init_syscalls"]
    assert surface["second_env_vars"] == 0
    assert not surface["exec_in_second"]
    assert not surface["network_setup_in_second"]
