"""Chaos campaign against a live process cluster: the asserted SLO floor.

Not a paper figure: this benchmarks the `repro.chaos` subsystem end to
end.  A small-resnet deployment (MVX(3) on every partition, each
variant in its own worker process) serves open-loop traffic while a
seeded multi-fault campaign runs against it -- a crashing Table-1 CVE,
a SIGKILLed worker, a transient shared-memory outage and Rowhammer-style
weight flips.  The floor, per injection:

- detected with correct culprit attribution, or masked by voting;
- zero silent corruptions anywhere in the campaign;
- p99 back under the recovery budget after every worker loss;
- the flight-recorder hash chain intact throughout.

Replay identity is asserted too: a fresh campaign with the same seed
resolves the identical injection plan.  Writes
``benchmarks/results/BENCH_chaos.json``.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table, record_result

from repro.attacks.cves import TABLE1_CVES
from repro.chaos import (
    ChaosCampaign,
    CveInjector,
    ShmStarvationInjector,
    WeightFlipInjector,
    WorkerKillInjector,
)
from repro.cluster import RestartPolicy
from repro.mvx import MvteeSystem, ResponseAction
from repro.serving.engine import ServingPolicy
from repro.zoo import build_model

SEED = 7
CRASH_CVE = next(
    c for c in TABLE1_CVES if c.crashes and c.vulnerable_op == "Conv"
)


def deploy() -> MvteeSystem:
    system = MvteeSystem.deploy(
        build_model("small-resnet", input_size=16, blocks_per_stage=1),
        num_partitions=3,
        mvx_partitions={0: 3, 1: 3, 2: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
        execution="process",
        restart_policy=RestartPolicy(max_restarts=10, window_s=60.0),
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    return system


def roster():
    return [
        CveInjector(case=CRASH_CVE),
        WorkerKillInjector(),
        ShmStarvationInjector(),
        WeightFlipInjector(),
    ]


def campaign_for(system, engine) -> ChaosCampaign:
    feeds = {
        "input": np.random.default_rng(0)
        .normal(size=(1, 3, 16, 16))
        .astype(np.float32)
    }
    return ChaosCampaign(
        system,
        engine,
        roster(),
        benign_feeds=feeds,
        seed=SEED,
        window_s=1.5,
        settle_s=0.3,
        recovery_timeout_s=15.0,
        rate_rps=5.0,
        deadline_s=3.0,
    )


def compute() -> dict:
    system = deploy()
    try:
        engine = system.serving_engine(policy=ServingPolicy(num_workers=2))
        campaign = campaign_for(system, engine)
        plan = [p.to_json() for p in campaign.plan()]
        # Replay identity: a fresh campaign over the same deployment and
        # seed must resolve the identical injection plan.
        replay = campaign_for(
            system, system.serving_engine(policy=ServingPolicy(num_workers=2))
        )
        replay_plan = [p.to_json() for p in replay.plan()]
        report = campaign.run()
    finally:
        system.shutdown()
    payload = report.to_json()
    payload["model"] = "small-resnet"
    payload["execution"] = "process"
    payload["replay_identical"] = plan == replay_plan
    return payload


def test_chaos_campaign(benchmark):
    payload = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_table(
        f"Chaos campaign: seed {payload['seed']}, "
        f"{len(payload['verdicts'])} injections, "
        f"baseline p99 {payload['baseline_p99_s'] * 1e3:.0f} ms",
        ["injection", "class", "outcome", "culprit", "recovery_s"],
        [
            [
                v["name"],
                v["fault_class"],
                v["outcome"],
                str(v["culprit_correct"]),
                f"{v['recovery_s']:.2f}" if v["recovery_s"] is not None else "-",
            ]
            for v in payload["verdicts"]
        ],
    )
    record_result("BENCH_chaos", payload)

    # The SLO floor, per injection and in aggregate.
    assert payload["passed"], [v for v in payload["verdicts"] if not v["passed"]]
    assert len(payload["verdicts"]) == 4
    assert all(
        v["outcome"] in ("detected", "masked") for v in payload["verdicts"]
    )
    assert sum(v["silent_corruptions"] for v in payload["verdicts"]) == 0
    assert all(v["chain_ok"] for v in payload["verdicts"])
    # Every worker loss recovered within the restart budget: ``recovered``
    # means the rolling p99 dropped back under ``recovery_budget_s``
    # (seconds of latency) before the campaign's recovery timeout;
    # ``recovery_s`` is how long that took in wall-clock terms.
    kill = next(v for v in payload["verdicts"] if v["fault_class"] == "worker-kill")
    assert kill["recovered"] and kill["recovery_s"] is not None
    # Every injection window's served traffic stayed clean.
    assert all(v["counts"].get("corrupt", 0) == 0 for v in payload["verdicts"])
    # Same seed, same plan.
    assert payload["replay_identical"]
