"""In-process vs process-cluster throughput on a replicated CNN.

Not a paper figure: this benchmarks the `repro.cluster` subsystem.  The
same request stream runs through two deployments of a CNN zoo model
with MVX(3) on the middle partition, whose replicas model heavy
diversified variants (20 ms of GIL-releasing latency each):

1. *in-process* -- the default execution, serial replica dispatch: the
   checkpoint waits for the sum of the three replica latencies;
2. *process cluster* -- each variant host forked into its own worker
   process, replicas dispatched concurrently through the cluster's
   :class:`ProcessDispatcher`: the checkpoint waits only for the
   slowest replica.

Outputs must be identical; the cluster must match or beat in-process
throughput (the replica sleeps release the GIL, so the overlap wins
even on a single core -- `cpu_count` is recorded with the results).
Writes ``benchmarks/results/BENCH_cluster.json`` (requests/s, p95).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import print_table, record_result

from repro.mvx import InferenceOptions, MvteeSystem, ResponseAction, SchedulingMode
from repro.zoo import build_model

NUM_REQUESTS = 10
NUM_VARIANTS = 3
REPLICA_LATENCY_S = 0.02


def build_cnn():
    return build_model("small-resnet", input_size=16, blocks_per_stage=1)


def feeds_for(seed: int) -> dict[str, np.ndarray]:
    return {
        "input": np.random.default_rng(seed)
        .normal(size=(1, 3, 16, 16))
        .astype(np.float32)
    }


def deploy(execution: str) -> MvteeSystem:
    system = MvteeSystem.deploy(
        build_cnn(),
        num_partitions=3,
        mvx_partitions={1: NUM_VARIANTS},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
        execution=execution,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    if system.cluster is not None:
        for connection in system.monitor.stage_connections(1):
            system.cluster.worker(connection.variant_id).configure(
                simulated_latency=REPLICA_LATENCY_S, realtime_latency=True
            )
    else:
        for connection in system.monitor.stage_connections(1):
            connection.host.simulated_latency = REPLICA_LATENCY_S
            connection.host.realtime_latency = True
    return system


def timed_stream(system, options) -> tuple[list[dict], list[float]]:
    """Run the request stream one at a time, timing each request."""
    outputs, latencies = [], []
    for seed in range(NUM_REQUESTS):
        start = time.monotonic()
        outputs.append(system.infer(feeds_for(seed), options))
        latencies.append(time.monotonic() - start)
    return outputs, latencies


def summarize(latencies: list[float]) -> dict:
    return {
        "requests": len(latencies),
        "wall_s": sum(latencies),
        "rps": len(latencies) / sum(latencies),
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p95_ms": float(np.percentile(latencies, 95)) * 1e3,
    }


def compute() -> dict:
    inprocess = deploy("inprocess")
    serial_outputs, serial_latencies = timed_stream(
        inprocess, InferenceOptions(scheduling=SchedulingMode.SEQUENTIAL)
    )

    cluster_system = deploy("process")
    try:
        dispatcher = cluster_system.cluster.dispatcher(max_workers=NUM_VARIANTS + 1)
        with dispatcher:
            cluster_outputs, cluster_latencies = timed_stream(
                cluster_system,
                InferenceOptions(
                    scheduling=SchedulingMode.SEQUENTIAL, dispatcher=dispatcher
                ),
            )
        live_workers = cluster_system.cluster.live_worker_count()
    finally:
        cluster_system.shutdown()

    name = next(iter(serial_outputs[0]))
    outputs_equal = all(
        np.allclose(serial[name], clustered[name])
        for serial, clustered in zip(serial_outputs, cluster_outputs)
    )
    return {
        "model": "small-resnet",
        "num_variants": NUM_VARIANTS,
        "replica_latency_ms": REPLICA_LATENCY_S * 1e3,
        "cpu_count": os.cpu_count(),
        "outputs_equal": outputs_equal,
        "live_workers_after_run": live_workers,
        "inprocess": summarize(serial_latencies),
        "process_cluster": summarize(cluster_latencies),
    }


def test_cluster_scaling(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    serial, clustered = results["inprocess"], results["process_cluster"]
    print_table(
        f"Cluster scaling: {NUM_VARIANTS} replicas, "
        f"{results['replica_latency_ms']:.0f} ms each, "
        f"{results['cpu_count']} core(s)",
        ["execution", "rps", "p50_ms", "p95_ms"],
        [
            ["in-process", f"{serial['rps']:.1f}", f"{serial['p50_ms']:.1f}",
             f"{serial['p95_ms']:.1f}"],
            ["process-cluster", f"{clustered['rps']:.1f}",
             f"{clustered['p50_ms']:.1f}", f"{clustered['p95_ms']:.1f}"],
        ],
    )
    record_result("BENCH_cluster", results)

    assert results["outputs_equal"], "process-cluster execution changed outputs"
    assert results["live_workers_after_run"] == NUM_VARIANTS + 2, (
        "workers did not survive the benchmark run"
    )
    # Concurrent worker dispatch must at least match serial in-process
    # dispatch; with overlapping replica latencies it should win outright.
    assert clustered["rps"] >= serial["rps"], (
        f"process cluster slower than in-process: "
        f"{clustered['rps']:.1f} < {serial['rps']:.1f} rps"
    )
    assert clustered["p95_ms"] <= serial["p95_ms"], (
        f"process cluster p95 regressed: "
        f"{clustered['p95_ms']:.1f} > {serial['p95_ms']:.1f} ms"
    )
