"""Extension experiment: MVTEE on a Foundation-Model trunk (§7.4).

The paper's future work proposes running large Foundation Models in CPU
TEEs under MVTEE.  This benchmark applies the Figure-9/12 methodology to
a GPT-2-small-dimension transformer: random-balanced partitioning, fast
path vs selective MVX, sequential vs pipelined -- checking that the
CNN-derived relationships carry over to attention workloads.
"""

from __future__ import annotations

from conftest import print_table, record_result

from repro.graph.flops import graph_flops
from repro.mvx.config import MvxConfig
from repro.partition.balance import balance_score, find_balanced_partition
from repro.simulation import CostModel, simulate
from repro.simulation.scenarios import baseline_result, plan_from_partition_set
from repro.zoo import build_model

PARTITION_COUNTS = (2, 5, 9)


def compute_transformer_rows(cost_model) -> dict:
    model = build_model("gpt-small-sim")
    base = baseline_result(model, cost_model, input_size=128 * 768 * 4)
    results: dict = {"flops": graph_flops(model), "partitioning": {}, "selective": {}}
    for count in PARTITION_COUNTS:
        partition_set = find_balanced_partition(model, count, restarts=2, seed=0)
        stages = plan_from_partition_set(partition_set, MvxConfig.uniform(count, 1))
        seq = simulate(stages, cost_model, pipelined=False).normalized_to(base)
        pipe = simulate(stages, cost_model, pipelined=True).normalized_to(base)
        results["partitioning"][count] = {
            "balance": balance_score(partition_set),
            "seq_tput": seq[0],
            "pipe_tput": pipe[0],
            "pipe_lat": pipe[1],
        }
    partition_set = find_balanced_partition(model, 5, restarts=2, seed=0)
    for label, mvx in (("1-MVX", {2: 3}), ("3-MVX", {2: 3, 3: 3, 4: 3})):
        config = MvxConfig.selective(5, mvx, execution_mode="async")
        stages = plan_from_partition_set(partition_set, config)
        seq = simulate(
            stages, cost_model, pipelined=False, execution_mode="async"
        ).normalized_to(base)
        pipe = simulate(
            stages, cost_model, pipelined=True, execution_mode="async"
        ).normalized_to(base)
        results["selective"][label] = {
            "seq_tput": seq[0],
            "pipe_tput": pipe[0],
            "pipe_lat": pipe[1],
        }
    return results


def test_ext_transformer(benchmark, cost_model):
    results = benchmark.pedantic(
        lambda: compute_transformer_rows(cost_model), rounds=1, iterations=1
    )
    print_table(
        "Extension: gpt-small-sim partitioning (normalized to single TEE)",
        ["partitions", "balance", "seq tput", "pipe tput", "pipe lat"],
        [
            [count, f"{r['balance']:.2f}", f"{r['seq_tput']:.2f}x",
             f"{r['pipe_tput']:.2f}x", f"{r['pipe_lat']:.2f}x"]
            for count, r in results["partitioning"].items()
        ],
    )
    print_table(
        "Extension: selective MVX on the transformer (async, 5 partitions)",
        ["config", "seq tput", "pipe tput", "pipe lat"],
        [
            [label, f"{r['seq_tput']:.2f}x", f"{r['pipe_tput']:.2f}x", f"{r['pipe_lat']:.2f}x"]
            for label, r in results["selective"].items()
        ],
    )
    record_result("ext_transformer", results)

    rows = results["partitioning"]
    # The CNN relationships carry over: pipelining wins, scales with stages.
    for count in PARTITION_COUNTS:
        assert rows[count]["pipe_tput"] > 1.3
        assert rows[count]["seq_tput"] <= 1.02
    assert rows[9]["pipe_tput"] > rows[2]["pipe_tput"]
    # Balance finding: the indivisible LM-head projection (d_model x vocab,
    # ~30% of total FLOPs) bounds fine-grained balance -- at 9 partitions
    # the best score approaches that single node's share, and pipelined
    # throughput plateaus accordingly (2.77x at 5 parts vs 2.75x at 9).
    assert rows[2]["balance"] < 1.5
    assert rows[5]["balance"] < 2.0
    assert rows[9]["balance"] < 3.0
    plateau = rows[9]["pipe_tput"] / rows[5]["pipe_tput"]
    assert 0.8 < plateau < 1.2  # extra partitions stop helping
    # Selective MVX remains profitable in the pipeline.
    assert results["selective"]["1-MVX"]["pipe_tput"] > 1.2
