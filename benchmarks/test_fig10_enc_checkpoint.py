"""Figure 10: encryption and checkpoint overheads.

Paper result (5 partitions; baseline = no encryption + full fast path):
- encryption + checkpointing cost 13.6%..50.7% in sequential execution
  and an even higher proportion -- 50.4%..93.6% -- in pipelined execution
  (the monitor serves every checkpoint of every in-flight batch);
- the fast path mitigates the overall overhead (up to 28.3% sequential /
  86.5% pipelined in the paper's configurations);
- overheads hit small models (MobileNet, MnasNet) hardest.
"""

from __future__ import annotations

from conftest import MODELS, print_table, record_result

from repro.mvx.config import MvxConfig
from repro.simulation import simulate
from repro.simulation.scenarios import cached_partition, plan_from_partition_set

NUM_PARTITIONS = 5


def compute_fig10(cost_model) -> dict:
    results: dict = {}
    fast_cfg = MvxConfig.uniform(NUM_PARTITIONS, 1, path_mode="fast")
    slow_cfg = MvxConfig.uniform(NUM_PARTITIONS, 1, path_mode="slow")
    for name in MODELS:
        partition_set = cached_partition(name, NUM_PARTITIONS)
        fast_plan = plan_from_partition_set(partition_set, fast_cfg)
        slow_plan = plan_from_partition_set(partition_set, slow_cfg)
        per_model = {}
        for mode, pipelined in (("seq", False), ("pipe", True)):
            base = simulate(fast_plan, cost_model, pipelined=pipelined, encrypted=False)
            enc_fast = simulate(fast_plan, cost_model, pipelined=pipelined, encrypted=True)
            enc_slow = simulate(slow_plan, cost_model, pipelined=pipelined, encrypted=True)
            per_model[mode] = {
                "overhead_enc_slow": base.throughput / enc_slow.throughput - 1,
                "overhead_enc_fast": base.throughput / enc_fast.throughput - 1,
            }
        results[name] = per_model
    return results


def test_fig10_encryption_checkpointing(benchmark, cost_model):
    results = benchmark.pedantic(lambda: compute_fig10(cost_model), rounds=1, iterations=1)
    rows = []
    for name, per_model in results.items():
        for mode in ("seq", "pipe"):
            slow = per_model[mode]["overhead_enc_slow"]
            fast = per_model[mode]["overhead_enc_fast"]
            mitigation = (slow - fast) / slow * 100 if slow > 0 else 0.0
            rows.append(
                [name, mode, f"{slow * 100:.1f}%", f"{fast * 100:.1f}%", f"{mitigation:.1f}%"]
            )
    print_table(
        "Figure 10: enc+checkpoint overhead vs (no-enc, fast-path) baseline",
        ["model", "mode", "slow-path overhead", "fast-path overhead", "fast mitigates"],
        rows,
    )
    record_result("fig10_enc_checkpoint", results)

    for name, per_model in results.items():
        seq = per_model["seq"]
        pipe = per_model["pipe"]
        # Checkpointing costs something everywhere...
        assert seq["overhead_enc_slow"] > 0
        # ...more than encryption alone (fast path mitigates)...
        assert seq["overhead_enc_fast"] < seq["overhead_enc_slow"]
        assert pipe["overhead_enc_fast"] < pipe["overhead_enc_slow"]
        # ...and proportionally more in pipelined execution (the paper's
        # central observation for this figure).
        assert pipe["overhead_enc_slow"] > seq["overhead_enc_slow"]
    # Small models suffer the most.
    small = results["mobilenet-v3"]["seq"]["overhead_enc_slow"]
    large = results["resnet-152"]["seq"]["overhead_enc_slow"]
    assert small > large
