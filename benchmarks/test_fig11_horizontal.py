"""Figure 11: horizontal variant scaling under selective MVX.

Paper result (5 partitions, scaling the 3rd partition to 1/3/5 variants):
- sequential: scaling overhead small next to the partitioning overhead;
- pipelined: the 1->3 step (fast->slow path transition) costs visibly
  more than the 3->5 step;
- all pipelined settings still beat the original model (>=1.6x
  throughput, <=0.7x latency in the paper).
"""

from __future__ import annotations

from conftest import MODELS, print_table, record_result

from repro.mvx.config import MvxConfig
from repro.simulation import simulate
from repro.simulation.scenarios import (
    baseline_result,
    cached_model,
    cached_partition,
    plan_from_partition_set,
)

NUM_PARTITIONS = 5
SCALED_PARTITION = 2  # the 3rd partition
VARIANT_COUNTS = (1, 3, 5)


def compute_fig11(cost_model) -> dict:
    results: dict = {}
    for name in MODELS:
        model = cached_model(name)
        base = baseline_result(model, cost_model)
        partition_set = cached_partition(name, NUM_PARTITIONS)
        per_model = {}
        for count in VARIANT_COUNTS:
            config = MvxConfig.selective(NUM_PARTITIONS, {SCALED_PARTITION: count})
            stages = plan_from_partition_set(partition_set, config)
            seq = simulate(stages, cost_model, pipelined=False).normalized_to(base)
            pipe = simulate(stages, cost_model, pipelined=True).normalized_to(base)
            per_model[count] = {
                "seq_tput": seq[0],
                "seq_lat": seq[1],
                "pipe_tput": pipe[0],
                "pipe_lat": pipe[1],
            }
        results[name] = per_model
    return results


def test_fig11_horizontal_scaling(benchmark, cost_model):
    results = benchmark.pedantic(lambda: compute_fig11(cost_model), rounds=1, iterations=1)
    rows = []
    for name, per_model in results.items():
        for count, r in per_model.items():
            rows.append(
                [name, f"{count} var", f"{r['seq_tput']:.2f}x", f"{r['seq_lat']:.2f}x",
                 f"{r['pipe_tput']:.2f}x", f"{r['pipe_lat']:.2f}x"]
            )
    print_table(
        "Figure 11: horizontal scaling of partition 3 (normalized)",
        ["model", "variants", "seq tput", "seq lat", "pipe tput", "pipe lat"],
        rows,
    )
    record_result("fig11_horizontal", results)

    for name, per_model in results.items():
        # Sequential: the incremental cost of 1->5 variants is bounded by
        # the partitioning overhead itself (paper: "negligible compared
        # to the partitioning-caused overhead").
        partitioning_overhead = 1 - per_model[1]["seq_tput"]
        scaling_overhead = per_model[1]["seq_tput"] - per_model[5]["seq_tput"]
        assert scaling_overhead < max(partitioning_overhead, 0.08) + 0.25, name
        # Pipelined: the fast->slow transition (1->3) costs at least as
        # much as adding more variants (3->5).
        step_activation = per_model[1]["pipe_tput"] - per_model[3]["pipe_tput"]
        step_widening = per_model[3]["pipe_tput"] - per_model[5]["pipe_tput"]
        assert step_activation >= step_widening - 0.05, name
        # Pipelined always beats the original model.
        for count in VARIANT_COUNTS:
            assert per_model[count]["pipe_tput"] > 1.2, (name, count)
            assert per_model[count]["pipe_lat"] < 0.85, (name, count)
