"""Figure 12: vertical variant scaling under selective MVX.

Paper result (5 partitions, 3 variants per MVX-enabled partition; MVX on
the 3rd partition / the 3rd-5th partitions / all five):
- sequential: >=0.4x throughput, <=2.5x latency for 1- and 3-MVX; the
  full 5-MVX configuration drops further (paper ~0.3x, >3x for most);
- pipelined: selective MVX (1/3 partitions) generally still beats the
  original; retaining original performance under full MVX is hard
  (paper 0.2x..1.0x throughput).
"""

from __future__ import annotations

from conftest import MODELS, print_table, record_result

from repro.mvx.config import MvxConfig
from repro.simulation import simulate
from repro.simulation.scenarios import (
    baseline_result,
    cached_model,
    cached_partition,
    plan_from_partition_set,
)

NUM_PARTITIONS = 5
CONFIGS = {
    "1-MVX": {2: 3},
    "3-MVX": {2: 3, 3: 3, 4: 3},
    "5-MVX": {i: 3 for i in range(NUM_PARTITIONS)},
}


def compute_fig12(cost_model) -> dict:
    results: dict = {}
    for name in MODELS:
        model = cached_model(name)
        base = baseline_result(model, cost_model)
        partition_set = cached_partition(name, NUM_PARTITIONS)
        per_model = {}
        for label, mvx in CONFIGS.items():
            config = MvxConfig.selective(NUM_PARTITIONS, mvx)
            stages = plan_from_partition_set(partition_set, config)
            seq = simulate(stages, cost_model, pipelined=False).normalized_to(base)
            pipe = simulate(stages, cost_model, pipelined=True).normalized_to(base)
            per_model[label] = {
                "seq_tput": seq[0],
                "seq_lat": seq[1],
                "pipe_tput": pipe[0],
                "pipe_lat": pipe[1],
            }
        results[name] = per_model
    return results


def test_fig12_vertical_scaling(benchmark, cost_model):
    results = benchmark.pedantic(lambda: compute_fig12(cost_model), rounds=1, iterations=1)
    rows = []
    for name, per_model in results.items():
        for label, r in per_model.items():
            rows.append(
                [name, label, f"{r['seq_tput']:.2f}x", f"{r['seq_lat']:.2f}x",
                 f"{r['pipe_tput']:.2f}x", f"{r['pipe_lat']:.2f}x"]
            )
    print_table(
        "Figure 12: vertical scaling, 3 variants per MVX partition (normalized)",
        ["model", "config", "seq tput", "seq lat", "pipe tput", "pipe lat"],
        rows,
    )
    record_result("fig12_vertical", results)

    for name, per_model in results.items():
        # Sequential bands for 1-/3-MVX (paper: >=0.4x tput, <=2.5x lat).
        for label in ("1-MVX", "3-MVX"):
            assert per_model[label]["seq_tput"] >= 0.38, (name, label)
            assert per_model[label]["seq_lat"] <= 2.6, (name, label)
        # Monotone degradation with MVX coverage.
        assert (
            per_model["1-MVX"]["seq_tput"]
            >= per_model["3-MVX"]["seq_tput"]
            >= per_model["5-MVX"]["seq_tput"]
        ), name
        # Pipelined: selective MVX beats the baseline; full MVX does not
        # exceed it meaningfully (early synchronization stalls the pipe).
        assert per_model["1-MVX"]["pipe_tput"] > 1.3, name
        assert per_model["5-MVX"]["pipe_tput"] < per_model["3-MVX"]["pipe_tput"], name
        assert per_model["5-MVX"]["pipe_tput"] <= 1.1, name
