"""Figure 13: asynchronous cross-validation execution mode.

Paper result (5 partitions, MVX on the 2nd and 3rd partitions with 3
variants each, one TVM variant with complex diversification lagging):
- async vs sync throughput: +5.2%..+34.2% sequential, +3.1%..+17.8%
  pipelined;
- async vs sync latency: -5%..-25.6% sequential, -3.1%..-15.2% pipelined.
"""

from __future__ import annotations

from conftest import MODELS, print_table, record_result

from repro.mvx.config import MvxConfig
from repro.simulation import RUNTIME_FACTORS, simulate
from repro.simulation.scenarios import cached_partition, plan_from_partition_set

NUM_PARTITIONS = 5
MVX_PARTITIONS = {1: 3, 2: 3}  # the 2nd and 3rd partitions
LAGGING = [
    RUNTIME_FACTORS["ort"],
    RUNTIME_FACTORS["tvm"],
    RUNTIME_FACTORS["tvm-complex"],
]


def compute_fig13(cost_model) -> dict:
    results: dict = {}
    factors = {index: list(LAGGING) for index in MVX_PARTITIONS}
    for name in MODELS:
        partition_set = cached_partition(name, NUM_PARTITIONS)
        config = MvxConfig.selective(NUM_PARTITIONS, MVX_PARTITIONS)
        stages = plan_from_partition_set(partition_set, config, variant_factors=factors)
        per_model = {}
        for mode, pipelined in (("seq", False), ("pipe", True)):
            sync = simulate(stages, cost_model, pipelined=pipelined, execution_mode="sync")
            asyn = simulate(stages, cost_model, pipelined=pipelined, execution_mode="async")
            per_model[mode] = {
                "tput_gain": asyn.throughput / sync.throughput - 1,
                "lat_gain": asyn.avg_latency / sync.avg_latency - 1,
            }
        results[name] = per_model
    return results


def test_fig13_async_cross_validation(benchmark, cost_model):
    results = benchmark.pedantic(lambda: compute_fig13(cost_model), rounds=1, iterations=1)
    rows = []
    for name, per_model in results.items():
        for mode in ("seq", "pipe"):
            rows.append(
                [name, mode,
                 f"+{per_model[mode]['tput_gain'] * 100:.1f}%",
                 f"{per_model[mode]['lat_gain'] * 100:+.1f}%"]
            )
    print_table(
        "Figure 13: async vs sync cross-validation (one lagging TVM variant)",
        ["model", "mode", "throughput gain", "latency change"],
        rows,
    )
    record_result("fig13_async", results)

    for name, per_model in results.items():
        # Async never loses and strictly helps in sequential execution
        # where the laggard otherwise gates every checkpoint.
        assert per_model["seq"]["tput_gain"] > 0.03, name
        assert per_model["seq"]["lat_gain"] < -0.02, name
        assert per_model["pipe"]["tput_gain"] >= -0.01, name
        # Sequential gains exceed pipelined gains (pipelining already
        # overlaps some of the laggard's delay).
        assert per_model["seq"]["tput_gain"] > per_model["pipe"]["tput_gain"], name
