"""Figure 14: MVTEE performance in a real-world (heterogeneous) setup.

Paper result (ORT + TVM variants with multi-level diversification,
async execution, 3 variants per MVX partition; MVX on the 3rd partition
or on the 3rd-5th partitions):
- sequential: 0.4x..0.8x throughput (1 MVX partition), 0.4x..0.6x
  (3 MVX partitions); latency +18.7%..+128.5% / +64.4%..+176%;
- pipelined: +82.4%..+209.4% throughput, -45.1%..-67.7% latency with
  1 MVX partition; 0.855x..1.108x throughput with 3 MVX partitions
  ("comparable performance when the majority of the model is hardened").
"""

from __future__ import annotations

from conftest import MODELS, print_table, record_result

from repro.mvx.config import MvxConfig
from repro.simulation import RUNTIME_FACTORS, simulate
from repro.simulation.scenarios import (
    baseline_result,
    cached_model,
    cached_partition,
    plan_from_partition_set,
)

NUM_PARTITIONS = 5
HETEROGENEOUS = [RUNTIME_FACTORS["ort"], RUNTIME_FACTORS["tvm"], 0.8]
CONFIGS = {
    "1-MVX": {2: 3},
    "3-MVX": {2: 3, 3: 3, 4: 3},
}


def compute_fig14(cost_model) -> dict:
    results: dict = {}
    for name in MODELS:
        model = cached_model(name)
        base = baseline_result(model, cost_model)
        partition_set = cached_partition(name, NUM_PARTITIONS)
        per_model = {}
        for label, mvx in CONFIGS.items():
            config = MvxConfig.selective(NUM_PARTITIONS, mvx, execution_mode="async")
            factors = {index: list(HETEROGENEOUS) for index in mvx}
            stages = plan_from_partition_set(partition_set, config, variant_factors=factors)
            seq = simulate(
                stages, cost_model, pipelined=False, execution_mode="async"
            ).normalized_to(base)
            pipe = simulate(
                stages, cost_model, pipelined=True, execution_mode="async"
            ).normalized_to(base)
            per_model[label] = {
                "seq_tput": seq[0],
                "seq_lat": seq[1],
                "pipe_tput": pipe[0],
                "pipe_lat": pipe[1],
            }
        results[name] = per_model
    return results


def test_fig14_real_setup(benchmark, cost_model):
    results = benchmark.pedantic(lambda: compute_fig14(cost_model), rounds=1, iterations=1)
    rows = []
    for name, per_model in results.items():
        for label, r in per_model.items():
            rows.append(
                [name, label, f"{r['seq_tput']:.2f}x", f"{r['seq_lat']:.2f}x",
                 f"{r['pipe_tput']:.2f}x", f"{r['pipe_lat']:.2f}x"]
            )
    print_table(
        "Figure 14: heterogeneous real setup, async execution (normalized)",
        ["model", "config", "seq tput", "seq lat", "pipe tput", "pipe lat"],
        rows,
    )
    record_result("fig14_real_setup", results)

    for name, per_model in results.items():
        one, three = per_model["1-MVX"], per_model["3-MVX"]
        # Sequential bands: acceptable overhead, monotone in MVX coverage.
        assert 0.35 <= one["seq_tput"] <= 1.0, name
        assert three["seq_tput"] <= one["seq_tput"] + 1e-6, name
        assert three["seq_tput"] >= 0.35, name
        # Pipelined with 1 MVX partition clearly beats the original model.
        assert one["pipe_tput"] > 1.4, name
        assert one["pipe_lat"] < 0.75, name
        # With 3 MVX partitions (majority of the model hardened) the
        # pipeline stays comparable to the original.
        assert three["pipe_tput"] > 0.8, name
        assert three["pipe_lat"] < 1.5, name
