"""Figure 9: performance impact of random-balanced partitioning.

Paper result (fast path, replicated ORT variants, batch 1):
- sequential: throughput -1.7%..-62.2%, latency +1.7%..+164.3%,
  worsening with partition count;
- pipelined: throughput 1.7x..5.4x, latency -63.4%..-84.4%.

Workload: each evaluation model partitioned into 2..9 random-balanced
partitions, single variant per partition, full fast path, encrypted
transfers; baseline is the unpartitioned model in one TEE.
"""

from __future__ import annotations

from conftest import MODELS, print_table, record_result

from repro.mvx.config import MvxConfig
from repro.simulation import simulate
from repro.simulation.scenarios import (
    baseline_result,
    cached_model,
    cached_partition,
    plan_from_partition_set,
)

PARTITION_COUNTS = (2, 3, 5, 7, 9)


def compute_fig9(cost_model) -> dict:
    results: dict = {}
    for name in MODELS:
        model = cached_model(name)
        base = baseline_result(model, cost_model)
        per_model = {}
        for count in PARTITION_COUNTS:
            partition_set = cached_partition(name, count)
            stages = plan_from_partition_set(partition_set, MvxConfig.uniform(count, 1))
            seq = simulate(stages, cost_model, pipelined=False).normalized_to(base)
            pipe = simulate(stages, cost_model, pipelined=True).normalized_to(base)
            per_model[count] = {
                "seq_tput": seq[0],
                "seq_lat": seq[1],
                "pipe_tput": pipe[0],
                "pipe_lat": pipe[1],
            }
        results[name] = per_model
    return results


def test_fig9_partitioning(benchmark, cost_model):
    results = benchmark.pedantic(lambda: compute_fig9(cost_model), rounds=1, iterations=1)
    rows = []
    for name, per_model in results.items():
        for count, r in per_model.items():
            rows.append(
                [name, count, f"{r['seq_tput']:.2f}x", f"{r['seq_lat']:.2f}x",
                 f"{r['pipe_tput']:.2f}x", f"{r['pipe_lat']:.2f}x"]
            )
    print_table(
        "Figure 9: random-balanced partitioning (normalized to original model)",
        ["model", "parts", "seq tput", "seq lat", "pipe tput", "pipe lat"],
        rows,
    )
    record_result("fig9_partitioning", results)

    for name, per_model in results.items():
        # Sequential overhead grows with partition count (throughput falls).
        tputs = [per_model[c]["seq_tput"] for c in PARTITION_COUNTS]
        assert all(t <= 1.02 for t in tputs), f"{name}: partitioning should not speed up seq"
        assert tputs[-1] <= tputs[0] + 1e-6, f"{name}: seq tput should fall with partitions"
        # Pipelined execution beats the baseline everywhere.
        for count in PARTITION_COUNTS:
            assert per_model[count]["pipe_tput"] > 1.3, f"{name}@{count}: pipeline must win"
            assert per_model[count]["pipe_lat"] < 0.75, f"{name}@{count}: pipeline latency must drop"
    # Paper's headline pipelined band: 1.7x..5.4x at the partition counts
    # it evaluates; our sweep must land in a comparable region.
    all_pipe = [
        per_model[c]["pipe_tput"] for per_model in results.values() for c in PARTITION_COUNTS
    ]
    assert max(all_pipe) > 3.0
    assert min(all_pipe) > 1.3
