"""Fleet fairness benchmark: one tenant bursts, the other keeps its SLO.

Not a paper figure: this benchmarks the fleet's weighted-fair admission.
Two identical tenants serve paced open-loop streams through one
:class:`~repro.fleet.ModelFleet` front door.  In the baseline run both
offer the same steady rate inside their quotas; in the burst run tenant
``bravo`` fires 4x its offered load while ``alpha`` keeps its pace.
The per-tenant token buckets must confine the damage: every shed lands
on ``bravo`` (the burster), ``alpha`` sheds nothing, and ``alpha``'s
p99 latency regresses by less than 25% versus the baseline.
"""

from __future__ import annotations

import threading
import time

import numpy as np
from conftest import print_table, record_result

from repro.fleet import ModelFleet, TenantSpec
from repro.serving import Overloaded, ServingPolicy, percentile

#: Paced per-tenant offered load (requests/second) inside quota.  The
#: pure-python RA-TLS channel crypto costs ~60 ms of GIL per request,
#: so aggregate capacity is ~15 rps; 2 x 4 rps keeps the baseline
#: comfortably unsaturated.
STEADY_RPS = 4.0
#: The burst multiplier applied to bravo's offered load.
BURST_FACTOR = 4
#: Per-tenant sustained quota; bravo's burst (16 rps) exceeds it.
QUOTA_RPS = 6.0
#: Seconds of quota a tenant may save up (bucket capacity 3 tokens).
BURST_WINDOW_S = 0.5
#: Open-loop stream length per run.
DURATION_S = 6.0
#: Simulated per-replica latency on the MVX partition.  Realtime
#: sleeps release the GIL, so service time is dominated by a stable,
#: overlappable wait rather than by scheduler-sensitive compute.
REPLICA_LATENCY_S = 0.15


def build_fleet() -> ModelFleet:
    fleet = ModelFleet(
        quota_rps_per_weight=QUOTA_RPS, burst_s=BURST_WINDOW_S
    )
    for name in ("alpha", "bravo"):
        fleet.register(
            TenantSpec(
                name=name,
                model="tiny-mlp",
                mvx_partitions={1: 2},
                verify_partitions=False,
                verify_variants=False,
                policy=ServingPolicy(
                    capacity=64,
                    max_batch_size=4,
                    max_wait_s=0.001,
                    num_workers=2,
                ),
            )
        )
        system = fleet.tenant(name).system
        for connection in system.monitor.stage_connections(1):
            connection.host.simulated_latency = REPLICA_LATENCY_S
            connection.host.realtime_latency = True
    return fleet


def feeds_for(seed: int) -> dict[str, np.ndarray]:
    return {
        "input": np.random.default_rng(seed)
        .standard_normal((1, 32))
        .astype(np.float32)
    }


def paced_stream(fleet: ModelFleet, tenant: str, rps: float) -> dict:
    """Submit open-loop at ``rps`` for DURATION_S; returns outcome stats."""
    interval = 1.0 / rps
    latencies: list[float] = []
    lock = threading.Lock()
    shed = 0
    failed = 0
    submitted = 0
    start = time.monotonic()
    next_fire = start
    seed = 0
    while next_fire < start + DURATION_S:
        now = time.monotonic()
        if now < next_fire:
            time.sleep(next_fire - now)
        next_fire += interval
        submitted += 1
        fired = time.monotonic()
        try:
            ticket = fleet.submit(tenant, feeds_for(seed))
        except Overloaded:
            shed += 1
            continue
        seed += 1

        def stamp(t, fired=fired):
            nonlocal failed
            with lock:
                if t.exception(timeout=0) is None:
                    latencies.append(time.monotonic() - fired)
                else:
                    failed += 1

        ticket.add_done_callback(stamp)
    # Let the tail of admitted requests finish before reading latencies.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        with lock:
            if len(latencies) + failed + shed >= submitted:
                break
        time.sleep(0.01)
    with lock:
        return {
            "tenant": tenant,
            "offered_rps": rps,
            "submitted": submitted,
            "served": len(latencies),
            "shed": shed,
            "failed": failed,
            "p50_ms": percentile(latencies, 50) * 1e3,
            "p95_ms": percentile(latencies, 95) * 1e3,
            "p99_ms": percentile(latencies, 99) * 1e3,
        }


def run_once(bravo_rps: float) -> dict:
    """One fresh fleet, both tenants streaming concurrently."""
    fleet = build_fleet()
    try:
        results: dict[str, dict] = {}

        def client(tenant: str, rps: float) -> None:
            results[tenant] = paced_stream(fleet, tenant, rps)

        threads = [
            threading.Thread(target=client, args=("alpha", STEADY_RPS)),
            threading.Thread(target=client, args=("bravo", bravo_rps)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results
    finally:
        fleet.shutdown()


def compute() -> dict:
    baseline = run_once(bravo_rps=STEADY_RPS)
    burst = run_once(bravo_rps=STEADY_RPS * BURST_FACTOR)
    return {
        "steady_rps": STEADY_RPS,
        "burst_factor": BURST_FACTOR,
        "quota_rps": QUOTA_RPS,
        "burst_window_s": BURST_WINDOW_S,
        "duration_s": DURATION_S,
        "replica_latency_ms": REPLICA_LATENCY_S * 1e3,
        "baseline": baseline,
        "burst": burst,
        "alpha_p99_regression": (
            burst["alpha"]["p99_ms"] / baseline["alpha"]["p99_ms"]
            if baseline["alpha"]["p99_ms"] > 0
            else 1.0
        ),
    }


def test_fleet_fairness(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for run_name in ("baseline", "burst"):
        for tenant in ("alpha", "bravo"):
            row = results[run_name][tenant]
            rows.append(
                [
                    run_name,
                    tenant,
                    f"{row['offered_rps']:.0f}",
                    row["submitted"],
                    row["served"],
                    row["shed"],
                    f"{row['p50_ms']:.1f}",
                    f"{row['p99_ms']:.1f}",
                ]
            )
    print_table(
        "Fleet fairness: bravo bursts 4x, alpha keeps its SLO",
        ["run", "tenant", "rps", "sub", "served", "shed", "p50_ms", "p99_ms"],
        rows,
    )
    record_result("BENCH_fleet", results)

    baseline, burst = results["baseline"], results["burst"]
    # All shedding lands on the burster …
    assert burst["alpha"]["shed"] == 0, (
        f"steady tenant was shed {burst['alpha']['shed']} times during "
        f"bravo's burst"
    )
    assert burst["bravo"]["shed"] > 0, (
        "bursting tenant was never shed; quota did not engage"
    )
    assert baseline["alpha"]["shed"] == baseline["bravo"]["shed"] == 0, (
        "baseline run shed inside-quota traffic"
    )
    # … nothing fails …
    for run in (baseline, burst):
        for tenant in ("alpha", "bravo"):
            assert run[tenant]["failed"] == 0, (
                f"{tenant} had failures: {run[tenant]}"
            )
    # … and the steady tenant's tail barely moves (<25% regression, with
    # a small absolute allowance for scheduler jitter on tiny latencies).
    limit_ms = max(
        baseline["alpha"]["p99_ms"] * 1.25,
        baseline["alpha"]["p99_ms"] + 5.0,
    )
    assert burst["alpha"]["p99_ms"] <= limit_ms, (
        f"steady tenant p99 regressed past 25%: "
        f"{baseline['alpha']['p99_ms']:.1f} ms -> "
        f"{burst['alpha']['p99_ms']:.1f} ms"
    )
