"""In-flight batch overlap benchmark: num_workers=4 vs num_workers=1.

Not a paper figure: this benchmarks the `ServingPolicy.num_workers`
engine worker pool that overlaps micro-batches through the pipeline
(the paper's §4.3 pipelined execution model applied across batches).
One request stream is served twice through identical deployments --
strictly serial batch execution (`num_workers=1`) and four batches in
flight (`num_workers=4`).  With replicas modelling 20 ms of
GIL-releasing variant latency, the serial engine queues every batch
behind the previous one while the overlapped engine keeps four in the
pipeline, so both throughput (rps) and tail latency (p95) must improve
-- and every ticket's outputs must stay bit-identical, because overlap
may never change what a caller receives.
"""

from __future__ import annotations

import threading
import time

import numpy as np
from conftest import print_table, record_result

from repro.mvx import MvteeSystem, ResponseAction
from repro.serving import ServingPolicy, TicketState, percentile
from repro.zoo import build_model

NUM_REQUESTS = 16
MAX_BATCH_SIZE = 2
REPLICA_LATENCY_S = 0.02


def deploy() -> MvteeSystem:
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    system = MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    for connection in system.monitor.stage_connections(1):
        connection.host.simulated_latency = REPLICA_LATENCY_S
        connection.host.realtime_latency = True
    return system


def feeds_for(seed: int) -> dict[str, np.ndarray]:
    return {
        "input": np.random.default_rng(seed)
        .normal(size=(1, 3, 16, 16))
        .astype(np.float32)
    }


def serve_stream(num_workers: int) -> dict:
    """One open-loop burst through a fresh deployment; per-ticket stats."""
    system = deploy()
    engine = system.serving_engine(
        policy=ServingPolicy(
            capacity=NUM_REQUESTS * 2,
            max_batch_size=MAX_BATCH_SIZE,
            max_wait_s=0.001,
            num_workers=num_workers,
        )
    )
    completions: dict[int, float] = {}
    stamp_lock = threading.Lock()

    def stamp(ticket):
        with stamp_lock:
            completions[ticket.ticket_id] = time.monotonic()

    with engine:
        start = time.monotonic()
        tickets = []
        for seed in range(NUM_REQUESTS):
            ticket = engine.submit(feeds_for(seed))
            ticket.add_done_callback(stamp)
            tickets.append(ticket)
        outputs = [ticket.result(timeout=120.0) for ticket in tickets]
        # Every ticket was submitted at ~start, so its completion stamp
        # is the request's latency under this worker count.
        latencies_s = [completions[t.ticket_id] - start for t in tickets]
        wall_s = max(latencies_s)
    assert all(t.state is TicketState.DONE for t in tickets)
    return {
        "num_workers": num_workers,
        "wall_s": wall_s,
        "rps": NUM_REQUESTS / wall_s,
        "p50_ms": percentile(latencies_s, 50) * 1e3,
        "p95_ms": percentile(latencies_s, 95) * 1e3,
        "outputs": outputs,
        "stall_observations": engine.registry.histogram(
            "mvtee_batch_queue_stall_seconds",
            "Seconds a formed batch waited past max_wait_s for a free worker",
        ).count(),
    }


def compute() -> dict:
    serial = serve_stream(num_workers=1)
    overlapped = serve_stream(num_workers=4)
    name = next(iter(serial["outputs"][0]))
    bit_identical = all(
        set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)
        for a, b in zip(serial["outputs"], overlapped["outputs"])
    )
    for row in (serial, overlapped):
        row.pop("outputs")
    return {
        "requests": NUM_REQUESTS,
        "max_batch_size": MAX_BATCH_SIZE,
        "replica_latency_ms": REPLICA_LATENCY_S * 1e3,
        "output_tensor": name,
        "bit_identical_outputs": bit_identical,
        "serial": serial,
        "overlapped": overlapped,
        "rps_speedup": overlapped["rps"] / serial["rps"],
        "p95_improvement": serial["p95_ms"] / overlapped["p95_ms"],
    }


def test_inflight_overlap(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    serial, overlapped = results["serial"], results["overlapped"]
    print_table(
        "Serving: in-flight batch overlap (16 requests, 20 ms replicas)",
        ["num_workers", "wall_s", "rps", "p50_ms", "p95_ms"],
        [
            [
                row["num_workers"],
                f"{row['wall_s']:.3f}",
                f"{row['rps']:.1f}",
                f"{row['p50_ms']:.1f}",
                f"{row['p95_ms']:.1f}",
            ]
            for row in (serial, overlapped)
        ],
    )
    record_result("BENCH_inflight", results)

    # Shape criteria: overlap must win on throughput AND tail latency …
    assert overlapped["rps"] > serial["rps"], (
        f"num_workers=4 did not beat num_workers=1 on rps: "
        f"{overlapped['rps']:.1f} <= {serial['rps']:.1f}"
    )
    assert overlapped["p95_ms"] < serial["p95_ms"], (
        f"num_workers=4 did not beat num_workers=1 on p95: "
        f"{overlapped['p95_ms']:.1f} >= {serial['p95_ms']:.1f}"
    )
    # … without changing a single output bit.
    assert results["bit_identical_outputs"], "overlap changed ticket outputs"
