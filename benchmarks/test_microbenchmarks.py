"""Microbenchmarks of MVTEE's real (non-simulated) primitives.

These time the actual library code paths with pytest-benchmark's normal
multi-round machinery: contraction speed, RA-TLS record protection,
checkpoint consistency evaluation, the end-to-end bootstrap, and a real
MVX inference on a small model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.aead import get_aead
from repro.mvx import MvteeSystem
from repro.mvx.consistency import ConsistencyPolicy
from repro.partition import ContractionSettings, random_contraction
from repro.zoo import build_model


@pytest.fixture(scope="module")
def resnet50_small():
    return build_model("resnet-50", input_size=64)


@pytest.fixture(scope="module")
def deployed():
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    return MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )


def test_bench_random_contraction(benchmark, resnet50_small):
    result = benchmark(
        lambda: random_contraction(resnet50_small, ContractionSettings(5, seed=0))
    )
    assert len(result) == 5


def test_bench_record_protection_chacha(benchmark):
    aead = get_aead("chacha20-poly1305", bytes(32))
    payload = np.random.default_rng(0).bytes(256 * 1024)
    counter = iter(range(10**9))

    def protect():
        nonce = next(counter).to_bytes(12, "big")
        return aead.encrypt(nonce, payload)

    record = benchmark(protect)
    assert len(record) == len(payload) + 16


def test_bench_consistency_check(benchmark):
    policy = ConsistencyPolicy()
    rng = np.random.default_rng(0)
    a = {"t": rng.normal(size=(1, 64, 28, 28)).astype(np.float32)}
    b = {"t": a["t"] + rng.normal(scale=1e-6, size=(1, 64, 28, 28)).astype(np.float32)}
    assert benchmark(lambda: policy.consistent(a, b))


def test_bench_mvx_inference_sequential(benchmark, deployed):
    feeds = {
        "input": np.random.default_rng(1).normal(size=(1, 3, 16, 16)).astype(np.float32)
    }
    outputs = benchmark(lambda: deployed.infer(feeds))
    assert outputs


def test_bench_parallel_vs_serial_dispatch(benchmark, deployed):
    """Real wall-clock: thread-parallel variant fan-out on the MVX stage."""
    import numpy as np

    feeds = {
        "input": np.random.default_rng(2).normal(size=(1, 3, 16, 16)).astype(np.float32)
    }
    deployed.monitor.parallel_dispatch = True
    try:
        outputs = benchmark(lambda: deployed.infer(feeds))
    finally:
        deployed.monitor.parallel_dispatch = False
    assert outputs


def test_bench_deployment_bootstrap(benchmark):
    model = build_model("tiny-cnn")

    def bootstrap():
        return MvteeSystem.deploy(
            model,
            num_partitions=2,
            mvx_partitions={},
            seed=0,
            verify_partitions=False,
            verify_variants=False,
        )

    system = benchmark.pedantic(bootstrap, rounds=3, iterations=1)
    assert system.live_variants()
