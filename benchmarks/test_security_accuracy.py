"""Accuracy-depletion experiment (the FrameFlip paper's attack goal).

"Yes, One-Bit-Flip Matters!" depletes inference accuracy for *all
subsequent inputs* via one library bit flip.  This benchmark measures
prediction agreement with the clean model over an input stream:

- an unprotected single-TEE deployment with the corrupted library loses
  most of its predictions;
- the same fault inside one MVTEE variant costs nothing: the checkpoint
  vote discards the corrupted variant and predictions stay intact.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table, record_result

from repro.attacks import FrameFlipAttack
from repro.mvx import MvteeSystem, ResponseAction
from repro.runtime import RuntimeConfig, create_runtime
from repro.runtime.faults import FaultInjector
from repro.zoo import build_model

NUM_INPUTS = 32


def compute_accuracy_impact() -> dict:
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    rng = np.random.default_rng(0)
    stream = [rng.normal(size=(1, 3, 16, 16)).astype(np.float32) for _ in range(NUM_INPUTS)]

    reference = create_runtime(RuntimeConfig(optimization_level=0))
    reference.prepare(model)
    clean_predictions = [
        int(np.argmax(next(iter(reference.run({"input": x}).values())))) for x in stream
    ]

    # Unprotected: one TEE, one runtime, corrupted library.
    unprotected = create_runtime(
        RuntimeConfig(blas_backend="openblas-sim", optimization_level=0)
    )
    unprotected.prepare(model)
    FaultInjector(unprotected).arm_backend_bitflip(bit=30)
    attacked_predictions = []
    for x in stream:
        out = next(iter(unprotected.run({"input": x}).values()))
        attacked_predictions.append(
            int(np.argmax(np.nan_to_num(out, nan=-np.inf))) if np.any(np.isfinite(out)) else -1
        )
    unprotected_agreement = float(
        np.mean([a == b for a, b in zip(clean_predictions, attacked_predictions)])
    )

    # MVTEE: same fault lands in whichever variants link the target library.
    system = MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions={0: 3, 1: 3, 2: 3},
        seed=1,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    attack = FrameFlipAttack(target_backend="openblas-sim", bit=30)
    affected = attack.launch(system.monitor)
    protected_predictions = []
    for x in stream:
        out = next(iter(system.infer({"input": x}).values()))
        protected_predictions.append(int(np.argmax(out)))
    protected_agreement = float(
        np.mean([a == b for a, b in zip(clean_predictions, protected_predictions)])
    )
    return {
        "inputs": NUM_INPUTS,
        "unprotected_agreement": unprotected_agreement,
        "protected_agreement": protected_agreement,
        "affected_variants": len(affected),
        "detections": len(system.monitor.divergence_events())
        + len(system.monitor.crash_events()),
    }


def test_accuracy_depletion(benchmark):
    results = benchmark.pedantic(compute_accuracy_impact, rounds=1, iterations=1)
    print_table(
        "Accuracy under a FrameFlip library fault (agreement with clean model)",
        ["deployment", "prediction agreement"],
        [
            ["unprotected single TEE", f"{results['unprotected_agreement'] * 100:.1f}%"],
            ["MVTEE (diversified MVX)", f"{results['protected_agreement'] * 100:.1f}%"],
        ],
    )
    record_result("security_accuracy", results)
    # The attack works against the unprotected stack...
    assert results["unprotected_agreement"] < 0.7
    # ...and costs MVTEE nothing.
    assert results["protected_agreement"] == 1.0
    assert results["detections"] >= 1
    assert results["affected_variants"] >= 1
