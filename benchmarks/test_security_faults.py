"""§6.5 fault experiments: FrameFlip library faults and weight bit flips.

Sweeps bit positions and targets, reporting detection rates for:
- FrameFlip-style BLAS-backend corruption (detected by different-BLAS
  variants);
- Terminal-Brain-Damage-style weight flips against one variant
  (detected at the next checkpoint by its siblings);
- the control case: the same attacks against a deployment whose target
  backend is absent simply fail.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table, record_result

from repro.attacks import (
    FrameFlipAttack,
    WeightBitFlipAttack,
    run_persistent_attack,
)
from repro.mvx import MvteeSystem, ResponseAction
from repro.zoo import build_model


def deploy(seed: int):
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    system = MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions={0: 3, 1: 3, 2: 3},
        seed=seed,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    return system


def benign_input():
    return {
        "input": np.random.default_rng(7).normal(size=(1, 3, 16, 16)).astype(np.float32)
    }


def compute_fault_sweep() -> dict:
    results: dict = {"frameflip": [], "weight_flip": []}
    # FrameFlip against each simulated BLAS library.
    for backend in ("openblas-sim", "eigen-sim", "mkl-sim"):
        system = deploy(seed=1)
        feeds = benign_input()
        reference = system.infer(feeds)
        attack = FrameFlipAttack(target_backend=backend, bit=30)
        affected = attack.launch(system.monitor)
        outcome = run_persistent_attack(system, feeds, reference)
        results["frameflip"].append(
            {
                "backend": backend,
                "affected_variants": len(affected),
                "detected": outcome.detected,
                "mechanism": outcome.mechanism,
                "silent_corruption": outcome.silent_corruption,
            }
        )
    # Weight bit flips at several exponent/mantissa positions.
    for bit in (30, 27, 23, 12):
        system = deploy(seed=2)
        feeds = benign_input()
        reference = system.infer(feeds)
        target = system.monitor.stage_connections(1)[1].variant_id
        attack = WeightBitFlipAttack(target_variant=target, bit=bit, num_flips=4, seed=bit)
        flips = attack.launch(system.monitor)
        outcome = run_persistent_attack(system, feeds, reference)
        results["weight_flip"].append(
            {
                "bit": bit,
                "flips": len(flips),
                "detected": outcome.detected,
                "mechanism": outcome.mechanism,
                "silent_corruption": outcome.silent_corruption,
            }
        )
    return results


def test_fault_attacks(benchmark):
    results = benchmark.pedantic(compute_fault_sweep, rounds=1, iterations=1)
    print_table(
        "FrameFlip library faults",
        ["backend", "affected", "detected", "mechanism", "silent corruption"],
        [
            [r["backend"], r["affected_variants"], r["detected"], r["mechanism"],
             r["silent_corruption"]]
            for r in results["frameflip"]
        ],
    )
    print_table(
        "Weight bit-flip attacks (one variant targeted)",
        ["bit", "flips", "detected", "mechanism", "silent corruption"],
        [
            [r["bit"], r["flips"], r["detected"], r["mechanism"], r["silent_corruption"]]
            for r in results["weight_flip"]
        ],
    )
    record_result("security_faults", results)

    for row in results["frameflip"]:
        # The fault never reaches every variant (diversified backends)...
        assert 0 < row["affected_variants"] < 9, row
        # ...and is always detected with no silent corruption.
        assert row["detected"], row
        assert not row["silent_corruption"], row
    # High-impact flips (exponent bits) must be detected; low mantissa
    # bits may be numerically invisible -- but must then also be harmless.
    for row in results["weight_flip"]:
        if row["bit"] >= 23:
            assert row["detected"], row
        assert not row["silent_corruption"], row
