"""Serving-engine throughput/latency benchmark.

Not a paper figure: this benchmarks the `repro.serving` subsystem that
grows the reproduction toward the ROADMAP north star (heavy traffic,
hardware-limited speed).  Three measurements on a live 3-partition
deployment with MVX(3) on the middle partition, whose replicas model
heavy diversified variants (20 ms of GIL-releasing latency each):

1. *Parallel variant execution* -- the same request stream through the
   serial dispatch path and through the ParallelStageExecutor; the
   checkpoint waits for the slowest replica instead of the sum, so
   wall-clock throughput must improve while outputs stay identical.
2. *Closed-loop serving* -- N clients hammering the engine; p50/p95/p99
   latency and achieved throughput.
3. *Open-loop burst* -- an over-capacity burst; admission control must
   shed with `Overloaded` and keep the queue bounded.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_table, record_result

from repro.mvx import InferenceOptions, MvteeSystem, ResponseAction, SchedulingMode
from repro.serving import (
    ClosedLoopLoadGenerator,
    ParallelStageExecutor,
    ServingPolicy,
    open_loop_burst,
    settle_burst,
)
from repro.zoo import build_model

NUM_REQUESTS = 10
REPLICA_LATENCY_S = 0.02
BURST_SIZE = 60
BURST_CAPACITY = 8


def deploy() -> MvteeSystem:
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    system = MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    for connection in system.monitor.stage_connections(1):
        connection.host.simulated_latency = REPLICA_LATENCY_S
        connection.host.realtime_latency = True
    return system


def feeds_for(seed: int) -> dict[str, np.ndarray]:
    return {
        "input": np.random.default_rng(seed)
        .normal(size=(1, 3, 16, 16))
        .astype(np.float32)
    }


def compute() -> dict:
    system = deploy()
    stream = [feeds_for(seed) for seed in range(NUM_REQUESTS)]

    # 1. Serial vs parallel replica dispatch, identical work.
    start = time.monotonic()
    serial_results = system.infer_batches(
        stream, InferenceOptions(scheduling=SchedulingMode.SEQUENTIAL)
    )
    serial_wall = time.monotonic() - start
    with ParallelStageExecutor(max_workers=4) as executor:
        options = InferenceOptions(
            scheduling=SchedulingMode.SEQUENTIAL, dispatcher=executor
        )
        start = time.monotonic()
        parallel_results = system.infer_batches(stream, options)
        parallel_wall = time.monotonic() - start
    name = next(iter(serial_results[0]))
    outputs_equal = all(
        np.allclose(serial[name], parallel[name])
        for serial, parallel in zip(serial_results, parallel_results)
    )

    # 2. Closed-loop latency/throughput through the full engine.
    engine = system.serving_engine(
        policy=ServingPolicy(capacity=64, max_batch_size=8, max_wait_s=0.002)
    )
    with engine:
        closed = ClosedLoopLoadGenerator(
            engine,
            lambda client, index: feeds_for(client * 100 + index),
            clients=4,
            requests_per_client=5,
        ).run()

    # 3. Over-capacity burst against a fresh small-queue engine.
    burst_engine = system.serving_engine(
        policy=ServingPolicy(capacity=BURST_CAPACITY, max_batch_size=8)
    )
    with burst_engine:
        tickets, burst = open_loop_burst(
            burst_engine, [feeds_for(seed) for seed in range(BURST_SIZE)]
        )
        peak_depth = burst_engine.queue_depth
        settle_burst(tickets, burst, timeout=60.0)

    return {
        "parallel_execution": {
            "requests": NUM_REQUESTS,
            "replica_latency_ms": REPLICA_LATENCY_S * 1e3,
            "serial_wall_s": serial_wall,
            "parallel_wall_s": parallel_wall,
            "serial_rps": NUM_REQUESTS / serial_wall,
            "parallel_rps": NUM_REQUESTS / parallel_wall,
            "speedup": serial_wall / parallel_wall,
            "outputs_equal": outputs_equal,
        },
        "closed_loop": closed.to_json(),
        "burst": {**burst.to_json(), "capacity": BURST_CAPACITY, "peak_depth": peak_depth},
    }


def test_serving_throughput(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    par = results["parallel_execution"]
    closed = results["closed_loop"]
    burst = results["burst"]
    print_table(
        "Serving: parallel variant execution (3 replicas on partition 1)",
        ["path", "wall_s", "rps"],
        [
            ["serial", f"{par['serial_wall_s']:.3f}", f"{par['serial_rps']:.1f}"],
            ["parallel", f"{par['parallel_wall_s']:.3f}", f"{par['parallel_rps']:.1f}"],
        ],
    )
    print_table(
        "Serving: closed loop (4 clients) and over-capacity burst",
        ["metric", "value"],
        [
            ["p50_ms", f"{closed['p50_ms']:.1f}"],
            ["p95_ms", f"{closed['p95_ms']:.1f}"],
            ["p99_ms", f"{closed['p99_ms']:.1f}"],
            ["throughput_rps", f"{closed['throughput_rps']:.1f}"],
            ["burst_submitted", burst["submitted"]],
            ["burst_shed", burst["shed"]],
            ["burst_shed_rate", f"{burst['shed_rate']:.2f}"],
            ["burst_peak_depth", burst["peak_depth"]],
        ],
    )
    record_result("serving_throughput", results)

    # Shape criteria: true parallelism (same outputs, more throughput) …
    assert par["outputs_equal"], "parallel dispatch changed the outputs"
    assert par["parallel_rps"] > par["serial_rps"], (
        f"parallel executor did not beat serial dispatch: "
        f"{par['parallel_rps']:.1f} <= {par['serial_rps']:.1f} rps"
    )
    # … a served closed loop with a real latency distribution …
    assert closed["completed"] == closed["submitted"] == 20
    assert closed["p99_ms"] >= closed["p95_ms"] >= closed["p50_ms"] > 0
    # … and bounded-queue shedding under the burst.
    assert burst["shed"] > 0, "over-capacity burst was not shed"
    assert burst["peak_depth"] <= BURST_CAPACITY
    assert burst["completed"] + burst["timed_out"] + burst["failed"] == (
        burst["submitted"] - burst["shed"]
    )
