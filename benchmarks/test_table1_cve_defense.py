"""Table 1: TensorFlow vulnerability classes vs defending variants.

The paper's empirical analysis: each CVE class (OOB/UNP/FPE/IO/UAF/ACF)
is mitigated by at least one variant class -- most directly by a
"different RT" variant, because the vulnerability lives in one runtime's
kernel.  This benchmark arms every catalogued CVE against a live MVTEE
deployment whose pools mix interpreter- and compiled-engine variants,
sends crafted inputs, and reports detection per CVE.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table, record_result

from repro.attacks import TABLE1_CVES, run_input_attack
from repro.attacks.cves import craft_malicious_input
from repro.mvx import MvteeSystem, ResponseAction
from repro.zoo import build_model


def deploy_diversified():
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    system = MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions={0: 3, 1: 3, 2: 3},
        seed=1,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    return model, system


def compute_table1() -> list[dict]:
    rows = []
    for case in TABLE1_CVES:
        model, system = deploy_diversified()
        op_present = any(n.op_type == case.vulnerable_op for n in model.nodes)
        armed = sum(
            case.arm(connection.host.runtime)
            for connections in system.monitor.connections.values()
            for connection in connections
        )
        outcome = run_input_attack(
            system, {"input": craft_malicious_input((1, 3, 16, 16))}
        )
        rows.append(
            {
                "cve": case.cve_id,
                "class": case.vuln_class.name,
                "impact": case.impact.value,
                "op": case.vulnerable_op,
                "armed_variants": armed,
                "op_in_model": op_present,
                "triggered": armed > 0 and op_present,
                "detected": outcome.detected,
                "mechanism": outcome.mechanism,
                "defending": list(case.defending_variants),
            }
        )
    return rows


def test_table1_cve_defense(benchmark):
    rows = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    print_table(
        "Table 1: CVE classes vs diversified MVTEE deployment",
        ["CVE", "class", "op", "armed", "triggered", "detected", "mechanism"],
        [
            [r["cve"], r["class"], r["op"], r["armed_variants"],
             r["triggered"], r["detected"], r["mechanism"]]
            for r in rows
        ],
    )
    record_result("table1_cve_defense", rows)

    triggered = [r for r in rows if r["triggered"]]
    assert triggered, "at least some CVEs must be exercisable on the test model"
    # Every triggered CVE is detected (crash or divergence): the
    # "different RT" defending variant holds for all of Table 1.
    for row in triggered:
        assert row["detected"], row["cve"]
    # No CVE ever affects every variant (single-implementation premise).
    for row in rows:
        total = 9  # 3 partitions x 3 variants
        assert row["armed_variants"] < total, row["cve"]
    # All six vulnerability classes appear in the catalog.
    assert {r["class"] for r in rows} == {"OOB", "UNP", "FPE", "IO", "UAF", "ACF"}
