"""Voting-panel reliability study (§4.3: "panel sizes also involving
reliability/resource trade-offs").

Monte-Carlo over the *actual* voting implementation: each of N variants
is independently corrupted with probability p.  Correlated-failure mode
("homogeneous"): corrupted variants all produce the SAME wrong output
(shared bug); diversified mode: each corrupted variant fails its own
way.  Measures, per panel size and strategy, how often a wrong output
is silently accepted -- quantifying why MVX needs both replication AND
diversity.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table, record_result

from repro.mvx.voting import VariantOutput, vote

PANEL_SIZES = (2, 3, 5)
CORRUPTION_P = 0.2
TRIALS = 400


def _outputs(rng, n, correlated: bool):
    good = np.zeros(4, dtype=np.float32)
    shared_bad = np.full(4, 99.0, dtype=np.float32)
    outputs = []
    corrupted = 0
    for i in range(n):
        if rng.random() < CORRUPTION_P:
            corrupted += 1
            bad = shared_bad if correlated else np.full(4, 50.0 + i, dtype=np.float32)
            outputs.append(VariantOutput(f"v{i}", {"t": bad.copy()}))
        else:
            outputs.append(VariantOutput(f"v{i}", {"t": good.copy()}))
    return outputs, corrupted


def compute_reliability() -> list[dict]:
    rows = []
    for correlated in (False, True):
        for n in PANEL_SIZES:
            for strategy in ("unanimous", "majority"):
                rng = np.random.default_rng(7)
                silent = 0
                halted = 0
                correct = 0
                for _ in range(TRIALS):
                    outputs, corrupted = _outputs(rng, n, correlated)
                    result = vote(outputs, strategy=strategy)
                    if result.accepted is None:
                        halted += 1
                    elif float(result.accepted["t"][0]) == 0.0:
                        correct += 1
                    else:
                        silent += 1
                rows.append(
                    {
                        "mode": "correlated" if correlated else "diversified",
                        "panel": n,
                        "strategy": strategy,
                        "silent_wrong": silent / TRIALS,
                        "halted": halted / TRIALS,
                        "correct": correct / TRIALS,
                    }
                )
    return rows


def test_voting_reliability(benchmark):
    rows = benchmark.pedantic(compute_reliability, rounds=1, iterations=1)
    print_table(
        f"Voting reliability (p_corrupt={CORRUPTION_P}/variant, {TRIALS} trials)",
        ["failure mode", "panel", "strategy", "silent wrong", "halted", "correct"],
        [
            [r["mode"], r["panel"], r["strategy"],
             f"{r['silent_wrong'] * 100:.1f}%", f"{r['halted'] * 100:.1f}%",
             f"{r['correct'] * 100:.1f}%"]
            for r in rows
        ],
    )
    record_result("voting_reliability", rows)
    by_key = {(r["mode"], r["panel"], r["strategy"]): r for r in rows}

    # Diversified failures: unanimity NEVER silently accepts a wrong
    # output (a lone dissenting cluster always blocks), at any panel size.
    for n in PANEL_SIZES:
        assert by_key[("diversified", n, "unanimous")]["silent_wrong"] == 0.0
    # Diversified + majority: silent acceptance requires a corrupted
    # majority agreeing -- but they each fail differently, so never.
    for n in PANEL_SIZES:
        assert by_key[("diversified", n, "majority")]["silent_wrong"] == 0.0
    # Correlated failures (the homogeneous trap): silent acceptance IS
    # possible once the shared-bug cluster reaches the decision threshold,
    # and majority suffers more than unanimity.
    assert by_key[("correlated", 3, "majority")]["silent_wrong"] > 0.0
    assert (
        by_key[("correlated", 3, "unanimous")]["silent_wrong"]
        <= by_key[("correlated", 3, "majority")]["silent_wrong"]
    )
    # Availability trade-off: majority completes more often than unanimity.
    for n in (3, 5):
        assert (
            by_key[("diversified", n, "majority")]["correct"]
            >= by_key[("diversified", n, "unanimous")]["correct"]
        )
    # Bigger panels help majority-voting availability.
    assert (
        by_key[("diversified", 5, "majority")]["correct"]
        >= by_key[("diversified", 3, "majority")]["correct"] - 0.05
    )
