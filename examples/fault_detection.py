"""Security walkthrough: the attacks of §6.5 against a live deployment.

Demonstrates, against one diversified MVTEE deployment:

1. a Table-1 style memory-safety CVE (crafted input crashes the variants
   built on the vulnerable runtime; the checkpoint vote sees the missing
   responses);
2. a FrameFlip-style library bit flip (silently corrupts one BLAS
   backend; different-backend variants outvote it);
3. a Rowhammer-style weight bit flip inside one variant TEE's memory;
4. the control: the same silent corruption against homogeneous
   replication goes UNDETECTED -- the reason MVX needs diversity.

Run:  python examples/fault_detection.py
"""

import numpy as np

from repro.attacks import (
    FrameFlipAttack,
    TABLE1_CVES,
    WeightBitFlipAttack,
    run_input_attack,
    run_persistent_attack,
)
from repro.attacks.cves import craft_malicious_input
from repro.mvx import MvteeSystem, ResponseAction
from repro.zoo import build_model


def fresh_deployment(seed: int = 1) -> MvteeSystem:
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    system = MvteeSystem.deploy(
        model, num_partitions=3, mvx_partitions={0: 3, 1: 3, 2: 3}, seed=seed
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    return system


def banner(title: str) -> None:
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))


def main() -> None:
    benign = {
        "input": np.random.default_rng(3).normal(size=(1, 3, 16, 16)).astype(np.float32)
    }

    banner("1. CVE-class memory-safety bug (Table 1)")
    system = fresh_deployment()
    case = next(c for c in TABLE1_CVES if c.vulnerable_op == "Conv")
    armed = [
        connection.variant_id
        for connections in system.monitor.connections.values()
        for connection in connections
        if case.arm(connection.host.runtime)
    ]
    print(f"{case.cve_id} ({case.vuln_class.value}) armed in: {armed}")
    outcome = run_input_attack(system, {"input": craft_malicious_input((1, 3, 16, 16))})
    print(f"crafted input sent -> detected={outcome.detected} via {outcome.mechanism}, "
          f"{outcome.crashes} variant crash(es)")
    print(f"defending variants per the paper: {', '.join(case.defending_variants)}")

    banner("2. FrameFlip: library-level bit flip in one BLAS backend")
    system = fresh_deployment()
    reference = system.infer(benign)
    attack = FrameFlipAttack(target_backend="openblas-sim", bit=30)
    affected = attack.launch(system.monitor)
    print(f"corrupted 'openblas-sim' in: {affected}")
    outcome = run_persistent_attack(system, benign, reference)
    print(f"benign inference after fault -> detected={outcome.detected} "
          f"via {outcome.mechanism}; silent corruption={outcome.silent_corruption}")
    for event in system.monitor.divergence_events():
        print(f"  {event.summary()}")

    banner("3. Weight bit flip inside one variant TEE")
    system = fresh_deployment(seed=2)
    reference = system.infer(benign)
    target = system.monitor.stage_connections(1)[1].variant_id
    flips = WeightBitFlipAttack(target_variant=target, bit=30, num_flips=3).launch(
        system.monitor
    )
    print(f"flipped bit 30 of {len(flips)} weights in {target}")
    outcome = run_persistent_attack(system, benign, reference)
    print(f"-> detected={outcome.detected} via {outcome.mechanism}; "
          f"output corrupted={outcome.output_corrupted}")

    banner("4. Control: homogeneous replication misses silent corruption")
    system = fresh_deployment()
    reference = system.infer(benign)
    case = next(c for c in TABLE1_CVES if c.cve_id == "CVE-2022-41883")
    for connection in system.monitor.stage_connections(2):
        runtime = connection.host.runtime
        forced = type(case)(
            cve_id=case.cve_id,
            vuln_class=case.vuln_class,
            impact=case.impact,
            vulnerable_engine=runtime.config.engine,  # every replica "has" the bug
            vulnerable_op=case.vulnerable_op,
            defending_variants=case.defending_variants,
        )
        forced.arm(runtime)
    outcome = run_input_attack(system, {"input": craft_malicious_input((1, 3, 16, 16))})
    print(f"all replicas share the buggy kernel -> detected={outcome.detected} "
          f"(all agreed on the WRONG answer)")
    print("this is exactly the failure mode MVTEE's multi-level diversification rules out")


if __name__ == "__main__":
    main()
