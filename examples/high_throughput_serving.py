"""High-throughput serving with admission control and micro-batching.

The concurrent serving engine end to end, driven by a bursty open-loop
workload: quiet periods where single requests flow through with minimal
batching, and bursts that exercise micro-batch coalescing, true
parallel variant execution (three heavy replicas on the MVX partition),
deadline enforcement and load shedding.  Ends by printing the engine's
Prometheus exposition -- the numbers an operator would scrape.

Run:  python examples/high_throughput_serving.py
"""

import time

import numpy as np

from repro.mvx import MvteeSystem, ResponseAction
from repro.serving import (
    DeadlineExceeded,
    Overloaded,
    ServingPolicy,
)
from repro.zoo import build_model


def main() -> None:
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    system = MvteeSystem.deploy(model, num_partitions=3, mvx_partitions={1: 3}, seed=0)
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    # Model heavy diversified replicas on the MVX partition: 15 ms of
    # GIL-releasing work each, so parallel dispatch genuinely overlaps.
    for connection in system.monitor.stage_connections(1):
        connection.host.simulated_latency = 0.015
        connection.host.realtime_latency = True

    engine = system.serving_engine(
        policy=ServingPolicy(
            capacity=16,
            max_batch_size=8,
            max_wait_s=0.005,
            default_deadline_s=5.0,
            parallel_variants=True,
        )
    )
    rng = np.random.default_rng(0)

    def fresh_feeds():
        return {"input": rng.normal(size=(1, 3, 16, 16)).astype(np.float32)}

    with engine:
        # --- quiet traffic: lone requests, batch size ~1 -------------------
        quiet = [engine.submit(fresh_feeds()) for _ in range(3)]
        for ticket in quiet:
            ticket.result(timeout=30.0)
        print(f"[quiet] {len(quiet)} lone requests served, "
              f"queue depth now {engine.queue_depth}")

        # --- bursty open loop: waves of arrivals, no waiting ---------------
        served = shed = timed_out = 0
        in_flight = []
        for wave in range(4):
            wave_size = 24 if wave % 2 else 12
            for _ in range(wave_size):
                try:
                    in_flight.append(engine.submit(fresh_feeds()))
                except Overloaded:
                    shed += 1
            time.sleep(0.05)  # inter-burst gap; the engine drains meanwhile
        for ticket in in_flight:
            try:
                ticket.result(timeout=60.0)
                served += 1
            except DeadlineExceeded:
                timed_out += 1
        total = served + shed + timed_out
        print(f"[burst] {total} submitted: {served} served, {shed} shed "
              f"(backpressure), {timed_out} past deadline")

        batch_sizes = engine.registry.histogram("mvtee_batch_size")
        if batch_sizes.count():
            print(f"[batching] {batch_sizes.count()} micro-batches, "
                  f"mean size {batch_sizes.sum() / batch_sizes.count():.1f}")
        waits = engine.registry.histogram("mvtee_queue_wait_seconds")
        if waits.count():
            print(f"[queueing] mean queue wait "
                  f"{1e3 * waits.sum() / waits.count():.1f} ms over {waits.count()} requests")

    # --- what the operator scrapes ----------------------------------------
    print("\n[prometheus] engine exposition:")
    for line in engine.render_prometheus().splitlines():
        if line.startswith("#") or "_bucket" in line:
            continue  # keep the printout short: samples only, no buckets
        print(f"  {line}")


if __name__ == "__main__":
    main()
