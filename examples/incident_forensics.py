"""Forensics walkthrough: from a silent fault to a verified audit trail.

Demonstrates the security-observability layer end to end:

1. deploy with a tamper-evident :class:`FlightRecorder` and a tracer;
2. inject a bit-flip fault into one variant's BLAS backend
   (:mod:`repro.runtime.faults`);
3. the checkpoint vote isolates the dissenting variant and the monitor
   captures an :class:`IncidentReport` -- per-variant output digests,
   elementwise mismatch analysis, culprit attribution, the correlated
   trace id and the protective response taken;
4. export the flight recorder to JSONL, verify the hash chain, and show
   that mutating a single exported entry is *detected* on replay;
5. evaluate the health watchdog (the ``healthz`` readiness verdict).

Run:  python examples/incident_forensics.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.mvx import MvteeSystem, ResponseAction
from repro.mvx.service import InferenceService
from repro.observability import FlightRecorder, Sinks, Tracer
from repro.observability.recorder import AuditChainError
from repro.runtime.faults import FaultInjector
from repro.zoo import build_model


def banner(title: str) -> None:
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))


def main() -> None:
    banner("1. Deploy with a flight recorder")
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    recorder = FlightRecorder()
    tracer = Tracer()
    system = MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=1,
        sinks=Sinks(tracer=tracer, recorder=recorder),
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    print(f"live variants: {system.live_variants()}")

    banner("2. Inject a backend bit flip into one variant")
    victim = system.monitor.stage_connections(1)[1]
    FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
    print(f"armed backend bit flip (bit 30) in {victim.variant_id!r}")

    feeds = {
        "input": np.random.default_rng(7).normal(size=(1, 3, 16, 16)).astype(np.float32)
    }
    system.infer(feeds)

    banner("3. The incident report")
    incident = system.monitor.incident_store.latest()
    assert incident is not None, "fault went undetected?"
    print(incident.to_text())

    banner("4. Export, verify, tamper, detect")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "audit.jsonl"
        written = recorder.export_jsonl(path)
        checked = len(FlightRecorder.replay(path))
        print(f"exported {written} audit events; replay verified {checked}")

        lines = path.read_text().splitlines()
        doc = json.loads(lines[-1])
        doc["data"]["batch"] = 999  # rewrite history
        lines[-1] = json.dumps(doc, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        try:
            FlightRecorder.replay(path)
        except AuditChainError as exc:
            print(f"mutated one entry -> replay rejected: {exc}")
        else:
            raise SystemExit("tampering went undetected!")

    banner("5. Health watchdog")
    service = InferenceService(system, recorder=recorder)
    report = service.healthz()
    print(f"healthz: {report.status.value}")
    for result in report.results:
        print(f"  [{result.status.value:4}] {result.reason}")

    banner("Audit trail (most recent events)")
    for event in recorder.events()[-6:]:
        print(f"  #{event.sequence:03d} {event.kind:<18} {event.data}")


if __name__ == "__main__":
    main()
