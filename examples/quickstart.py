"""Quickstart: protect a model with MVTEE in a few lines.

Partitions a small ResNet, deploys a monitor TEE plus diversified
variant TEEs with MVX on the middle partition, runs protected inference,
then shows that a library-level fault in one variant is detected at the
next checkpoint while inference keeps serving on the survivors.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.mvx import MvteeSystem, ResponseAction
from repro.runtime.faults import FaultInjector
from repro.zoo import build_model


def main() -> None:
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    print(f"model: {model.name}, {len(model.nodes)} nodes")

    # Offline phase + online bootstrap in one call: random-balanced
    # partitioning into 3 stages, 3 diversified variants on partition 1.
    system = MvteeSystem.deploy(model, num_partitions=3, mvx_partitions={1: 3}, seed=0)
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    print("deployed variants per partition:")
    for index, variants in system.live_variants().items():
        print(f"  partition {index}: {variants}")

    # Protected inference.
    x = np.random.default_rng(0).normal(size=(1, 3, 16, 16)).astype(np.float32)
    outputs = system.infer({"input": x})
    prediction = int(np.argmax(next(iter(outputs.values()))))
    print(f"protected inference OK, predicted class {prediction}")

    # An attacker flips a bit in one variant's BLAS library (FrameFlip).
    victim = system.monitor.stage_connections(1)[0]
    FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
    print(f"injected library fault into {victim.variant_id}")

    outputs = system.infer({"input": x})
    assert int(np.argmax(next(iter(outputs.values())))) == prediction
    for event in system.monitor.divergence_events():
        print(f"DETECTED: {event.summary()}")
    print(f"survivors on partition 1: {system.live_variants()[1]}")
    print("inference result still correct -- the faulty variant was outvoted and dropped")


if __name__ == "__main__":
    main()
