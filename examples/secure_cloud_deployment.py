"""The full Figure 6 deployment workflow, role by role.

Walks through MVTEE's usage and deployment model with every party
explicit: the offline tool builds the encrypted variant pool and public
container images; the untrusted orchestrator places TEEs; the model
owner attests the monitor and provisions the MVX plan; the monitor
attests, keys and binds every variant through the two-stage bootstrap;
a user attests the deployment and submits private inputs; finally the
owner pushes a partial variant update with an auditable binding trail.

Run:  python examples/secure_cloud_deployment.py
"""

import numpy as np

from repro.mvx.bootstrap import ModelOwner, Orchestrator
from repro.mvx.config import MvxConfig
from repro.mvx.monitor import Monitor
from repro.mvx.scheduler import InferenceOptions, SchedulingMode, run
from repro.mvx.updates import partial_update
from repro.offline import OfflineTool, ToolConfig
from repro.tee.attestation import Verifier, fresh_nonce
from repro.tee.hardware import SimulatedCpu
from repro.variants.pool import build_pool, diversified_specs
from repro.zoo import build_model


def main() -> None:
    # ----- Offline phase (model owner's premises) -------------------------
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    tool = OfflineTool(ToolConfig(num_partitions=3, variants_per_partition=3, seed=0))
    output = tool.run(model)
    print(f"[offline] inspected {output.report.num_nodes} nodes, "
          f"{output.report.total_flops / 1e6:.1f} MFLOPs")
    print(f"[offline] partitions: {[len(p.node_names) for p in output.partition_set.partitions]}")
    print(f"[offline] pool: {output.pool.total_variants()} encrypted variant artifacts")
    print(f"[offline] monitor image digest {output.monitor_image.digest()[:16]}...")

    # ----- Online phase ----------------------------------------------------
    # The cloud provider has TEE-capable platforms; the orchestrator is
    # untrusted (it only moves public images and sealed files around).
    platforms = [SimulatedCpu(f"cloud-node-{i}") for i in range(2)]
    orchestrator = Orchestrator(cpus=platforms)
    monitor_enclave = orchestrator.place_monitor()
    print(f"[orchestrator] monitor TEE {monitor_enclave.enclave_id} "
          f"({monitor_enclave.tee_type.value}) placed")

    # The model owner provisions attestation collateral and its trust policy.
    verifier = Verifier()
    for cpu in platforms:
        verifier.register_platform(cpu)
    verifier.trust_measurement(monitor_enclave.measurement)
    owner = ModelOwner(verifier=verifier)

    monitor = Monitor(enclave=monitor_enclave, verifier=verifier, pool=output.pool)

    # MVX plan: protect partition 1 with 3 variants, async cross-validation.
    config = MvxConfig.selective(3, {1: 3}, execution_mode="async")
    hosts = owner.deploy(monitor, orchestrator, config)
    print(f"[owner] attested monitor, provisioned MVX plan, {len(hosts)} variant TEEs bound")
    for entry in monitor.ledger.entries:
        print(f"[ledger] #{entry.sequence} {entry.event}: {entry.variant_id} "
              f"@ {entry.enclave_id} (measurement {entry.measurement[:12]}...)")

    # ----- User-side combined attestation + inference ----------------------
    # The user verifies the monitor, then trusts the monitor's binding
    # ledger for the variants (combined attestation through the monitor).
    nonce = fresh_nonce()
    report = verifier.verify(monitor.quote(nonce), expected_report_data=nonce)
    monitor.ledger.verify_chain()
    print(f"[user] monitor attested ({report.measurement[:12]}...), ledger chain OK")

    rng = np.random.default_rng(7)
    batches = [
        {"input": rng.normal(size=(1, 3, 16, 16)).astype(np.float32)} for _ in range(6)
    ]
    results, stats = run(
        monitor, batches, InferenceOptions(scheduling=SchedulingMode.PIPELINED)
    )
    print(f"[user] {stats.batches} batches through the pipeline, "
          f"{stats.checkpoints_evaluated} checkpoints evaluated, "
          f"{stats.divergences} divergences")

    # ----- Partial update ---------------------------------------------------
    # The owner rotates partition 1 to fresh variants (e.g. after a CVE
    # disclosure); old TEEs are terminated, never reused.
    fresh = build_pool(
        output.partition_set,
        diversified_specs(1, 3, seed=99, prefix="p1-rot"),
        key_manager=output.key_manager,
        verify=False,
    ).for_partition(1)
    new_hosts = partial_update(monitor, orchestrator, 1, fresh)
    print(f"[owner] partial update: {[h.variant_id for h in new_hosts]}")
    retired = [e.variant_id for e in monitor.ledger.entries if e.event == "retire"]
    print(f"[ledger] retired: {retired}")

    out_after = run(
        monitor, batches[:1], InferenceOptions(scheduling=SchedulingMode.PIPELINED)
    )[0][0]
    before = next(iter(results[0].values()))
    after = next(iter(out_after.values()))
    assert np.allclose(before, after, atol=1e-2)
    print("[user] post-update inference verified against pre-update result")


if __name__ == "__main__":
    main()
