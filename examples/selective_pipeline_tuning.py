"""Capacity planning with selective MVX (the §6.3/§6.4 methodology).

Uses the calibrated performance simulator to sweep selective-MVX
configurations for a production model -- which partitions to harden, how
many variants, sync vs async -- prints the throughput/latency trade-off
table, picks the best configuration meeting a protection requirement,
and finally deploys that plan functionally on a small stand-in model.

Run:  python examples/selective_pipeline_tuning.py
"""

import numpy as np

from repro.mvx import InferenceOptions, MvteeSystem, SchedulingMode
from repro.mvx.config import MvxConfig
from repro.simulation import CostModel, RUNTIME_FACTORS, simulate
from repro.simulation.scenarios import (
    baseline_result,
    cached_model,
    cached_partition,
    plan_from_partition_set,
)
from repro.zoo import build_model

MODEL = "mobilenet-v3"
NUM_PARTITIONS = 5
#: The deployment must harden at least this partition (e.g. the
#: fine-tuned final layers carrying the owner's IP, §4.3).
REQUIRED_MVX = {4}

CANDIDATES = {
    "minimal (p4 x3, sync)": MvxConfig.selective(5, {4: 3}),
    "minimal (p4 x3, async)": MvxConfig.selective(5, {4: 3}, execution_mode="async"),
    "wide (p4 x5, async)": MvxConfig.selective(5, {4: 5}, execution_mode="async"),
    "tail (p3,p4 x3, async)": MvxConfig.selective(5, {3: 3, 4: 3}, execution_mode="async"),
    "full MVX (all x3, async)": MvxConfig.uniform(5, 3, execution_mode="async"),
}


def main() -> None:
    cost = CostModel()
    model = cached_model(MODEL)
    partition_set = cached_partition(MODEL, NUM_PARTITIONS)
    base = baseline_result(model, cost)
    print(f"{MODEL}: baseline latency "
          f"{base.batch_completions[0] * 1000:.1f} ms/batch in a single TEE\n")

    print(f"{'configuration':28s} {'pipe tput':>10s} {'pipe lat':>10s} {'seq tput':>10s}")
    scores = {}
    for label, config in CANDIDATES.items():
        factors = {
            i: [1.0, RUNTIME_FACTORS["tvm"], 0.8][: config.claim(i).num_variants]
            + [1.0] * max(0, config.claim(i).num_variants - 3)
            for i in config.mvx_partition_indices()
        }
        stages = plan_from_partition_set(partition_set, config, variant_factors=factors)
        pipe = simulate(
            stages, cost, pipelined=True, execution_mode=config.execution_mode
        ).normalized_to(base)
        seq = simulate(
            stages, cost, pipelined=False, execution_mode=config.execution_mode
        ).normalized_to(base)
        print(f"{label:28s} {pipe[0]:>9.2f}x {pipe[1]:>9.2f}x {seq[0]:>9.2f}x")
        if REQUIRED_MVX <= set(config.mvx_partition_indices()):
            scores[label] = pipe[0]

    best = max(scores, key=scores.get)
    print(f"\nchosen plan: {best!r} "
          f"({scores[best]:.2f}x pipelined throughput vs the unprotected model)")

    # The same decision, fully automated: the §7.4 plan search sweeps the
    # whole configuration space and returns the Pareto frontier.
    from repro.simulation import search_plans

    planned = search_plans(
        partition_set,
        cost,
        required_mvx=REQUIRED_MVX,
        min_throughput_ratio=1.0,
        panel_sizes=(3,),
        max_mvx_partitions=3,
    )
    print("\nautomatic plan search (Pareto frontier):")
    for plan in sorted(planned.pareto, key=lambda p: -p.security_score)[:5]:
        print(f"  {plan.describe()}")
    print(f"planner's pick: {planned.best.describe()}")

    # Deploy the chosen plan functionally on a small stand-in model.
    chosen = CANDIDATES[best]
    stand_in = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    system = MvteeSystem.deploy(
        stand_in,
        num_partitions=NUM_PARTITIONS,
        config=chosen,
        seed=0,
        verify_variants=False,
    )
    batches = [
        {"input": np.random.default_rng(i).normal(size=(1, 3, 16, 16)).astype(np.float32)}
        for i in range(4)
    ]
    system.infer_batches(
        batches, InferenceOptions(scheduling=SchedulingMode.PIPELINED)
    )
    stats = system.last_stats
    print(f"functional deployment: {stats.batches} batches, "
          f"{stats.checkpoints_evaluated} checkpoints, "
          f"{stats.divergences} divergences")
    print(f"live variants: {system.live_variants()}")


if __name__ == "__main__":
    main()
