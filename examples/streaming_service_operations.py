"""Operating MVTEE as a streaming inference service.

Day-2 operations end to end: a queue-driven service over a deployed
system, the adaptive controller reacting to a live attack (scale-up on
threat, scale-down when quiet), health metrics, a combined attestation
for an auditing user, monitor snapshot + simulated restart + recovery.

Run:  python examples/streaming_service_operations.py
"""

import numpy as np

from repro.crypto.keys import KeyManager
from repro.mvx import (
    AdaptiveController,
    InferenceService,
    MvteeSystem,
    ResponseAction,
    combined_attestation,
)
from repro.mvx.recovery import MonitorStateStore, recover_monitor, snapshot_monitor
from repro.observability import InMemorySpanExporter, MetricsRegistry, Tracer
from repro.runtime.faults import FaultInjector
from repro.tee.attestation import fresh_nonce
from repro.tee.filesystem import MonotonicCounterService
from repro.zoo import build_model


def main() -> None:
    model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
    system = MvteeSystem.deploy(model, num_partitions=3, mvx_partitions={1: 3}, seed=0)
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    controller = AdaptiveController(system, scale_down_threshold=-1.0)
    ring = InMemorySpanExporter(capacity=64)
    tracer = Tracer(exporters=[ring])
    registry = MetricsRegistry()
    service = InferenceService(
        system, pipelined=True, controller=controller,
        registry=registry, tracer=tracer,
    )
    rng = np.random.default_rng(0)

    def submit_batch(count: int) -> list[int]:
        return [
            service.submit(
                {"input": rng.normal(size=(1, 3, 16, 16)).astype(np.float32)}
            )
            for _ in range(count)
        ]

    # --- normal operation --------------------------------------------------
    ids = submit_batch(6)
    service.drain()
    print(f"[service] served {len(ids)} requests; "
          f"metrics: {service.metrics().live_variants} variants live")

    # --- the span tree of the drain we just ran -----------------------------
    from repro.observability import format_span_tree

    print("[tracing] span tree of the first drain:")
    for line in format_span_tree(ring.spans[-1]).splitlines()[:12]:
        print(f"  {line}")
    stage_hist = registry.histogram("mvtee_stage_seconds")
    per_stage = {
        labels["partition"]: f"{stage_hist.sum(partition=labels['partition']):.4f}s"
        for labels in stage_hist.label_sets()
    }
    print(f"[metrics] cumulative stage seconds: {per_stage}")

    # --- attack lands mid-stream -------------------------------------------
    victim = system.monitor.stage_connections(1)[0]
    FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
    print(f"[attacker] corrupted BLAS library of {victim.variant_id}")
    submit_batch(4)
    service.drain()
    metrics = service.metrics()
    print(f"[service] detections: {metrics.divergences_detected} divergence(s); "
          f"controller actions: {metrics.scaling_actions}")
    for action in controller.actions:
        print(f"[controller] {action.action} partition {action.partition_index}: "
              f"{action.variants_before} -> {action.variants_after} variants "
              f"(threat score {action.threat_score:.2f})")

    # --- auditor performs a combined attestation ----------------------------
    attestation = combined_attestation(
        system.monitor, system.monitor.verifier, fresh_nonce()
    )
    print(f"[auditor] monitor {attestation.monitor_measurement[:12]}..., "
          f"{len(attestation.variants)} bound variant TEEs, "
          f"ledger head {attestation.ledger_head[:12]}...")

    # --- monitor restart + recovery ----------------------------------------
    store = MonitorStateStore(
        key_record=KeyManager().create_key("monitor-state"),
        counters=MonotonicCounterService(),
    )
    snapshot_monitor(system.monitor, store)
    hosts = {c.host.variant_id: c.host
             for conns in system.monitor.connections.values() for c in conns}
    fresh_enclave = system.orchestrator.place_monitor()
    recovered = recover_monitor(
        enclave=fresh_enclave,
        verifier=system.monitor.verifier,
        pool=system.pool,
        store=store,
        hosts=hosts,
    )
    system.monitor = recovered
    print(f"[ops] monitor restarted; {sum(len(v) for v in recovered.connections.values())} "
          "variants re-attested and re-bound")

    submit_batch(3)
    served = service.drain()
    print(f"[service] {served} requests served post-recovery; "
          f"final metrics: {service.metrics()}")


if __name__ == "__main__":
    main()
