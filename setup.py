"""Setuptools shim.

The offline environment ships no ``wheel`` package, so PEP-517 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs the same editable egg-link instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
