"""MVTEE reproduction: Multi-Variant Trusted Execution for Secure Model Inference.

This package reproduces the MVTEE system (Qin & Gu, Middleware '25): a
TEE-based model-inference system that runs multiple diversified inference
variants in parallel and cross-checks their outputs at checkpoints derived
from random-balanced model partitioning.

Top-level subpackages:

- :mod:`repro.crypto` -- AEAD ciphers, key management, sealed files.
- :mod:`repro.graph` -- the ONNX-like computational-graph IR.
- :mod:`repro.ops` -- numpy reference kernels for every operator.
- :mod:`repro.zoo` -- the evaluation model definitions (ResNet, Inception, ...).
- :mod:`repro.tee` -- simulated enclaves, attestation, Gramine-like TEE OS.
- :mod:`repro.runtime` -- diversified inference runtimes and fault injection.
- :mod:`repro.observability` -- span tracing + the process-wide metrics registry.
- :mod:`repro.partition` -- random-contraction model partitioning (Algorithm 1).
- :mod:`repro.variants` -- multi-level variant generation (Figure 3).
- :mod:`repro.mvx` -- the MVTEE monitor, bootstrap protocol and schedulers.
- :mod:`repro.offline` -- the offline ML MVX tool (Figure 2).
- :mod:`repro.attacks` -- attack harness for the security analysis (Table 1).
- :mod:`repro.simulation` -- discrete-event performance simulator (Figures 9-14).
- :mod:`repro.serving` -- the concurrent serving engine over one deployment.
- :mod:`repro.cluster` -- per-variant worker processes with supervised restarts.
- :mod:`repro.fleet` -- multi-tenant fleet serving behind one front door.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
