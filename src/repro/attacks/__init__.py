"""Attack harness for the security analysis (§6.5, Table 1).

Simulated attacks keyed to specific implementations, so diversified
variant pools detect them while homogeneous replication does not:

- :mod:`repro.attacks.cves` -- the Table 1 TensorFlow CVE catalog as
  injectable vulnerability cases (OOB/UNP/FPE/IO/UAF/ACF classes);
- :mod:`repro.attacks.frameflip` -- the FrameFlip-style library bit-flip
  attack against a chosen BLAS backend;
- :mod:`repro.attacks.weights` -- Terminal-Brain-Damage-style weight
  bit flips against one variant's loaded model;
- :mod:`repro.attacks.harness` -- drives attacks against a deployed
  :class:`~repro.mvx.system.MvteeSystem` and reports detection outcomes.
"""

from repro.attacks.cves import TABLE1_CVES, CveCase, VulnClass
from repro.attacks.frameflip import FrameFlipAttack
from repro.attacks.harness import AttackOutcome, run_input_attack, run_persistent_attack
from repro.attacks.storage import ForkAttack, RollbackAttack
from repro.attacks.weights import WeightBitFlipAttack

__all__ = [
    "AttackOutcome",
    "CveCase",
    "ForkAttack",
    "FrameFlipAttack",
    "RollbackAttack",
    "TABLE1_CVES",
    "VulnClass",
    "WeightBitFlipAttack",
    "run_input_attack",
    "run_persistent_attack",
]
