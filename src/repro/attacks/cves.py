"""Table 1: TensorFlow vulnerability classes as injectable cases.

Each :class:`CveCase` models one published CVE: the vulnerability lives
in one operator implementation of one runtime engine (real CVEs are
kernel-specific), fires only on crafted inputs, and has the impact class
of the table (DoS, data corruption, incorrect results, code execution).
The "defending variants" column lists the diversification classes that
neutralize it, exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.graph.node import Node
from repro.runtime.base import InferenceRuntime
from repro.runtime.faults import apply_fault_spec

__all__ = ["CveCase", "Impact", "TABLE1_CVES", "VulnClass", "MALICIOUS_MARKER"]

#: Magnitude marker carried by crafted inputs; vulnerable kernels treat
#: any input above the threshold as having reached the buggy code path.
#: The value propagates multiplicatively through the network without
#: overflowing float32, so triggers fire at any depth.
MALICIOUS_MARKER = 1.0e12
MALICIOUS_THRESHOLD = 1.0e10


class VulnClass(enum.Enum):
    """Vulnerability classes of Table 1."""

    OOB = "out-of-bound read/write"
    UNP = "uninitialized/null pointer"
    FPE = "floating point exception"
    IO = "integer overflow"
    UAF = "use after free"
    ACF = "assertion check failure"


class Impact(enum.Enum):
    """Attack impact classes of Table 1."""

    DOS = "denial of service"
    DATA_CORRUPTION = "data corruption"
    RW_PRIMITIVES = "read/write primitives"
    CODE_EXECUTION = "code execution"
    INCORRECT_RESULTS = "incorrect results"


def _input_is_malicious(node: Node, inputs: list[np.ndarray]) -> bool:
    return any(
        np.issubdtype(arr.dtype, np.floating)
        and bool(np.any(np.abs(arr) >= MALICIOUS_THRESHOLD))
        for arr in inputs
    )


@dataclass(frozen=True)
class CveCase:
    """One row of Table 1, armed against a matching runtime."""

    cve_id: str
    vuln_class: VulnClass
    impact: Impact
    vulnerable_engine: str  # runtime engine containing the buggy kernel
    vulnerable_op: str  # operator whose kernel is buggy
    defending_variants: tuple[str, ...]

    @property
    def crashes(self) -> bool:
        """DoS/code-execution CVEs kill the process when triggered."""
        return self.impact in (Impact.DOS, Impact.CODE_EXECUTION, Impact.RW_PRIMITIVES)

    def affects(self, runtime: InferenceRuntime) -> bool:
        """Whether this runtime contains the vulnerable implementation."""
        return runtime.config.engine == self.vulnerable_engine

    def to_fault_spec(self) -> dict:
        """The wire-safe spec arming this CVE (see ``apply_fault_spec``).

        Crash CVEs kill the vulnerable kernel on the malicious path;
        corruption CVEs return a deterministic wrong (but finite) result
        on the malicious path only -- the uninitialized-memory /
        overflowed-index read outcome.
        """
        if self.crashes:
            return {
                "kind": "op-crash",
                "op": self.vulnerable_op,
                "threshold": MALICIOUS_THRESHOLD,
                "message": f"{self.cve_id} ({self.vuln_class.name}) triggered",
            }
        return {
            "kind": "op-corrupt",
            "op": self.vulnerable_op,
            "threshold": MALICIOUS_THRESHOLD,
            "value": 42.0,
        }

    def disarm_spec(self) -> dict:
        """The spec reverting :meth:`to_fault_spec` on one runtime."""
        return {"kind": "op-clear", "op": self.vulnerable_op}

    def arm(self, runtime: InferenceRuntime) -> bool:
        """Inject the vulnerability into a runtime if it is affected.

        Returns True when armed.  Unaffected runtimes (different engine:
        a "Different RT" defending variant) are left untouched.
        """
        if not self.affects(runtime):
            return False
        apply_fault_spec(runtime, self.to_fault_spec())
        return True

    def disarm(self, runtime: InferenceRuntime) -> bool:
        """Remove this CVE's fault from a runtime it was armed on.

        Narrow by construction: only the vulnerable operator's hook is
        cleared, so other armed faults survive.  Returns True when the
        runtime was affected (mirror of :meth:`arm`); a never-armed
        affected runtime is a harmless no-op.
        """
        if not self.affects(runtime):
            return False
        apply_fault_spec(runtime, self.disarm_spec())
        return True


def craft_malicious_input(shape: tuple[int, ...], *, seed: int = 0) -> np.ndarray:
    """An adversarial input embedding the malicious marker."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape).astype(np.float32)
    flat = data.reshape(-1)
    flat[0] = MALICIOUS_MARKER
    return data


#: The twelve CVEs of Table 1.  Vulnerable engine/op assignments model
#: "the vulnerability is specific to one implementation": interpreter
#: stands in for the TensorFlow/ORT kernel family, compiled for
#: TVM-generated kernels.
TABLE1_CVES: tuple[CveCase, ...] = (
    CveCase("CVE-2021-41226", VulnClass.OOB, Impact.DOS,
            "interpreter", "Conv", ("different-rt",)),
    CveCase("CVE-2022-41883", VulnClass.OOB, Impact.DATA_CORRUPTION,
            "interpreter", "Gemm", ("bounds-check", "different-rt")),
    CveCase("CVE-2022-41900", VulnClass.OOB, Impact.RW_PRIMITIVES,
            "interpreter", "MaxPool", ("asan", "different-rt")),
    CveCase("CVE-2023-25668", VulnClass.OOB, Impact.CODE_EXECUTION,
            "interpreter", "Softmax", ("aslr", "different-rt")),
    CveCase("CVE-2022-21739", VulnClass.UNP, Impact.DOS,
            "interpreter", "AveragePool", ("different-rt",)),
    CveCase("CVE-2023-25672", VulnClass.UNP, Impact.INCORRECT_RESULTS,
            "interpreter", "Mul", ("asan", "different-rt")),
    CveCase("CVE-2022-21725", VulnClass.FPE, Impact.DOS,
            "compiled", "BatchNormalization", ("different-rt", "error-handling")),
    CveCase("CVE-2022-21727", VulnClass.IO, Impact.DOS,
            "interpreter", "Reshape", ("different-rt", "compiler")),
    CveCase("CVE-2022-21733", VulnClass.IO, Impact.INCORRECT_RESULTS,
            "interpreter", "Concat", ("asan", "different-rt", "compiler")),
    CveCase("CVE-2021-37652", VulnClass.UAF, Impact.CODE_EXECUTION,
            "interpreter", "Add", ("different-rt", "asan")),
    CveCase("CVE-2022-35935", VulnClass.ACF, Impact.DOS,
            "compiled", "Relu", ("different-rt", "error-handling")),
    CveCase("CVE-2022-29191", VulnClass.ACF, Impact.DOS,
            "interpreter", "GlobalAveragePool", ("different-rt", "error-handling")),
)
