"""FrameFlip-style runtime code fault injection (§6.5 "Faults in variants").

The real attack flips one fault-vulnerable bit in the OpenBLAS library
code shared by a victim's inference process, silently depleting model
accuracy for all subsequent inputs.  Here, the attack corrupts every
GEMM result of one *named BLAS backend*: variants linked against a
different backend (Eigen/MKL analogs) are unaffected -- the exact
defense the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mvx.monitor import Monitor
from repro.runtime.faults import FaultInjector, backend_bitflip_fault

__all__ = ["FrameFlipAttack"]


@dataclass
class FrameFlipAttack:
    """Persistent library-level bit-flip against one BLAS backend."""

    target_backend: str = "openblas-sim"
    bit: int = 30
    flat_index: int = 0
    affected_variants: list[str] = field(default_factory=list)

    def launch(self, monitor: Monitor) -> list[str]:
        """Corrupt the target library in every variant that links it.

        Returns the affected variant ids (empty if no variant uses the
        targeted backend -- the attack simply fails, as against a
        different-BLAS variant in the paper).
        """
        self.affected_variants.clear()
        for connections in monitor.connections.values():
            for connection in connections:
                runtime = connection.host.runtime
                if runtime is None:
                    continue
                if runtime.config.blas_backend != self.target_backend:
                    continue
                hook = backend_bitflip_fault(flat_index=self.flat_index, bit=self.bit)
                install = getattr(runtime, "install_backend_fault", None)
                if install is not None:
                    install(hook)
                else:
                    assert runtime.kernel_context is not None
                    runtime.kernel_context.blas.fault_hook = hook
                self.affected_variants.append(connection.variant_id)
        return list(self.affected_variants)

    def lift(self, monitor: Monitor) -> None:
        """Remove the injected fault (for repeated experiments).

        Narrow restore: only the BLAS-level fault is cleared -- lifting
        a FrameFlip must not wipe unrelated faults (e.g. an armed CVE
        op hook) from the same runtime mid-campaign.
        """
        for connections in monitor.connections.values():
            for connection in connections:
                runtime = connection.host.runtime
                if runtime is not None and connection.variant_id in self.affected_variants:
                    FaultInjector(runtime).disarm_backend()
        self.affected_variants.clear()
