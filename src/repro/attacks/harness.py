"""Attack execution harness: launch, infer, classify the outcome.

An attack against MVTEE ends in one of three ways:

- ``detected-crash``: a variant died; the checkpoint vote sees a missing
  response and the monitor reacts;
- ``detected-divergence``: variants disagree at a checkpoint;
- ``undetected``: all (surviving) variants agreed -- either the attack
  failed entirely (no variant was susceptible) or it corrupted *every*
  variant identically (the homogeneous-replication failure mode MVX
  diversification exists to rule out).

``output_corrupted`` distinguishes those last two cases against a clean
reference output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mvx.monitor import MonitorError
from repro.mvx.system import MvteeSystem

__all__ = ["AttackOutcome", "run_input_attack", "run_persistent_attack"]


@dataclass(frozen=True)
class AttackOutcome:
    """Classification of one attack run."""

    detected: bool
    mechanism: str  # "crash" | "divergence" | "halt" | "none"
    crashes: int
    divergences: int
    output_corrupted: bool
    completed: bool
    detail: str = ""

    @property
    def silent_corruption(self) -> bool:
        """The dangerous case: wrong output accepted without detection."""
        return self.output_corrupted and not self.detected


def _run_and_classify(
    system: MvteeSystem,
    feeds: dict[str, np.ndarray],
    reference: dict[str, np.ndarray] | None,
) -> AttackOutcome:
    events_before_crash = len(system.monitor.crash_events())
    events_before_div = len(system.monitor.divergence_events())
    completed = True
    outputs: dict[str, np.ndarray] | None = None
    detail = ""
    try:
        outputs = system.infer(feeds)
    except MonitorError as exc:
        completed = False
        detail = str(exc)
    crashes = len(system.monitor.crash_events()) - events_before_crash
    divergences = len(system.monitor.divergence_events()) - events_before_div
    corrupted = False
    if outputs is not None and reference is not None:
        corrupted = any(
            not np.allclose(outputs[k], reference[k], rtol=1e-2, atol=1e-3)
            for k in reference
        )
    detected = crashes > 0 or divergences > 0 or not completed
    if crashes:
        mechanism = "crash"
    elif divergences:
        mechanism = "divergence"
    elif not completed:
        mechanism = "halt"
    else:
        mechanism = "none"
    return AttackOutcome(
        detected=detected,
        mechanism=mechanism,
        crashes=crashes,
        divergences=divergences,
        output_corrupted=corrupted,
        completed=completed,
        detail=detail,
    )


def run_input_attack(
    system: MvteeSystem,
    malicious_feeds: dict[str, np.ndarray],
) -> AttackOutcome:
    """Send crafted inputs through a deployment with armed CVE cases."""
    return _run_and_classify(system, malicious_feeds, reference=None)


def run_persistent_attack(
    system: MvteeSystem,
    benign_feeds: dict[str, np.ndarray],
    reference: dict[str, np.ndarray],
) -> AttackOutcome:
    """Run benign inputs after a persistent fault (FrameFlip, weight flip).

    ``reference`` is the clean deployment's output on the same feeds,
    used to detect silent corruption.
    """
    return _run_and_classify(system, benign_feeds, reference=reference)
