"""Storage- and identity-level attack drivers (§6.5).

- :class:`RollbackAttack` -- the untrusted host reverts a sealed file to
  an older (validly sealed) version; defeated by freshness metadata /
  monotonic counters.
- :class:`ForkAttack` -- the orchestrator starts a second TEE from the
  same variant image and tries to bind it; defeated by the monitor's
  one-live-binding rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.sealed import SealedBlob
from repro.mvx.monitor import Monitor, MonitorError
from repro.mvx.variant_host import VariantHost
from repro.tee.filesystem import ProtectedFs, RollbackError
from repro.variants.pool import VariantArtifact

__all__ = ["ForkAttack", "RollbackAttack"]


@dataclass
class RollbackAttack:
    """Capture-and-revert against a protected filesystem path."""

    path: str
    _captured: bytes | None = field(default=None, repr=False)

    def capture(self, fs: ProtectedFs) -> None:
        """Record the current (old) host-side version of the file."""
        raw = fs.host_store.get(self.path)
        if raw is None:
            raise KeyError(f"no file at {self.path!r} to capture")
        self._captured = raw

    def launch(self, fs: ProtectedFs) -> bool:
        """Revert the file and try to read it back through the TEE.

        Returns True when the rollback was DETECTED (the expected
        outcome), False if the stale data was silently accepted.
        """
        if self._captured is None:
            raise RuntimeError("capture() the old version before launching")
        fs.host_store[self.path] = self._captured
        stale = SealedBlob.from_bytes(self._captured)
        try:
            fs.read(self.path)
        except RollbackError:
            return True
        # Read succeeded: silent only if it really served the old version.
        current = SealedBlob.from_bytes(fs.host_store[self.path])
        return current.freshness != stale.freshness


@dataclass
class ForkAttack:
    """Bind a second instance of an already-bound variant."""

    artifact: VariantArtifact
    clone: VariantHost | None = None

    def launch(self, monitor: Monitor, cpu) -> bool:
        """Place a clone TEE and request binding.

        Returns True when the fork was REJECTED by the monitor (the
        expected outcome), False if the clone got bound.
        """
        self.clone = VariantHost.place(
            self.artifact, cpu, enclave_id=f"fork-{self.artifact.variant_id}"
        )
        try:
            monitor._bootstrap_variant(
                self.artifact.spec.partition_index, self.artifact, self.clone, "init"
            )
        except MonitorError:
            return True
        return self.artifact.variant_id not in monitor.ledger.active_bindings()
