"""Weight bit-flip attacks (Terminal Brain Damage / Rowhammer class).

Flips high-exponent bits of weight tensors *in one variant's loaded
model* -- the in-memory corruption a Rowhammer-style attacker achieves
against a single TEE's pages.  Graph-level-diversified variants hold
different weight layouts, so a layout-targeted flip cannot hit all
variants identically (the paper's §6.5 argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mvx.monitor import Monitor

__all__ = ["WeightBitFlipAttack"]


@dataclass
class WeightBitFlipAttack:
    """Flip bits in the prepared model of one deployed variant."""

    target_variant: str
    bit: int = 30
    num_flips: int = 1
    seed: int = 0
    flipped: list[tuple[str, int]] = field(default_factory=list)

    def launch(self, monitor: Monitor) -> list[tuple[str, int]]:
        """Corrupt weights inside the target variant's runtime.

        Returns (tensor, flat index) pairs flipped; empty if the variant
        is not deployed or holds no weights.
        """
        self.flipped.clear()
        rng = np.random.default_rng(self.seed)
        for connections in monitor.connections.values():
            for connection in connections:
                if connection.variant_id != self.target_variant:
                    continue
                runtime = connection.host.runtime
                if runtime is None or runtime.model is None:
                    continue
                names = [
                    name
                    for name, arr in runtime.model.initializers.items()
                    if arr.dtype == np.float32 and arr.size > 0
                ]
                for _ in range(self.num_flips):
                    if not names:
                        break
                    tensor = names[int(rng.integers(len(names)))]
                    weights = runtime.model.initializers[tensor]
                    index = int(rng.integers(weights.size))
                    flat = weights.reshape(-1).view(np.uint32)
                    flat[index] ^= np.uint32(1 << self.bit)
                    self.flipped.append((tensor, index))
        return list(self.flipped)

    def revert(self, monitor: Monitor) -> int:
        """Undo the launched flips (XOR is its own inverse).

        Re-applies the recorded (tensor, index) flips to the same
        variant's runtime, restoring the original weights bit-exactly.
        Returns the number of flips reverted; 0 if the variant is no
        longer deployed (a replacement variant was re-bootstrapped from
        the clean artifact, so there is nothing to undo).
        """
        reverted = 0
        for connections in monitor.connections.values():
            for connection in connections:
                if connection.variant_id != self.target_variant:
                    continue
                runtime = connection.host.runtime
                if runtime is None or runtime.model is None:
                    continue
                for tensor, index in self.flipped:
                    flat = runtime.model.initializers[tensor].reshape(-1).view(np.uint32)
                    flat[index] ^= np.uint32(1 << self.bit)
                    reverted += 1
        self.flipped.clear()
        return reverted
