"""Continuous chaos + attack campaigns against the live serving stack.

The deployment's security story (§6.5) is a list of attacks the
architecture defeats; the serving story (§6.4) is a latency SLO.  This
package welds the two together into a *continuously asserted floor*:
run the real attacks and real infrastructure faults against a live,
loaded deployment and require -- per injection, not on average -- that

- every fault is **detected** with correct culprit attribution (or
  shows unambiguously in telemetry where no voting surface exists),
- or better, **masked**: clients kept getting bit-correct answers,
- **zero** wrong outputs are ever served (silent corruption fails the
  whole campaign),
- p99 latency recovers within the restart budget after every
  worker-kill,
- and the flight-recorder hash chain still verifies at every step.

Layering:

- :mod:`repro.chaos.injectors` -- every attack from
  :mod:`repro.attacks` plus cluster-layer infrastructure faults
  (SIGKILL, SIGSTOP wedge, slowloris latency, shm starvation) as
  idempotent inject/restore pairs;
- :mod:`repro.chaos.campaign` -- the seeded scheduler driving one
  injection at a time under open-loop load, with settle windows,
  healing, and recovery tracking;
- :mod:`repro.chaos.verdict` -- the pure judgment layer
  (detected / masked / missed / silent-corruption / error);
- :mod:`repro.chaos.report` -- campaign aggregation and the
  ``mvtee_chaos_*`` metric family.
"""

from repro.chaos.campaign import ChaosCampaign, PlannedInjection
from repro.chaos.injectors import (
    ChaosInjector,
    CveInjector,
    ForkInjector,
    FrameFlipInjector,
    InjectionError,
    InjectionTarget,
    RollbackInjector,
    ShmStarvationInjector,
    SlowVariantInjector,
    WeightFlipInjector,
    WorkerKillInjector,
    WorkerWedgeInjector,
)
from repro.chaos.report import CampaignReport, register_chaos_metrics
from repro.chaos.verdict import (
    OUTCOME_DETECTED,
    OUTCOME_ERROR,
    OUTCOME_MASKED,
    OUTCOME_MISSED,
    OUTCOME_SILENT_CORRUPTION,
    InjectionVerdict,
    ProbeResult,
    WindowObservation,
    judge,
)

__all__ = [
    "CampaignReport",
    "ChaosCampaign",
    "ChaosInjector",
    "CveInjector",
    "ForkInjector",
    "FrameFlipInjector",
    "InjectionError",
    "InjectionTarget",
    "InjectionVerdict",
    "OUTCOME_DETECTED",
    "OUTCOME_ERROR",
    "OUTCOME_MASKED",
    "OUTCOME_MISSED",
    "OUTCOME_SILENT_CORRUPTION",
    "PlannedInjection",
    "ProbeResult",
    "RollbackInjector",
    "ShmStarvationInjector",
    "SlowVariantInjector",
    "WeightFlipInjector",
    "WindowObservation",
    "WorkerKillInjector",
    "WorkerWedgeInjector",
    "judge",
    "register_chaos_metrics",
]
