"""Chaos campaigns: seeded fault schedules against a live deployment.

:class:`ChaosCampaign` drives the whole loop the ROADMAP's open item
asks for -- *continuous chaos + attack campaigns against the serving
stack, with an asserted SLO floor*:

1. **Plan** -- a seeded RNG fixes every choice (which injector, which
   victim variant, which probe payloads, in which order) up front, so
   the same seed against the same deployment replays the identical
   injection plan.  The plan is JSON; replay identity is testable as
   plain equality.
2. **Baseline** -- clean-system reference outputs for the benign feed
   and for every crafted probe are computed *before* anything is
   injected; they are the ground truth that makes "silent corruption"
   a judgment rather than a guess.
3. **Drive** -- an :class:`~repro.serving.OpenLoopLoadGenerator` offers
   paced traffic for the campaign's whole duration.  One injection is
   in flight at a time: settle, inject, observe a window (incidents,
   traffic outcomes, probes, health evaluations, heartbeat peaks),
   restore, heal, wait for p99 recovery, verify the audit chain.
4. **Judge** -- each window becomes an
   :class:`~repro.chaos.verdict.InjectionVerdict` via the pure
   :func:`~repro.chaos.verdict.judge`; the
   :class:`~repro.chaos.report.CampaignReport` aggregates them and
   asserts the floor.

The campaign *requires* a protective response action: under
``ResponseAction.HALT`` the first detection would stop the deployment,
which is the opposite of what a continuous campaign measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.chaos.injectors import ChaosInjector, InjectionError, InjectionTarget
from repro.chaos.report import CampaignReport, register_chaos_metrics
from repro.chaos.verdict import (
    OUTCOME_ERROR,
    InjectionVerdict,
    ProbeResult,
    WindowObservation,
    judge,
)
from repro.mvx.events import ResponseAction
from repro.mvx.variant_host import VariantHost
from repro.observability.health import HealthMonitor, default_rules
from repro.observability.recorder import (
    KIND_CHAOS_INJECTED,
    KIND_CHAOS_RESTORED,
    AuditChainError,
)
from repro.serving.errors import ServingError
from repro.serving.loadgen import OpenLoopLoadGenerator

__all__ = ["ChaosCampaign", "PlannedInjection"]


@dataclass(frozen=True)
class PlannedInjection:
    """One resolved step of a campaign plan (pure data, replayable)."""

    index: int
    name: str
    fault_class: str
    params: dict

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "fault_class": self.fault_class,
            "params": self.params,
        }


def _outputs_close(
    result: dict, reference: dict, *, rtol: float = 1e-2, atol: float = 1e-3
) -> bool:
    """Served outputs match the clean-system reference (all tensors)."""
    if set(result) != set(reference):
        return False
    return all(
        np.allclose(result[name], reference[name], rtol=rtol, atol=atol)
        for name in reference
    )


class ChaosCampaign:
    """One seeded pass of a chaos roster over a live serving deployment."""

    def __init__(
        self,
        system,
        engine,
        roster: list[ChaosInjector],
        *,
        benign_feeds: dict,
        seed: int = 0,
        window_s: float = 1.0,
        settle_s: float = 0.4,
        recovery_timeout_s: float = 8.0,
        rate_rps: float = 40.0,
        deadline_s: float = 2.0,
        p99_budget_factor: float = 4.0,
        p99_floor_s: float = 0.25,
        probes_per_window: int | None = None,
    ):
        if system.monitor.response_action is ResponseAction.HALT:
            raise ValueError(
                "chaos campaigns require a protective response action "
                "(DROP_VARIANT / RESTART_BATCH / REPLACE_VARIANT); under HALT "
                "the first detection would stop the deployment"
            )
        self.system = system
        self.engine = engine
        self.roster = list(roster)
        self.benign_feeds = {k: np.array(v, copy=True) for k, v in benign_feeds.items()}
        self.seed = int(seed)
        self.window_s = window_s
        self.settle_s = settle_s
        self.recovery_timeout_s = recovery_timeout_s
        self.rate_rps = rate_rps
        self.deadline_s = deadline_s
        self.p99_budget_factor = p99_budget_factor
        self.p99_floor_s = p99_floor_s
        self.probes_per_window = probes_per_window
        self.registry = engine.registry
        self.recorder = engine.recorder
        self.target = InjectionTarget(
            system=system, engine=engine, benign_feeds=self.benign_feeds
        )
        self._plan: list[PlannedInjection] | None = None
        self._planned_injectors: list[ChaosInjector] = []
        register_chaos_metrics(self.registry)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self) -> list[PlannedInjection]:
        """Resolve the roster against the deployment, seeded; cached.

        Unsupported injectors (e.g. worker faults against an in-process
        deployment) are skipped; the survivors run in a seeded
        permutation.  Every random choice any injector makes is drawn
        from this one generator, so plan JSON equality *is* replay
        identity.
        """
        if self._plan is not None:
            return self._plan
        rng = np.random.default_rng(self.seed)
        supported = [i for i in self.roster if i.supported(self.target)]
        order = [int(k) for k in rng.permutation(len(supported))]
        plan: list[PlannedInjection] = []
        self._planned_injectors = []
        for step, roster_index in enumerate(order):
            injector = supported[roster_index]
            params = injector.resolve(self.target, rng)
            self._planned_injectors.append(injector)
            plan.append(
                PlannedInjection(
                    index=step,
                    name=injector.name,
                    fault_class=injector.fault_class,
                    params=params,
                )
            )
        self._plan = plan
        return plan

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Execute the plan under load and return the aggregated report."""
        plan = self.plan()
        started_wall = time.monotonic()
        baseline_roster = self.target.live()
        benign_reference = self.system.infer(
            {k: np.array(v, copy=True) for k, v in self.benign_feeds.items()}
        )
        # Probe ground truth comes from the *clean* system: a crafted
        # payload is only dangerous once its CVE is armed, so the clean
        # deployment yields the honest expected output.
        probe_references: dict[int, list[dict]] = {}
        for step, injector in zip(plan, self._planned_injectors):
            references = []
            for feeds in injector.probes(self.target):
                references.append(
                    self.system.infer({k: np.array(v, copy=True) for k, v in feeds.items()})
                )
            probe_references[step.index] = references

        # ``start()`` is idempotent while running; only stop at the end
        # if the engine was not already serving when the campaign began.
        engine_started_here = not any(
            worker.is_alive() for worker in self.engine._workers.values()
        )
        self.engine.start()
        health = HealthMonitor(
            self.registry,
            default_rules(),
            window_s=max(4.0, 4 * self.window_s),
            recorder=self.recorder,
        )
        loadgen = OpenLoopLoadGenerator(
            self.engine,
            lambda seq: {k: np.array(v, copy=True) for k, v in self.benign_feeds.items()},
            rate_rps=self.rate_rps,
            deadline_s=self.deadline_s,
            expect=lambda result: _outputs_close(result, benign_reference),
        )
        verdicts: list[InjectionVerdict] = []
        baseline_p99 = None
        try:
            loadgen.start()
            baseline_p99 = self._warm_up(loadgen)
            budget = max(
                self.p99_floor_s, self.p99_budget_factor * (baseline_p99 or 0.0)
            )
            for step, injector in zip(plan, self._planned_injectors):
                verdicts.append(
                    self._run_injection(
                        step,
                        injector,
                        loadgen,
                        health,
                        baseline_roster,
                        baseline_p99=baseline_p99 or 0.0,
                        recovery_budget_s=budget,
                        probe_references=probe_references.get(step.index, []),
                    )
                )
        finally:
            loadgen.stop()
            if engine_started_here:
                self.engine.stop()
        traffic = loadgen.report()
        for verdict in verdicts:
            self.registry.counter(
                "mvtee_chaos_verdicts_total", "Chaos injection verdicts by outcome"
            ).inc(outcome=verdict.outcome)
            if verdict.recovery_s is not None:
                self.registry.histogram(
                    "mvtee_chaos_recovery_seconds",
                    "Seconds from fault restore to p99 back under budget",
                ).observe(verdict.recovery_s)
        return CampaignReport(
            seed=self.seed,
            plan=[p.to_json() for p in plan],
            verdicts=verdicts,
            baseline_p99_s=baseline_p99,
            traffic=traffic,
            wall_s=time.monotonic() - started_wall,
        )

    # ------------------------------------------------------------------
    # One injection
    # ------------------------------------------------------------------

    def _run_injection(
        self,
        step: PlannedInjection,
        injector: ChaosInjector,
        loadgen: OpenLoopLoadGenerator,
        health: HealthMonitor,
        baseline_roster: list,
        *,
        baseline_p99: float,
        recovery_budget_s: float,
        probe_references: list[dict],
    ) -> InjectionVerdict:
        self._settle(loadgen)
        incidents_before = len(self.system.monitor.incidents())
        window_mark = loadgen.mark()
        health_path = [health.evaluate().status.value]
        if self.recorder is not None:
            self.recorder.record(
                KIND_CHAOS_INJECTED,
                injection=step.index,
                name=step.name,
                fault_class=step.fault_class,
                targets=list(injector.targets),
            )
        self.registry.counter(
            "mvtee_chaos_injections_total", "Chaos injections applied by fault class"
        ).inc(fault_class=step.fault_class)

        probe_feeds = injector.probes(self.target)
        if self.probes_per_window is not None:
            probe_feeds = probe_feeds[: self.probes_per_window]
            probe_references = probe_references[: self.probes_per_window]

        try:
            injector.inject(self.target)
        except InjectionError as exc:
            return self._error_verdict(step, injector, str(exc))

        heartbeat_peak = None
        probes: list[ProbeResult] = []
        try:
            heartbeat_peak, health_path = self._observe_window(
                injector, health, health_path, probe_feeds, probe_references, probes
            )
        finally:
            injector.restore(self.target)
            if self.recorder is not None:
                self.recorder.record(
                    KIND_CHAOS_RESTORED, injection=step.index, name=step.name
                )

        self._heal(baseline_roster)
        recovered, recovery_s = self._wait_recovery(loadgen, recovery_budget_s)
        health_path.append(health.evaluate().status.value)

        chain_ok, chain_error = True, ""
        if self.recorder is not None:
            try:
                self.recorder.verify_chain()
            except AuditChainError as exc:
                chain_ok, chain_error = False, str(exc)

        observation = WindowObservation(
            incidents=self.system.monitor.incidents()[incidents_before:],
            counts=loadgen.counts_since(window_mark),
            probes=probes,
            health_path=health_path,
            heartbeat_peak_s=heartbeat_peak,
            chain_ok=chain_ok,
            chain_error=chain_error,
            recovered=recovered,
            recovery_s=recovery_s,
            recovery_budget_s=recovery_budget_s,
            telemetry={
                "window_p99_s": loadgen.p99_since(window_mark),
                "baseline_p99_s": baseline_p99,
            },
        )
        return judge(step.name, step.fault_class, injector, observation)

    def _observe_window(
        self,
        injector: ChaosInjector,
        health: HealthMonitor,
        health_path: list,
        probe_feeds: list,
        probe_references: list,
        probes: list,
    ):
        """Tick through the injection window, firing probes mid-window."""
        heartbeat_peak: float | None = None
        deadline = time.monotonic() + self.window_s
        probe_at = []
        if probe_feeds:
            # Space probes through the window, first one early.
            stride = self.window_s / (len(probe_feeds) + 1)
            probe_at = [
                time.monotonic() + stride * (i + 1) for i in range(len(probe_feeds))
            ]
        fired = 0
        last_health = time.monotonic()
        while time.monotonic() < deadline:
            now = time.monotonic()
            for vid in injector.targets:
                age = self.target.heartbeat_age(vid)
                if age is not None:
                    heartbeat_peak = age if heartbeat_peak is None else max(heartbeat_peak, age)
            if now - last_health >= 0.2:
                health_path.append(health.evaluate().status.value)
                last_health = now
            while fired < len(probe_at) and now >= probe_at[fired]:
                reference = (
                    probe_references[fired] if fired < len(probe_references) else None
                )
                probes.append(self._fire_probe(probe_feeds[fired], reference))
                fired = fired + 1
            time.sleep(0.05)
        # Any probes the window ran out of time for still count.
        while fired < len(probe_feeds):
            reference = probe_references[fired] if fired < len(probe_references) else None
            probes.append(self._fire_probe(probe_feeds[fired], reference))
            fired += 1
        return heartbeat_peak, health_path

    def _fire_probe(self, feeds: dict, reference: dict | None) -> ProbeResult:
        """One crafted request through the engine, judged vs. its reference."""
        try:
            ticket = self.engine.submit(
                {k: np.array(v, copy=True) for k, v in feeds.items()},
                deadline_s=self.deadline_s,
            )
            result = ticket.result(self.deadline_s + 2.0)
        except ServingError as exc:
            return ProbeResult(
                kind="malicious", completed=False, corrupted=None, error=str(exc)
            )
        except Exception as exc:  # timeout waiting on the ticket, etc.
            return ProbeResult(
                kind="malicious", completed=False, corrupted=None, error=str(exc)
            )
        corrupted = None
        if reference is not None:
            corrupted = not _outputs_close(result, reference)
        return ProbeResult(kind="malicious", completed=True, corrupted=corrupted)

    # ------------------------------------------------------------------
    # Settle / heal / recover
    # ------------------------------------------------------------------

    def _settle(self, loadgen: OpenLoopLoadGenerator) -> None:
        time.sleep(self.settle_s)

    def _warm_up(self, loadgen: OpenLoopLoadGenerator) -> float | None:
        """Wait for enough clean samples to establish the baseline p99."""
        deadline = time.monotonic() + max(4.0, self.recovery_timeout_s)
        mark = 0
        while time.monotonic() < deadline:
            ok = loadgen.samples_since(mark, outcome="ok")
            if len(ok) >= 20:
                return loadgen.p99_since(mark)
            time.sleep(0.05)
        return loadgen.p99_since(mark)

    def _heal(self, baseline_roster: list) -> None:
        """Re-provision every variant the protective response dropped.

        DROP_VARIANT retires the binding permanently (by design: the
        paper's response drops the outvoted variant).  A *campaign*
        needs the deployment back at full strength before the next
        injection, so this is the operator's re-provision step: the
        supervisor's budgeted restart in cluster mode, a fresh
        place-and-bind in in-process mode.
        """
        missing = [entry for entry in baseline_roster if entry not in self.target.live()]
        cluster = self.target.cluster
        for index, vid in missing:
            if cluster is not None:
                try:
                    cluster.restart_now(vid)
                except KeyError:
                    pass
            else:
                artifact = next(
                    (
                        a
                        for a in self.system.pool.for_partition(index)
                        if a.variant_id == vid
                    ),
                    None,
                )
                if artifact is None:
                    continue
                host = VariantHost.place(
                    artifact,
                    self.system.orchestrator._pick_cpu(),
                    enclave_id=f"chaos-heal-{vid}-{int(time.monotonic() * 1000)}",
                )
                self.system.monitor.bind_variant(index, artifact, host, event="restart")
                self.system.hosts[vid] = host
        if missing:
            deadline = time.monotonic() + self.recovery_timeout_s
            while time.monotonic() < deadline:
                if all(entry in self.target.live() for entry in baseline_roster):
                    return
                if cluster is not None:
                    cluster.poll()
                time.sleep(0.05)

    def _wait_recovery(
        self, loadgen: OpenLoopLoadGenerator, budget_s: float
    ) -> tuple[bool, float | None]:
        """Poll the rolling p99 until it is back under budget.

        Recovery means the *recent* tail (last ~15 ok samples since the
        restore) is under ``budget_s`` -- the fault's own window samples
        must not poison the measurement.
        """
        started = time.monotonic()
        mark = loadgen.mark()
        deadline = started + self.recovery_timeout_s
        while time.monotonic() < deadline:
            ok = loadgen.samples_since(mark, outcome="ok")
            if len(ok) >= 10:
                p99 = loadgen.p99_since(mark, last=15)
                if p99 is not None and p99 <= budget_s:
                    return True, time.monotonic() - started
            time.sleep(0.05)
        return False, None

    def _error_verdict(
        self, step: PlannedInjection, injector: ChaosInjector, reason: str
    ) -> InjectionVerdict:
        return InjectionVerdict(
            name=step.name,
            fault_class=step.fault_class,
            targets=tuple(injector.targets),
            outcome=OUTCOME_ERROR,
            detected=False,
            masked=False,
            culprit_correct=None,
            silent_corruptions=0,
            incident_ids=(),
            incident_kinds=(),
            counts={},
            health_path=(),
            chain_ok=True,
            recovered=False,
            recovery_s=None,
            recovery_budget_s=None,
            detail=reason,
        )
