"""Chaos injectors: every attack and infrastructure fault as a revertible unit.

An injector is an idempotent *inject / restore* pair against a live
:class:`InjectionTarget` (a deployed system plus its serving engine).
``restore`` is guaranteed-safe: it tolerates variants that were dropped
or workers that were restarted mid-window (a freshly re-bootstrapped
incarnation is clean by construction, so there is nothing to undo), and
calling it twice is a no-op.  Used as a context manager, restore runs
even when the window raises.

Two injection routes, because process-mode workers are *forked copies*:
arming a fault on the parent-side runtime after the fork never reaches
the child.  :meth:`InjectionTarget.apply_spec` sends a wire-safe fault
spec (:func:`repro.runtime.faults.apply_fault_spec`) through the
worker's ``inject`` op in process mode and applies it directly to the
runtime in-process.

Detection modes (consumed by :mod:`repro.chaos.verdict`):

- ``incident`` -- the monitor must raise a divergence/crash incident
  naming the attacked variant (CVE payloads, FrameFlip, weight flips,
  worker kill);
- ``telemetry`` -- no voting surface; the fault must show in the SLO
  telemetry instead (heartbeat age for a wedged worker, latency for a
  slowloris'd variant, service continuity for an shm outage);
- ``direct`` -- the defense mechanism itself returns the verdict
  (rollback freshness check, fork-attack binding rejection).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np

from repro.attacks.cves import MALICIOUS_MARKER, CveCase, craft_malicious_input
from repro.attacks.storage import ForkAttack, RollbackAttack
from repro.crypto.keys import KeyManager
from repro.crypto.sealed import seal_bytes
from repro.mvx.variant_host import VariantHost, VariantUnavailable
from repro.runtime.faults import apply_fault_spec
from repro.tee.filesystem import MonotonicCounterService, ProtectedFs

__all__ = [
    "ChaosInjector",
    "CveInjector",
    "ForkInjector",
    "FrameFlipInjector",
    "InjectionError",
    "InjectionTarget",
    "RollbackInjector",
    "ShmStarvationInjector",
    "SlowVariantInjector",
    "WeightFlipInjector",
    "WorkerKillInjector",
    "WorkerWedgeInjector",
]

#: Partitions need at least this many replicas for voting to mask a
#: single corrupted variant (majority of the survivors must be clean).
MASKABLE_REPLICAS = 3


class InjectionError(Exception):
    """An injection could not be applied (target gone, spec rejected)."""


@dataclass
class InjectionTarget:
    """The live deployment a campaign attacks: system + serving engine."""

    system: object  # MvteeSystem
    engine: object  # ServingEngine
    #: Template feeds for crafting probes (set by the campaign).
    benign_feeds: dict | None = None

    @property
    def monitor(self):
        return self.system.monitor

    @property
    def cluster(self):
        return getattr(self.system, "cluster", None)

    # -- roster ---------------------------------------------------------

    def live(self) -> list[tuple[int, str]]:
        """(partition, variant_id) of every bound connection, sorted."""
        return sorted(
            (index, connection.variant_id)
            for index, connections in self.monitor.connections.items()
            for connection in connections
        )

    def replicated(self, min_variants: int = MASKABLE_REPLICAS) -> list[tuple[int, str]]:
        """Live variants in partitions replicated enough to mask a loss."""
        return [
            (index, vid)
            for index, vid in self.live()
            if len(self.monitor.connections.get(index, [])) >= min_variants
        ]

    def connection(self, variant_id: str):
        for connections in self.monitor.connections.values():
            for connection in connections:
                if connection.variant_id == variant_id:
                    return connection
        return None

    def worker(self, variant_id: str):
        """The live worker process of one variant (None in-process/down)."""
        cluster = self.cluster
        if cluster is None:
            return None
        worker = cluster.worker(variant_id)
        if worker is not None and worker.is_alive():
            return worker
        return None

    # -- fault routing --------------------------------------------------

    def apply_spec(self, variant_id: str, spec: dict) -> bool:
        """Route one fault spec to wherever the variant's runtime lives.

        Returns True when applied; False when the variant is gone or the
        route failed transiently (restore paths treat that as "nothing
        left to undo").
        """
        worker = self.worker(variant_id)
        if worker is not None:
            try:
                worker.inject_fault(spec)
                return True
            except VariantUnavailable:
                return False
        connection = self.connection(variant_id)
        if connection is None:
            return False
        runtime = connection.host.runtime
        if runtime is None:
            return False
        try:
            apply_fault_spec(runtime, spec)
        except (KeyError, ValueError, TypeError, IndexError, AssertionError):
            return False
        return True

    def heartbeat_age(self, variant_id: str) -> float | None:
        """The supervisor's heartbeat-age gauge for one variant."""
        cluster = self.cluster
        if cluster is None:
            return None
        gauge = cluster._registry.gauge(
            "mvtee_worker_heartbeat_age_seconds",
            "Seconds since each worker's last successful round trip",
        )
        return float(gauge.value(variant=variant_id))


@dataclass
class ChaosInjector:
    """Base injector: resolve (plan-time), inject, restore, judge hooks."""

    name = "chaos"
    fault_class = "generic"
    detection = "incident"
    #: Set by :meth:`resolve`; the variants culprit attribution must name.
    targets: list[str] = field(default_factory=list)

    def supported(self, target: InjectionTarget) -> bool:
        """Whether this injector can run against this deployment."""
        return True

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        """Fix all randomness at plan time; returns JSON-able plan params.

        Called exactly once per campaign plan; the returned params (and
        :attr:`targets`) must be a pure function of the deployment state
        and ``rng`` draws, so the same seed replays the same plan.
        """
        return {}

    def inject(self, target: InjectionTarget) -> None:
        raise NotImplementedError

    def restore(self, target: InjectionTarget) -> None:
        raise NotImplementedError

    def probes(self, target: InjectionTarget) -> list[dict]:
        """Crafted feeds to fire during the window (e.g. CVE payloads)."""
        return []

    def __enter__(self):
        if getattr(self, "_ctx_target", None) is None:
            raise RuntimeError("use injector.on(target) as the context manager")
        self.inject(self._ctx_target)
        return self

    def __exit__(self, *exc) -> None:
        target, self._ctx_target = self._ctx_target, None
        self.restore(target)

    def on(self, target: InjectionTarget) -> "ChaosInjector":
        """Bind a target for ``with`` use: ``with injector.on(target): ...``."""
        self._ctx_target = target
        return self


def _pick(rng: np.random.Generator, candidates: list):
    """One deterministic draw from an ordered candidate list."""
    if not candidates:
        return None
    return candidates[int(rng.integers(len(candidates)))]


# ----------------------------------------------------------------------
# Attack adapters (repro.attacks under live load)
# ----------------------------------------------------------------------


@dataclass
class CveInjector(ChaosInjector):
    """Arm one Table-1 CVE on a minority of each replicated partition.

    At most ``max_armed_per_partition`` affected variants per partition
    are armed (one exploit hits one victim process at a time -- and a
    majority-armed partition would out-vote the clean variant, which is
    the homogeneous-replication failure mode, not a diversification
    test).  Crafted probes carrying the malicious marker are fired
    through the serving engine during the window.
    """

    case: CveCase = None
    max_armed_per_partition: int = 1
    partitions: tuple[int, ...] | None = None
    num_probes: int = 2

    name = "cve"
    fault_class = "cve"
    detection = "incident"

    def __post_init__(self):
        if self.case is None:
            raise ValueError("CveInjector requires a CveCase")
        self.name = f"cve:{self.case.cve_id}"
        self._plan_armed: list[tuple[int, str]] = []
        self._live_armed: list[tuple[int, str]] = []
        self._probe_seeds: list[int] = []

    def _eligible(self, target: InjectionTarget) -> list[tuple[int, str]]:
        armed = []
        for index in sorted(target.monitor.connections):
            connections = target.monitor.connections[index]
            if self.partitions is not None and index not in self.partitions:
                continue
            if len(connections) < MASKABLE_REPLICAS:
                continue
            affected = sorted(
                (
                    c.variant_id
                    for c in connections
                    if c.host.runtime is not None and self.case.affects(c.host.runtime)
                ),
            )
            for vid in affected[: self.max_armed_per_partition]:
                armed.append((index, vid))
        return armed

    def supported(self, target: InjectionTarget) -> bool:
        return bool(self._eligible(target))

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        self._plan_armed = self._eligible(target)
        self.targets = [vid for _, vid in self._plan_armed]
        self._probe_seeds = [int(rng.integers(2**31)) for _ in range(self.num_probes)]
        return {
            "cve": self.case.cve_id,
            "op": self.case.vulnerable_op,
            "impact": self.case.impact.value,
            "crashes": self.case.crashes,
            "armed": [[index, vid] for index, vid in self._plan_armed],
            "probe_seeds": list(self._probe_seeds),
        }

    def inject(self, target: InjectionTarget) -> None:
        self._live_armed = []
        spec = self.case.to_fault_spec()
        for index, vid in self._plan_armed:
            if target.apply_spec(vid, spec):
                self._live_armed.append((index, vid))
        if not self._live_armed:
            raise InjectionError(
                f"{self.name}: no armable variant left (planned {self._plan_armed})"
            )

    def restore(self, target: InjectionTarget) -> None:
        spec = self.case.disarm_spec()
        for _, vid in self._live_armed:
            # A restarted worker is clean already; op-clear is a no-op there.
            target.apply_spec(vid, spec)
        self._live_armed = []

    def probes(self, target: InjectionTarget) -> list[dict]:
        if target.benign_feeds is None:
            return []
        keys = sorted(target.benign_feeds)
        crafted = []
        for seed in self._probe_seeds:
            feeds = {k: np.array(v, copy=True) for k, v in target.benign_feeds.items()}
            first = keys[0]
            feeds[first] = craft_malicious_input(feeds[first].shape, seed=seed)
            crafted.append(feeds)
        return crafted


@dataclass
class FrameFlipInjector(ChaosInjector):
    """Library bit-flip in one victim variant's BLAS backend.

    The FrameFlip attack flips a bit in library code mapped into one
    victim process; here the corrupted backend is armed in exactly one
    variant of a replicated partition, chosen at plan time.  Persistent:
    plain benign traffic diverges at the next checkpoint.
    """

    bit: int = 30
    flat_index: int = 0

    name = "frameflip"
    fault_class = "frameflip"
    detection = "incident"

    def __post_init__(self):
        self._victim: tuple[int, str] | None = None
        self._armed = False

    def supported(self, target: InjectionTarget) -> bool:
        return bool(target.replicated())

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        self._victim = _pick(rng, target.replicated())
        self.targets = [self._victim[1]] if self._victim else []
        backend = None
        if self._victim is not None:
            connection = target.connection(self._victim[1])
            if connection is not None and connection.host.runtime is not None:
                backend = connection.host.runtime.config.blas_backend
        return {
            "victim": list(self._victim) if self._victim else None,
            "backend": backend,
            "bit": self.bit,
            "index": self.flat_index,
        }

    def inject(self, target: InjectionTarget) -> None:
        if self._victim is None:
            raise InjectionError(f"{self.name}: no replicated victim available")
        spec = {"kind": "backend-bitflip", "bit": self.bit, "index": self.flat_index}
        if not target.apply_spec(self._victim[1], spec):
            raise InjectionError(f"{self.name}: victim {self._victim[1]} unreachable")
        self._armed = True

    def restore(self, target: InjectionTarget) -> None:
        if self._armed and self._victim is not None:
            target.apply_spec(self._victim[1], {"kind": "backend-clear"})
        self._armed = False


@dataclass
class WeightFlipInjector(ChaosInjector):
    """Rowhammer-style bit flips in one variant's loaded weights.

    The flip plan (tensor, flat index) is computed at plan time from the
    parent-side model copy and applied through the spec route, so it
    reaches a forked worker's own memory.  XOR is involutive: restore
    re-applies the identical spec -- but only to the *same incarnation*
    (same worker pid / same runtime object); a variant re-bootstrapped
    mid-window is clean already and re-flipping it would corrupt it.
    """

    num_flips: int = 3
    bit: int = 30

    name = "weight-flip"
    fault_class = "weight-flip"
    detection = "incident"

    def __post_init__(self):
        self._victim: tuple[int, str] | None = None
        self._flips: list[tuple[str, int]] = []
        self._incarnation = None
        self._applied = False

    def supported(self, target: InjectionTarget) -> bool:
        for _, vid in target.replicated():
            connection = target.connection(vid)
            if connection is None or connection.host.runtime is None:
                continue
            model = connection.host.runtime.model
            if model is not None and any(
                arr.dtype == np.float32 and arr.size
                for arr in model.initializers.values()
            ):
                return True
        return False

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        candidates = []
        for index, vid in target.replicated():
            connection = target.connection(vid)
            if connection is None or connection.host.runtime is None:
                continue
            model = connection.host.runtime.model
            if model is not None and any(
                arr.dtype == np.float32 and arr.size
                for arr in model.initializers.values()
            ):
                candidates.append((index, vid))
        self._victim = _pick(rng, candidates)
        self._flips = []
        self.targets = []
        if self._victim is None:
            return {"victim": None}
        self.targets = [self._victim[1]]
        model = target.connection(self._victim[1]).host.runtime.model
        names = sorted(
            name
            for name, arr in model.initializers.items()
            if arr.dtype == np.float32 and arr.size
        )
        for _ in range(self.num_flips):
            tensor = names[int(rng.integers(len(names)))]
            index = int(rng.integers(model.initializers[tensor].size))
            self._flips.append((tensor, index))
        return {
            "victim": list(self._victim),
            "flips": [[t, i] for t, i in self._flips],
            "bit": self.bit,
        }

    def _current_incarnation(self, target: InjectionTarget):
        worker = target.worker(self._victim[1])
        if worker is not None:
            return ("worker", worker.pid)
        connection = target.connection(self._victim[1])
        if connection is None or connection.host.runtime is None:
            return None
        return ("inprocess", id(connection.host.runtime))

    def _spec(self) -> dict:
        return {
            "kind": "weight-flips",
            "flips": [[t, i] for t, i in self._flips],
            "bit": self.bit,
        }

    def inject(self, target: InjectionTarget) -> None:
        if self._victim is None or not self._flips:
            raise InjectionError(f"{self.name}: no victim with float32 weights")
        self._incarnation = self._current_incarnation(target)
        if self._incarnation is None or not target.apply_spec(
            self._victim[1], self._spec()
        ):
            raise InjectionError(f"{self.name}: victim {self._victim[1]} unreachable")
        self._applied = True

    def restore(self, target: InjectionTarget) -> None:
        if not self._applied:
            return
        self._applied = False
        if self._current_incarnation(target) == self._incarnation:
            target.apply_spec(self._victim[1], self._spec())


# ----------------------------------------------------------------------
# Infrastructure faults (cluster layer)
# ----------------------------------------------------------------------


@dataclass
class WorkerKillInjector(ChaosInjector):
    """SIGKILL one variant's worker process (cluster mode only).

    Restore waits for the supervisor to refill the slot (budgeted
    restart with full re-attestation); the crash incident must name the
    killed variant and p99 must recover within the restart budget.
    """

    wait_s: float = 6.0

    name = "worker-kill"
    fault_class = "worker-kill"
    detection = "incident"

    def __post_init__(self):
        self._victim: tuple[int, str] | None = None
        self._pid: int | None = None

    def supported(self, target: InjectionTarget) -> bool:
        return target.cluster is not None and bool(target.replicated())

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        candidates = [
            (index, vid)
            for index, vid in target.replicated()
            if target.worker(vid) is not None
        ]
        self._victim = _pick(rng, candidates)
        self.targets = [self._victim[1]] if self._victim else []
        return {"victim": list(self._victim) if self._victim else None}

    def inject(self, target: InjectionTarget) -> None:
        if self._victim is None:
            raise InjectionError(f"{self.name}: no killable worker")
        worker = target.worker(self._victim[1])
        if worker is None or worker.pid is None:
            raise InjectionError(f"{self.name}: worker {self._victim[1]} not running")
        self._pid = worker.pid
        os.kill(self._pid, signal.SIGKILL)

    def restore(self, target: InjectionTarget) -> None:
        """Wait for the supervised restart to land (nothing to revert)."""
        if self._victim is None or target.cluster is None:
            return
        deadline = time.monotonic() + self.wait_s
        vid = self._victim[1]
        while time.monotonic() < deadline:
            worker = target.worker(vid)
            if (
                worker is not None
                and worker.pid != self._pid
                and target.connection(vid) is not None
            ):
                return
            time.sleep(0.05)


@dataclass
class WorkerWedgeInjector(ChaosInjector):
    """SIGSTOP one worker so heartbeats stall (restore sends SIGCONT).

    The wedged worker stays "alive" to the supervisor (no restart), so
    detection is telemetry: the per-variant heartbeat-age gauge climbs
    and in-flight batches over that variant miss their deadlines.
    """

    #: Heartbeat age that counts as "the gauge named the culprit".
    stall_threshold_s: float = 0.5

    name = "worker-wedge"
    fault_class = "worker-wedge"
    detection = "telemetry"

    def __post_init__(self):
        self._victim: tuple[int, str] | None = None
        self._pid: int | None = None
        self._stopped = False

    def supported(self, target: InjectionTarget) -> bool:
        return target.cluster is not None and bool(target.replicated())

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        candidates = [
            (index, vid)
            for index, vid in target.replicated()
            if target.worker(vid) is not None
        ]
        self._victim = _pick(rng, candidates)
        self.targets = [self._victim[1]] if self._victim else []
        return {"victim": list(self._victim) if self._victim else None}

    def inject(self, target: InjectionTarget) -> None:
        if self._victim is None:
            raise InjectionError(f"{self.name}: no wedgeable worker")
        worker = target.worker(self._victim[1])
        if worker is None or worker.pid is None:
            raise InjectionError(f"{self.name}: worker {self._victim[1]} not running")
        self._pid = worker.pid
        os.kill(self._pid, signal.SIGSTOP)
        self._stopped = True

    def restore(self, target: InjectionTarget) -> None:
        if self._stopped and self._pid is not None:
            try:
                os.kill(self._pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
        self._stopped = False

    def telemetry_verdict(self, observation) -> tuple[bool, bool | None, str]:
        peak = observation.heartbeat_peak_s or 0.0
        timeouts = int(observation.counts.get("timeout", 0))
        stalled = peak >= self.stall_threshold_s
        detected = stalled or timeouts > 0
        # The heartbeat gauge is labeled per variant: a stalled reading
        # *is* culprit attribution.
        culprit = True if stalled else None
        detail = f"heartbeat peak {peak:.2f}s, {timeouts} timeouts in window"
        return detected, culprit, detail


@dataclass
class SlowVariantInjector(ChaosInjector):
    """Slowloris one variant: add real wall-clock latency to its stage.

    Every batch crossing the victim's partition waits on it, so the
    trace's window p99 rises by roughly the added latency.  Restore
    reconfigures the original latency attributes.
    """

    added_latency_s: float = 0.08
    #: Window p99 must exceed baseline by this fraction of the added
    #: latency for the fault to count as telemetry-detected.
    visibility: float = 0.5

    name = "slow-variant"
    fault_class = "slow-variant"
    detection = "telemetry"

    def __post_init__(self):
        self._victim: tuple[int, str] | None = None
        self._previous: tuple[float, bool] | None = None
        self._pid: int | None = None
        self._applied = False

    def supported(self, target: InjectionTarget) -> bool:
        return bool(target.replicated())

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        self._victim = _pick(rng, target.replicated())
        self.targets = [self._victim[1]] if self._victim else []
        return {
            "victim": list(self._victim) if self._victim else None,
            "added_latency_s": self.added_latency_s,
        }

    def inject(self, target: InjectionTarget) -> None:
        if self._victim is None:
            raise InjectionError(f"{self.name}: no replicated victim")
        vid = self._victim[1]
        worker = target.worker(vid)
        if worker is not None:
            self._previous = (worker.host.simulated_latency, worker.host.realtime_latency)
            self._pid = worker.pid
            worker.configure(
                simulated_latency=self.added_latency_s, realtime_latency=True
            )
        else:
            connection = target.connection(vid)
            if connection is None:
                raise InjectionError(f"{self.name}: victim {vid} gone")
            host = connection.host
            self._previous = (host.simulated_latency, host.realtime_latency)
            host.simulated_latency = self.added_latency_s
            host.realtime_latency = True
        self._applied = True

    def restore(self, target: InjectionTarget) -> None:
        if not self._applied or self._previous is None:
            return
        self._applied = False
        vid = self._victim[1]
        latency, realtime = self._previous
        worker = target.worker(vid)
        if worker is not None:
            if worker.pid == self._pid:
                worker.configure(simulated_latency=latency, realtime_latency=realtime)
            return  # restarted incarnation: fresh host, defaults already clean
        connection = target.connection(vid)
        if connection is not None:
            connection.host.simulated_latency = latency
            connection.host.realtime_latency = realtime

    def telemetry_verdict(self, observation) -> tuple[bool, bool | None, str]:
        window_p99 = observation.telemetry.get("window_p99_s")
        baseline_p99 = observation.telemetry.get("baseline_p99_s") or 0.0
        timeouts = int(observation.counts.get("timeout", 0))
        visible = (
            window_p99 is not None
            and window_p99 >= baseline_p99 + self.visibility * self.added_latency_s
        )
        detected = visible or timeouts > 0
        detail = (
            f"window p99 {window_p99 if window_p99 is not None else float('nan'):.3f}s "
            f"vs baseline {baseline_p99:.3f}s (+{self.added_latency_s:.3f}s injected)"
        )
        return detected, None, detail


@dataclass
class ShmStarvationInjector(ChaosInjector):
    """Transient shared-memory outage: force the inline pipe fallback.

    Raising every worker handle's parent-side ``shm_threshold`` makes
    request tensors travel inline instead of through ``/dev/shm`` -- the
    degradation an exhausted shm namespace causes.  The expected verdict
    is *masked*: service continues uncorrupted on the fallback path.
    """

    starved_threshold: int = 1 << 62

    name = "shm-starvation"
    fault_class = "shm-starvation"
    detection = "telemetry"

    def __post_init__(self):
        self._previous: dict[str, int] = {}

    def supported(self, target: InjectionTarget) -> bool:
        return target.cluster is not None

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        self.targets = []
        return {"starved_threshold": self.starved_threshold}

    def inject(self, target: InjectionTarget) -> None:
        cluster = target.cluster
        if cluster is None:
            raise InjectionError(f"{self.name}: requires a process cluster")
        self._previous = {}
        for vid, worker in cluster.workers().items():
            self._previous[vid] = worker.shm_threshold
            worker.shm_threshold = self.starved_threshold
        if not self._previous:
            raise InjectionError(f"{self.name}: no live workers to starve")

    def restore(self, target: InjectionTarget) -> None:
        cluster = target.cluster
        if cluster is None:
            return
        workers = cluster.workers()
        for vid, threshold in self._previous.items():
            worker = workers.get(vid)
            if worker is not None:
                worker.shm_threshold = threshold
        self._previous = {}

    def telemetry_verdict(self, observation) -> tuple[bool, bool | None, str]:
        ok = int(observation.counts.get("ok", 0))
        corrupt = int(observation.counts.get("corrupt", 0))
        detected = ok > 0 and corrupt == 0
        detail = f"inline fallback served {ok} requests during shm outage"
        return detected, None, detail


# ----------------------------------------------------------------------
# Storage / identity attacks
# ----------------------------------------------------------------------


@dataclass
class RollbackInjector(ChaosInjector):
    """Sealed-storage rollback against a self-contained protected fs.

    Runs the capture-and-revert attack while serving traffic flows; the
    freshness check (monotonic counters) must reject the stale blob.
    Self-contained state, so restore has nothing to undo.
    """

    name = "storage-rollback"
    fault_class = "storage"
    detection = "direct"

    def __post_init__(self):
        self.direct_detected = False
        self.direct_detail = ""
        self._seed = 0

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        self._seed = int(rng.integers(2**31))
        self.targets = []
        return {"seed": self._seed}

    def inject(self, target: InjectionTarget) -> None:
        record = KeyManager().create_key(f"chaos-rollback-{self._seed}")
        fs = ProtectedFs(
            kdk=record.key,
            key_id=f"chaos-rollback-{self._seed}",
            counters=MonotonicCounterService(),
        )
        path = "model.enc"
        fs.write(seal_bytes(record, path, b"weights-v1", freshness=1))
        attack = RollbackAttack(path=path)
        attack.capture(fs)
        fs.write(seal_bytes(record, path, b"weights-v2", freshness=2))
        self.direct_detected = bool(attack.launch(fs))
        self.direct_detail = (
            "stale sealed blob rejected by freshness check"
            if self.direct_detected
            else "stale sealed blob silently accepted"
        )

    def restore(self, target: InjectionTarget) -> None:
        pass  # self-contained fs; nothing leaked into the deployment


@dataclass
class ForkInjector(ChaosInjector):
    """Bind a clone TEE of an already-bound variant (must be rejected)."""

    name = "storage-fork"
    fault_class = "storage"
    detection = "direct"

    def __post_init__(self):
        self.direct_detected = False
        self.direct_detail = ""
        self._victim: tuple[int, str] | None = None
        self._attack: ForkAttack | None = None

    def resolve(self, target: InjectionTarget, rng: np.random.Generator) -> dict:
        self._victim = _pick(rng, target.live())
        self.targets = []
        return {"victim": list(self._victim) if self._victim else None}

    def inject(self, target: InjectionTarget) -> None:
        if self._victim is None:
            raise InjectionError(f"{self.name}: no bound variant to clone")
        index, vid = self._victim
        artifact = next(
            (
                a
                for a in target.system.pool.for_partition(index)
                if a.variant_id == vid
            ),
            None,
        )
        if artifact is None:
            raise InjectionError(f"{self.name}: artifact for {vid} not in pool")
        self._attack = ForkAttack(artifact=artifact)
        self.direct_detected = bool(
            self._attack.launch(
                target.monitor, target.system.orchestrator._pick_cpu()
            )
        )
        self.direct_detail = (
            f"clone binding of {vid} rejected"
            if self.direct_detected
            else f"clone of {vid} got bound"
        )

    def restore(self, target: InjectionTarget) -> None:
        if self._attack is not None and self._attack.clone is not None:
            try:
                self._attack.clone.terminate()
            except Exception:
                pass
            self._attack = None
