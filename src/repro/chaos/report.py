"""Campaign aggregation: the SLO floor as one assertable object.

The floor is deliberately unforgiving (see :mod:`repro.chaos.verdict`):
:attr:`CampaignReport.passed` is the conjunction of every individual
verdict -- one missed fault, one silent corruption, one blown recovery
budget anywhere fails the whole campaign.  The per-class breakdown
exists for diagnosis, not for grading on a curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.verdict import InjectionVerdict

__all__ = ["CampaignReport", "register_chaos_metrics"]

#: Outcome vocabulary every per-class breakdown reports, in order.
_OUTCOMES = ("detected", "masked", "missed", "silent-corruption", "error")


def register_chaos_metrics(registry) -> None:
    """Pre-register the chaos metric family on a registry.

    Campaigns also register lazily on first use; this exists so
    dashboards (and the metric inventory) see the family at zero before
    any injection has run.
    """
    registry.counter(
        "mvtee_chaos_injections_total", "Chaos injections applied by fault class"
    )
    registry.counter(
        "mvtee_chaos_verdicts_total", "Chaos injection verdicts by outcome"
    )
    registry.histogram(
        "mvtee_chaos_recovery_seconds",
        "Seconds from fault restore to p99 back under budget",
    )


@dataclass
class CampaignReport:
    """Everything one campaign run produced, JSON-able for benchmarks."""

    seed: int
    #: The resolved plan (JSON) -- equality across runs is replay identity.
    plan: list = field(default_factory=list)
    verdicts: list = field(default_factory=list)
    baseline_p99_s: float | None = None
    #: Whole-campaign traffic report from the open-loop generator.
    traffic: object | None = None
    wall_s: float = 0.0

    @property
    def passed(self) -> bool:
        """The SLO floor: every single injection held, and some ran."""
        return bool(self.verdicts) and all(v.passed for v in self.verdicts)

    def per_class(self) -> dict[str, dict[str, int]]:
        """Outcome histogram per fault class (diagnosis, not grading)."""
        breakdown: dict[str, dict[str, int]] = {}
        for verdict in self.verdicts:
            row = breakdown.setdefault(
                verdict.fault_class, {outcome: 0 for outcome in _OUTCOMES}
            )
            row[verdict.outcome] = row.get(verdict.outcome, 0) + 1
        return breakdown

    def failures(self) -> list[InjectionVerdict]:
        """The verdicts that broke the floor (empty when passed)."""
        return [v for v in self.verdicts if not v.passed]

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "passed": self.passed,
            "plan": list(self.plan),
            "verdicts": [v.to_json() for v in self.verdicts],
            "per_class": self.per_class(),
            "baseline_p99_s": self.baseline_p99_s,
            "traffic": self.traffic.to_json() if self.traffic is not None else None,
            "wall_s": self.wall_s,
        }
