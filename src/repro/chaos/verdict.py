"""Per-injection verdicts: did the SLO floor hold?

The campaign's contract (ROADMAP open item 4, paper §6.5) is a *floor*,
not an average: every single injection must end in one of the two
acceptable states --

- **detected** -- the deployment raised an incident whose culprit
  attribution names the attacked variant (or, for infrastructure faults
  with no voting surface, the telemetry unambiguously shows the fault
  and recovery);
- **masked** -- on top of detection, clients never noticed: every
  output served during the window was still correct and no request
  failed.

Everything else fails the campaign:

- **missed** -- the fault flew through the window with no signal;
- **silent-corruption** -- the unforgivable one: a wrong output was
  *served to a client*.  One corrupt sample anywhere in the window
  fails the whole campaign regardless of what else was detected;
- **error** -- the injection itself could not be applied or restored.

:func:`judge` turns one injection window's raw observations
(:class:`WindowObservation`) into an :class:`InjectionVerdict`.  It is
a pure function -- the campaign gathers, the verdict layer decides --
so verdict semantics are unit-testable without a live deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "InjectionVerdict",
    "OUTCOME_DETECTED",
    "OUTCOME_ERROR",
    "OUTCOME_MASKED",
    "OUTCOME_MISSED",
    "OUTCOME_SILENT_CORRUPTION",
    "ProbeResult",
    "WindowObservation",
    "judge",
]

OUTCOME_DETECTED = "detected"
OUTCOME_MASKED = "masked"
OUTCOME_MISSED = "missed"
OUTCOME_SILENT_CORRUPTION = "silent-corruption"
OUTCOME_ERROR = "error"


@dataclass(frozen=True)
class ProbeResult:
    """One crafted request sent through the window (e.g. a CVE payload)."""

    kind: str  # "malicious" | "benign"
    completed: bool
    #: Output wrong vs. the clean-deployment reference; None = no
    #: reference available (then corruption cannot be judged).
    corrupted: bool | None
    error: str = ""


@dataclass
class WindowObservation:
    """Everything the campaign saw between inject and recovery."""

    #: Monitor incidents newly captured during the window.
    incidents: list = field(default_factory=list)
    #: Traffic outcome histogram of the window
    #: (ok/corrupt/failed/timeout/shed counts from the open-loop trace).
    counts: dict = field(default_factory=dict)
    probes: list = field(default_factory=list)
    #: healthz() statuses sampled through the window, in order.
    health_path: list = field(default_factory=list)
    #: Peak heartbeat-age gauge of the target variant (cluster mode).
    heartbeat_peak_s: float | None = None
    #: FlightRecorder chain verification over the whole window.
    chain_ok: bool = True
    chain_error: str = ""
    recovered: bool = True
    recovery_s: float | None = None
    recovery_budget_s: float | None = None
    #: Free-form numeric signals (window p99, baseline p99, counter
    #: deltas) telemetry-mode injectors judge against.
    telemetry: dict = field(default_factory=dict)


@dataclass(frozen=True)
class InjectionVerdict:
    """The SLO-floor judgment of one injection."""

    name: str
    fault_class: str
    targets: tuple[str, ...]
    outcome: str
    detected: bool
    masked: bool
    #: True/False for incident-mode faults (attribution named a target /
    #: named only innocents); None where attribution does not apply.
    culprit_correct: bool | None
    silent_corruptions: int
    incident_ids: tuple[str, ...]
    incident_kinds: tuple[str, ...]
    counts: dict
    health_path: tuple[str, ...]
    chain_ok: bool
    recovered: bool
    recovery_s: float | None
    recovery_budget_s: float | None
    detail: str = ""

    @property
    def passed(self) -> bool:
        """Whether this injection held the SLO floor."""
        return (
            self.outcome in (OUTCOME_DETECTED, OUTCOME_MASKED)
            and self.silent_corruptions == 0
            and self.culprit_correct is not False
            and self.recovered
            and self.chain_ok
        )

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "fault_class": self.fault_class,
            "targets": list(self.targets),
            "outcome": self.outcome,
            "detected": self.detected,
            "masked": self.masked,
            "culprit_correct": self.culprit_correct,
            "silent_corruptions": self.silent_corruptions,
            "incidents": list(self.incident_ids),
            "incident_kinds": list(self.incident_kinds),
            "counts": dict(self.counts),
            "health_path": list(self.health_path),
            "chain_ok": self.chain_ok,
            "recovered": self.recovered,
            "recovery_s": self.recovery_s,
            "recovery_budget_s": self.recovery_budget_s,
            "passed": self.passed,
            "detail": self.detail,
        }


def _silent_corruptions(observation: WindowObservation) -> int:
    """Wrong outputs *served*: trace corruptions plus corrupted probes.

    Strictly harsher than "wrong output with no incident": a corrupt
    answer that reached a client is campaign-failing even if an
    unrelated incident fired -- the voting layer exists precisely so
    that detection implies the served output stayed clean.
    """
    served_corrupt = int(observation.counts.get("corrupt", 0))
    probe_corrupt = sum(
        1 for p in observation.probes if p.completed and p.corrupted is True
    )
    return served_corrupt + probe_corrupt


def _service_clean(observation: WindowObservation) -> bool:
    """No client-visible impact: nothing failed, timed out, or corrupted."""
    counts = observation.counts
    probes_ok = all(p.completed and not p.corrupted for p in observation.probes)
    return (
        int(counts.get("failed", 0)) == 0
        and int(counts.get("timeout", 0)) == 0
        and probes_ok
    )


def judge(name: str, fault_class: str, injector, observation: WindowObservation) -> InjectionVerdict:
    """Classify one injection window.

    ``injector`` is duck-typed: ``detection`` ("incident" | "telemetry"
    | "direct"), ``targets`` (variant ids under attack), and -- per
    mode -- ``telemetry_verdict(observation)`` or ``direct_detected``.
    """
    targets = tuple(getattr(injector, "targets", ()) or ())
    incidents = list(observation.incidents)
    incident_ids = tuple(str(i.incident_id) for i in incidents)
    incident_kinds = tuple(str(i.kind) for i in incidents)
    silent = _silent_corruptions(observation)
    detection = getattr(injector, "detection", "incident")
    detail = ""

    if detection == "incident":
        detected = bool(incidents)
        relevant = [
            i for i in incidents if set(getattr(i, "suspected_culprits", ())) & set(targets)
        ]
        culprit_correct = bool(relevant) if detected else None
        if detected and not relevant:
            detail = "incident(s) raised but none named an attacked variant"
    elif detection == "telemetry":
        detected, culprit_correct, detail = injector.telemetry_verdict(observation)
    elif detection == "direct":
        detected = bool(getattr(injector, "direct_detected", False))
        culprit_correct = None
        detail = getattr(injector, "direct_detail", "")
    else:  # pragma: no cover - programming error
        raise ValueError(f"unknown detection mode {detection!r}")

    masked = detected and silent == 0 and _service_clean(observation)
    if silent > 0:
        outcome = OUTCOME_SILENT_CORRUPTION
    elif masked:
        outcome = OUTCOME_MASKED
    elif detected:
        outcome = OUTCOME_DETECTED
    else:
        outcome = OUTCOME_MISSED

    return InjectionVerdict(
        name=name,
        fault_class=fault_class,
        targets=targets,
        outcome=outcome,
        detected=detected,
        masked=masked,
        culprit_correct=culprit_correct,
        silent_corruptions=silent,
        incident_ids=incident_ids,
        incident_kinds=incident_kinds,
        counts=dict(observation.counts),
        health_path=tuple(observation.health_path),
        chain_ok=observation.chain_ok,
        recovered=observation.recovered,
        recovery_s=observation.recovery_s,
        recovery_budget_s=observation.recovery_budget_s,
        detail=detail or observation.chain_error,
    )
