"""Process-based multi-variant execution (the "cluster" deployment mode).

In-process deployment runs every variant runtime inside the monitor's
address space: a crash simulated by a variant is a Python exception, and
a *real* fault (segfault, OOM-kill, runaway native code) would take the
whole deployment down with it.  This package moves each variant's
:class:`~repro.mvx.variant_host.VariantHost` into its own forked OS
process, giving the MVX layer crash-grade fault isolation:

- :mod:`repro.cluster.worker` -- the per-variant child process and its
  pipe protocol (wire-framed control messages, shared-memory tensor
  lane);
- :mod:`repro.cluster.shm` -- the shared-memory tensor lane itself;
- :mod:`repro.cluster.transport` -- the
  :class:`~repro.mvx.transport.Transport` implementation routing the
  monitor's protected records through workers;
- :mod:`repro.cluster.supervisor` -- heartbeats, crash escalation,
  restart policy, teardown;
- :mod:`repro.cluster.dispatch` -- the stage dispatcher that ties a
  serving engine to the supervisor.

Select it with ``MvteeSystem.deploy(execution="process")``; the default
remains in-process execution.
"""

from repro.cluster.dispatch import ProcessDispatcher
from repro.cluster.shm import (
    SHM_THRESHOLD_BYTES,
    cleanup_segments,
    export_tensors,
    import_tensors,
    tracked_segment_names,
)
from repro.cluster.supervisor import ClusterSupervisor, RestartPolicy
from repro.cluster.transport import ProcessTransport
from repro.cluster.worker import EXIT_CRASHED, WorkerCrashed, WorkerProcess

__all__ = [
    "EXIT_CRASHED",
    "SHM_THRESHOLD_BYTES",
    "ClusterSupervisor",
    "ProcessDispatcher",
    "ProcessTransport",
    "RestartPolicy",
    "WorkerCrashed",
    "WorkerProcess",
    "cleanup_segments",
    "export_tensors",
    "import_tensors",
    "tracked_segment_names",
]
