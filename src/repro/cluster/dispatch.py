"""A stage dispatcher that keeps the supervisor in the loop.

:class:`ProcessDispatcher` is the :class:`ParallelStageExecutor` of a
process-mode deployment: same concurrency, deadlines and retry-once
semantics, plus one cluster-specific behavior -- after every stage it
runs a synchronous supervision tick.  A worker that died mid-batch is
therefore demoted, reported and scheduled for restart *immediately*,
not at the next heartbeat interval; the restart itself still honors the
policy's backoff and budget.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.serving.executor import ParallelStageExecutor

__all__ = ["ProcessDispatcher"]


class ProcessDispatcher(ParallelStageExecutor):
    """Parallel stage dispatch over a supervised worker fleet."""

    def __init__(
        self,
        cluster,
        max_workers: int = 8,
        *,
        retry_transient: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(max_workers, retry_transient=retry_transient, clock=clock)
        self.cluster = cluster

    def dispatch(
        self, monitor, connections, batch_id, feeds, *, deadline: float | None = None
    ) -> list:
        try:
            return super().dispatch(
                monitor, connections, batch_id, feeds, deadline=deadline
            )
        finally:
            # Promptly notice (and schedule the restart of) any worker
            # this stage just lost -- don't wait for the heartbeat.
            try:
                self.cluster.poll()
            except Exception:
                pass
