"""Shared-memory tensor lane for the process cluster.

Pipes are fine for control traffic but copy every byte twice through
the kernel; activation tensors and protected records between the
monitor process and a variant worker can reach megabytes per request.
This module moves large tensors through POSIX shared memory instead:
the sender writes the array into a :class:`multiprocessing.shared_memory
.SharedMemory` segment and ships only a small header (segment name,
shape, dtype) over the pipe; the receiver attaches, copies out, closes
and unlinks.  Tensors under :data:`SHM_THRESHOLD_BYTES` stay inline in
the wire message -- a 200-byte control record is cheaper to copy than
to round-trip through ``shm_open``.

Segment hygiene: every segment created by this process is tracked in a
module-level registry and swept by an ``atexit`` hook, so a crashed
test run cannot leak ``/dev/shm`` entries.  The receiver unlinks each
segment as soon as it has copied the payload (strict request/response
protocols make that safe: the sender never re-reads a segment).
"""

from __future__ import annotations

import atexit
import threading
from multiprocessing import shared_memory

import numpy as np

from repro.observability.metrics import MetricsRegistry, get_global_registry

__all__ = [
    "SHM_THRESHOLD_BYTES",
    "cleanup_segments",
    "export_tensors",
    "import_tensors",
    "tracked_segment_names",
]

#: Below this many bytes a tensor travels inline in the wire message.
SHM_THRESHOLD_BYTES = 64 * 1024

#: Names of segments created by this process that may still be live.
_CREATED_SEGMENTS: set[str] = set()
_SEGMENTS_LOCK = threading.Lock()
_SEQ = 0


def _shm_bytes(registry: MetricsRegistry | None):
    registry = registry if registry is not None else get_global_registry()
    return registry.counter(
        "mvtee_shm_bytes_total", "Tensor bytes moved through shared memory"
    )


def _track(name: str) -> None:
    with _SEGMENTS_LOCK:
        _CREATED_SEGMENTS.add(name)


def _untrack(name: str) -> None:
    with _SEGMENTS_LOCK:
        _CREATED_SEGMENTS.discard(name)


def tracked_segment_names() -> set[str]:
    """Names of segments this process created and has not yet unlinked."""
    with _SEGMENTS_LOCK:
        return set(_CREATED_SEGMENTS)


def _next_segment_name(tag: str) -> str:
    global _SEQ
    import os

    with _SEGMENTS_LOCK:
        _SEQ += 1
        return f"mvtee-{os.getpid()}-{tag}-{_SEQ}"


def export_tensors(
    tensors: dict[str, np.ndarray],
    *,
    threshold: int = SHM_THRESHOLD_BYTES,
    registry: MetricsRegistry | None = None,
    direction: str = "request",
    tag: str = "t",
) -> tuple[list[dict], dict[str, np.ndarray]]:
    """Split a tensor dict into (shm headers, inline remainder).

    Tensors of at least ``threshold`` bytes are written into fresh
    shared-memory segments; the returned headers carry everything the
    receiving process needs to reconstruct them (``name``, ``shm``,
    ``shape``, ``dtype``).  Smaller tensors are returned unchanged for
    inline wire framing.  The sender keeps no handle: the receiver owns
    the segment's lifetime from here (see :func:`import_tensors`).
    """
    headers: list[dict] = []
    inline: dict[str, np.ndarray] = {}
    for name, tensor in tensors.items():
        array = np.ascontiguousarray(tensor)
        if array.nbytes < threshold:
            inline[name] = array
            continue
        segment_name = _next_segment_name(tag)
        segment = shared_memory.SharedMemory(
            create=True, size=array.nbytes, name=segment_name
        )
        _track(segment.name)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        del view
        segment.close()
        headers.append(
            {
                "name": name,
                "shm": segment.name,
                "shape": list(array.shape),
                "dtype": array.dtype.str,
            }
        )
        _shm_bytes(registry).inc(array.nbytes, direction=direction)
    return headers, inline


def import_tensors(
    headers: list[dict],
    *,
    registry: MetricsRegistry | None = None,
    direction: str = "request",
    unlink: bool = True,
) -> dict[str, np.ndarray]:
    """Reconstruct tensors from shared-memory headers.

    Attaches to each named segment, copies the payload out, closes the
    mapping and (by default) unlinks the segment -- the receiver is the
    segment's terminal owner under the strict request/response protocol.
    """
    tensors: dict[str, np.ndarray] = {}
    for header in headers:
        segment = shared_memory.SharedMemory(name=header["shm"])
        try:
            view = np.ndarray(
                tuple(header["shape"]), dtype=np.dtype(header["dtype"]), buffer=segment.buf
            )
            tensors[header["name"]] = np.array(view, copy=True)
            _shm_bytes(registry).inc(view.nbytes, direction=direction)
            del view
        finally:
            segment.close()
            if unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
                _untrack(header["shm"])
    return tensors


def cleanup_segments() -> int:
    """Unlink every still-tracked segment; returns how many were freed.

    Called from the module's ``atexit`` hook and from the cluster
    supervisor's shutdown path, so SIGKILLed receivers cannot leak
    ``/dev/shm`` entries past the parent process's lifetime.
    """
    freed = 0
    for name in tracked_segment_names():
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            _untrack(name)
            continue
        segment.close()
        try:
            segment.unlink()
            freed += 1
        except FileNotFoundError:
            pass
        _untrack(name)
    return freed


atexit.register(cleanup_segments)
