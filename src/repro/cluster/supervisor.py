"""Worker supervision: heartbeats, restart budgets, graceful teardown.

The :class:`ClusterSupervisor` owns every forked variant worker of a
process-mode deployment.  It is the piece that turns "a variant runs in
its own OS process" into an operable system:

- **liveness** -- a background heartbeat thread pings idle workers,
  publishes ``mvtee_worker_heartbeat_age_seconds`` per worker, and
  notices deaths that happen *between* requests (a worker killed while
  idle never fails an in-flight round trip);
- **escalation** -- a death is reported to the monitor
  (:meth:`~repro.mvx.monitor.Monitor.report_worker_crash`), so the
  crash event, metric and forensic incident (with the worker's pid and
  exit code) appear exactly like a crashed TEE's;
- **restart policy** -- dead workers are re-bound within a budget
  (``max_restarts`` per rolling ``window_s``) with exponential backoff;
  a slot that exhausts its budget is abandoned and stays retired;
- **teardown** -- graceful stop, then SIGTERM, then SIGKILL, plus a
  shared-memory sweep; an ``atexit`` hook shuts every live supervisor
  down so a crashed test run cannot leak orphan processes or
  ``/dev/shm`` segments.

Restarting a worker is *not* a fork of stale state: the RA-TLS channel
is strictly sequential, so the slot is refilled by retiring the old
binding and re-running the full bootstrap (fresh enclave, fresh channel,
fresh installation evidence) for the same variant artifact, then forking
a new worker from the newly initialized host.
"""

from __future__ import annotations

import atexit
import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster import shm
from repro.cluster.transport import ProcessTransport
from repro.cluster.worker import WorkerProcess
from repro.mvx.monitor import Monitor, MonitorError
from repro.mvx.variant_host import VariantHost
from repro.observability.metrics import MetricsRegistry, get_global_registry
from repro.observability.recorder import (
    KIND_WORKER_EXITED,
    KIND_WORKER_RESTARTED,
    KIND_WORKER_STARTED,
    FlightRecorder,
)

__all__ = ["ClusterSupervisor", "RestartPolicy"]

#: Supervisors with running workers; swept by the atexit hook.
_LIVE_SUPERVISORS: "weakref.WeakSet[ClusterSupervisor]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _atexit_shutdown_all() -> None:
    """Last-resort cleanup: kill every still-running worker fleet."""
    for supervisor in list(_LIVE_SUPERVISORS):
        try:
            supervisor.shutdown(graceful_timeout=0.5)
        except Exception:
            pass
    shm.cleanup_segments()


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_atexit_shutdown_all)
        _ATEXIT_REGISTERED = True


@dataclass(frozen=True)
class RestartPolicy:
    """When and how fast dead workers are restarted."""

    #: Restarts allowed per slot inside one rolling window; past the
    #: budget the slot is abandoned (the variant stays retired).
    max_restarts: int = 3
    window_s: float = 60.0
    #: Exponential backoff between a death and the restart attempt.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: Grace period for a worker to honor a stop request before SIGTERM
    #: and, failing that, SIGKILL.
    graceful_timeout_s: float = 2.0


@dataclass
class _Slot:
    """Supervision state of one variant's worker lineage."""

    variant_id: str
    partition_index: int
    worker: WorkerProcess | None = None
    restart_times: list[float] = field(default_factory=list)
    restart_due_at: float | None = None
    abandoned: bool = False
    last_exit: tuple[int | None, int | None] | None = None  # (pid, exit code)


class ClusterSupervisor:
    """Supervises the worker fleet of one process-mode deployment."""

    def __init__(
        self,
        monitor: Monitor,
        orchestrator,
        transport: ProcessTransport,
        *,
        hosts: dict[str, VariantHost] | None = None,
        policy: RestartPolicy | None = None,
        registry: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        heartbeat_interval_s: float = 0.25,
        shm_threshold: int = shm.SHM_THRESHOLD_BYTES,
    ):
        self.monitor = monitor
        self.orchestrator = orchestrator
        self.transport = transport
        self.hosts = hosts
        self.policy = policy if policy is not None else RestartPolicy()
        self.registry = registry
        self.recorder = recorder if recorder is not None else monitor.recorder
        self.heartbeat_interval_s = heartbeat_interval_s
        self.shm_threshold = shm_threshold
        self._slots: dict[str, _Slot] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        # Pre-register the cluster metric surface so inventories are
        # verifiable before the first restart or shm transfer.
        reg = self._registry
        reg.counter("mvtee_worker_restarts_total", "Variant worker processes restarted")
        reg.gauge(
            "mvtee_worker_heartbeat_age_seconds",
            "Seconds since each worker's last successful round trip",
        )
        reg.counter("mvtee_shm_bytes_total", "Tensor bytes moved through shared memory")

    @property
    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_global_registry()

    def _audit(self, kind: str, **data) -> None:
        if self.recorder is not None:
            self.recorder.record(kind, **data)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        """Fork one worker per live connection; start the heartbeat."""
        try:
            # Start the shared-memory resource tracker *before* forking
            # so parent and children share one tracker process.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        with self._lock:
            for index, connections in self.monitor.connections.items():
                for connection in connections:
                    if connection.host.crashed:
                        continue
                    slot = _Slot(variant_id=connection.variant_id, partition_index=index)
                    self._slots[connection.variant_id] = slot
                    self._spawn(slot, connection.host)
        _LIVE_SUPERVISORS.add(self)
        _register_atexit()
        self._stop.clear()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="mvtee-cluster-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        return self

    def _spawn(self, slot: _Slot, host: VariantHost) -> WorkerProcess:
        worker = WorkerProcess(
            host, shm_threshold=self.shm_threshold, registry=self.registry
        )
        worker.start()
        slot.worker = worker
        self.transport.promote(worker)
        self._audit(
            KIND_WORKER_STARTED,
            variant=slot.variant_id,
            partition=slot.partition_index,
            pid=worker.pid,
        )
        return worker

    def shutdown(self, *, graceful_timeout: float | None = None) -> None:
        """Stop the heartbeat and every worker (graceful, then SIGKILL)."""
        self._stop.set()
        thread = self._heartbeat_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._heartbeat_thread = None
        timeout = (
            graceful_timeout
            if graceful_timeout is not None
            else self.policy.graceful_timeout_s
        )
        with self._lock:
            for slot in self._slots.values():
                worker = slot.worker
                if worker is None:
                    continue
                self.transport.demote(slot.variant_id)
                pid = worker.pid
                worker.stop(graceful_timeout=timeout)
                self._sweep_child_segments(pid)
                slot.worker = None
        shm.cleanup_segments()
        _LIVE_SUPERVISORS.discard(self)

    @staticmethod
    def _sweep_child_segments(pid: int | None) -> None:
        """Unlink /dev/shm segments a dead child left behind."""
        if pid is None:
            return
        dev_shm = Path("/dev/shm")
        if not dev_shm.is_dir():
            return
        for path in dev_shm.glob(f"mvtee-{pid}-*"):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def worker(self, variant_id: str) -> WorkerProcess | None:
        """The current worker of one variant slot (None if down)."""
        slot = self._slots.get(variant_id)
        return slot.worker if slot is not None else None

    def workers(self) -> dict[str, WorkerProcess]:
        """variant_id -> live worker handle."""
        with self._lock:
            return {
                vid: slot.worker
                for vid, slot in self._slots.items()
                if slot.worker is not None
            }

    def live_worker_count(self) -> int:
        """Workers currently alive."""
        with self._lock:
            return sum(
                1
                for slot in self._slots.values()
                if slot.worker is not None and slot.worker.is_alive()
            )

    def abandoned_slots(self) -> list[str]:
        """Variant slots that exhausted their restart budget."""
        with self._lock:
            return [vid for vid, slot in self._slots.items() if slot.abandoned]

    def dispatcher(self, **kwargs):
        """A :class:`~repro.cluster.dispatch.ProcessDispatcher` over this fleet."""
        from repro.cluster.dispatch import ProcessDispatcher

        return ProcessDispatcher(self, **kwargs)

    # ------------------------------------------------------------------
    # Supervision loop
    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            try:
                self.poll()
            except Exception:
                # Supervision must outlive any single bad tick.
                continue

    def poll(self) -> None:
        """One supervision tick: liveness, gauges, due restarts.

        Also called synchronously by the dispatcher after each stage so
        a worker that died mid-batch is restarted without waiting for
        the next heartbeat tick.  Safe for any number of concurrent
        callers (the serving engine overlaps batches, so several
        dispatchers may tick at once): a tick that finds another one in
        progress simply yields to it -- supervision work is idempotent
        and the in-flight tick covers the whole fleet.
        """
        if not self._lock.acquire(blocking=False):
            return
        try:
            self._poll_locked()
        finally:
            self._lock.release()

    def _poll_locked(self) -> None:
        now = time.monotonic()
        gauge = self._registry.gauge(
            "mvtee_worker_heartbeat_age_seconds",
            "Seconds since each worker's last successful round trip",
        )
        for slot in self._slots.values():
            worker = slot.worker
            if slot.abandoned:
                continue
            if worker is not None:
                if worker.is_alive():
                    age = now - worker.last_heartbeat
                    if age >= self.heartbeat_interval_s:
                        try:
                            if worker.ping(timeout=self.heartbeat_interval_s):
                                age = now - worker.last_heartbeat
                        except Exception:
                            # Death is handled just below.
                            pass
                    gauge.set(max(0.0, age), variant=slot.variant_id)
                if not worker.is_alive():
                    self._handle_death(slot, now)
            if slot.restart_due_at is not None and now >= slot.restart_due_at:
                self._restart(slot)

    def _handle_death(self, slot: _Slot, now: float) -> None:
        worker = slot.worker
        assert worker is not None
        self.transport.demote(slot.variant_id)
        slot.worker = None
        slot.last_exit = (worker.pid, worker.exitcode)
        self._audit(
            KIND_WORKER_EXITED,
            variant=slot.variant_id,
            partition=slot.partition_index,
            pid=worker.pid,
            exit_code=worker.exitcode,
        )
        if not worker.crash_reported:
            worker.crash_reported = True
            self.monitor.report_worker_crash(
                slot.variant_id,
                error=(
                    f"worker process died (pid={worker.pid}, "
                    f"exit_code={worker.exitcode})"
                ),
            )
        self._sweep_child_segments(worker.pid)
        self._schedule_restart(slot, now)

    def _schedule_restart(self, slot: _Slot, now: float) -> None:
        window_start = now - self.policy.window_s
        slot.restart_times = [t for t in slot.restart_times if t >= window_start]
        if len(slot.restart_times) >= self.policy.max_restarts:
            slot.abandoned = True
            slot.restart_due_at = None
            self._audit(
                KIND_WORKER_EXITED,
                variant=slot.variant_id,
                partition=slot.partition_index,
                abandoned=True,
                restarts_in_window=len(slot.restart_times),
            )
            return
        backoff = min(
            self.policy.backoff_base_s
            * self.policy.backoff_factor ** len(slot.restart_times),
            self.policy.backoff_max_s,
        )
        slot.restart_due_at = now + backoff

    def _restart(self, slot: _Slot) -> None:
        """Refill one slot: retire the stale binding, re-bootstrap, fork."""
        slot.restart_due_at = None
        slot.restart_times.append(time.monotonic())
        variant_id = slot.variant_id
        # Retire whatever is left of the old incarnation.  The crash
        # response may already have dropped the connection (then the
        # ledger also carries the retire entry); tolerate both shapes.
        try:
            self.monitor.retire_variant(variant_id)
        except MonitorError:
            pass
        artifact = self._artifact_for(slot)
        if artifact is None:
            slot.abandoned = True
            return
        host = VariantHost.place(
            artifact,
            self.orchestrator._pick_cpu(),
            enclave_id=f"tee-{variant_id}-r{len(slot.restart_times)}",
        )
        try:
            self.monitor.bind_variant(
                slot.partition_index, artifact, host, event="restart"
            )
        except MonitorError:
            # Bootstrap failed (e.g. attestation): burn a budget slot and
            # try again after backoff.
            self._schedule_restart(slot, time.monotonic())
            return
        if self.hosts is not None:
            self.hosts[variant_id] = host
        self._spawn(slot, host)
        self._registry.counter(
            "mvtee_worker_restarts_total", "Variant worker processes restarted"
        ).inc(variant=variant_id)
        self._audit(
            KIND_WORKER_RESTARTED,
            variant=variant_id,
            partition=slot.partition_index,
            pid=slot.worker.pid if slot.worker else None,
            restarts_in_window=len(slot.restart_times),
        )

    def _artifact_for(self, slot: _Slot):
        for artifact in self.monitor.pool.for_partition(slot.partition_index):
            if artifact.variant_id == slot.variant_id:
                return artifact
        return None

    def restart_now(self, variant_id: str) -> None:
        """Force an immediate restart of one slot (operator action)."""
        with self._lock:
            slot = self._slots.get(variant_id)
            if slot is None:
                raise KeyError(f"no supervised slot for variant {variant_id!r}")
            worker = slot.worker
            if worker is not None and worker.is_alive():
                self.transport.demote(variant_id)
                worker.stop(graceful_timeout=self.policy.graceful_timeout_s)
                slot.worker = None
            slot.abandoned = False
            self._restart(slot)
