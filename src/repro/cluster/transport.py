"""Record transport through per-variant worker processes.

:class:`ProcessTransport` is the third record path next to
:class:`~repro.mvx.transport.DirectTransport` (in-process) and
:class:`~repro.mvx.transport.FabricTransport` (untrusted network): the
monitor's protected records cross a pipe into the variant's own OS
process.  Records are opaque AEAD ciphertext either way -- the process
boundary adds *fault isolation*, not a new trust assumption.

Routing is two-phase.  During bootstrap the monitor registers plain
hosts and records are handed over in-process (the RA-TLS handshake
needs both channel ends in one address space).  Once the cluster
supervisor forks a worker for a host, the route is *promoted*: every
later exchange goes through the worker's pipe.  A dead worker demotes
back to no-route, marks the parent-side host crashed (terminating its
enclave so EPC accounting stays truthful) and raises the same typed
:class:`~repro.mvx.variant_host.VariantUnavailable` the monitor already
handles for crashed TEEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.worker import WorkerCrashed, WorkerProcess
from repro.mvx.transport import record_exchange
from repro.mvx.variant_host import VariantHost, VariantUnavailable
from repro.observability.metrics import MetricsRegistry

__all__ = ["ProcessTransport"]


@dataclass
class ProcessTransport:
    """Monitor<->variant records over per-variant worker processes."""

    hosts: dict[str, VariantHost] = field(default_factory=dict)
    workers: dict[str, WorkerProcess] = field(default_factory=dict)
    metrics: MetricsRegistry | None = None

    def register(self, host: VariantHost) -> None:
        """Attach a placed host (direct route until a worker is forked)."""
        self.hosts[host.variant_id] = host

    def promote(self, worker: WorkerProcess) -> None:
        """Route a variant's records through its forked worker."""
        self.workers[worker.variant_id] = worker

    def demote(self, variant_id: str) -> WorkerProcess | None:
        """Drop a variant's worker route (dead or draining worker)."""
        return self.workers.pop(variant_id, None)

    def worker(self, variant_id: str) -> WorkerProcess | None:
        """The live worker route of one variant, if promoted."""
        return self.workers.get(variant_id)

    def exchange(self, variant_id: str, record: bytes) -> bytes:
        worker = self.workers.get(variant_id)
        if worker is None:
            return self._exchange_direct(variant_id, record)
        try:
            response = worker.exchange(record)
        except WorkerCrashed as exc:
            self._mark_dead(worker, str(exc))
            record_exchange(self.metrics, "process", record, None, outcome="error")
            raise
        except VariantUnavailable:
            record_exchange(self.metrics, "process", record, None, outcome="error")
            raise
        record_exchange(self.metrics, "process", record, response)
        return response

    def _exchange_direct(self, variant_id: str, record: bytes) -> bytes:
        host = self.hosts.get(variant_id)
        if host is None:
            raise VariantUnavailable(f"no transport route to variant {variant_id!r}")
        try:
            response = host.handle_record(record)
        except VariantUnavailable:
            record_exchange(self.metrics, "process", record, None, outcome="error")
            raise
        record_exchange(self.metrics, "process", record, response)
        return response

    def _mark_dead(self, worker: WorkerProcess, reason: str) -> None:
        """A dead worker is a crashed TEE: reflect it on the parent host."""
        self.demote(worker.variant_id)
        # The monitor's failing request will record the crash incident;
        # flag it so the supervisor does not file a duplicate.
        worker.crash_reported = True
        host = worker.host
        if not host.crashed:
            host.crash_reason = reason
            host.crashed = True
            host.enclave.terminate()
