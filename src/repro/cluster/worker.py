"""One variant worker: a ``VariantHost`` in its own OS process.

The paper runs every diversified variant in its own TEE process; in the
reproduction a :class:`WorkerProcess` is that process boundary.  The
parent (monitor side) bootstraps the variant fully in-process -- the
RA-TLS handshake and key installation need both channel ends in one
address space -- then forks: the child inherits the initialized
:class:`~repro.mvx.variant_host.VariantHost` and serves protected
records over a pipe, while the parent keeps only the worker handle.

The pipe speaks the :mod:`repro.mvx.wire` framing (``encode_message`` /
``decode_message``): every control and data message is one wire message,
with record payloads carried as ``uint8`` tensors.  Payloads past the
shared-memory threshold move through :mod:`repro.cluster.shm` segments
instead, leaving only a (name, shape, dtype) header inline.

Crash-grade isolation: when the hosted runtime crashes, the child sends
one final typed failure and ``os._exit(EXIT_CRASHED)`` -- the OS
process genuinely dies, exactly like a crashed TEE.  A SIGKILLed child
looks identical to the parent (EOF on the pipe), so simulated and real
crashes share one detection path.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Callable

import multiprocessing
import numpy as np

from repro.cluster import shm
from repro.mvx.variant_host import VariantHost, VariantUnavailable
from repro.mvx.wire import decode_message, encode_message
from repro.observability.metrics import MetricsRegistry, set_global_registry
from repro.runtime.faults import apply_fault_spec

__all__ = ["EXIT_CRASHED", "WorkerCrashed", "WorkerProcess"]

#: Exit code of a child whose hosted runtime crashed (vs. 0 = graceful,
#: -SIGKILL/-SIGTERM = killed externally).
EXIT_CRASHED = 13


class WorkerCrashed(VariantUnavailable):
    """The worker process died; the variant is gone like a crashed TEE."""


def _pack(
    msg_type: str,
    meta: dict | None = None,
    tensors: dict | None = None,
    *,
    threshold: int = shm.SHM_THRESHOLD_BYTES,
    registry: MetricsRegistry | None = None,
    direction: str = "request",
) -> bytes:
    """One wire message, large tensors diverted through shared memory."""
    meta = dict(meta or {})
    tensors = tensors or {}
    headers, inline = shm.export_tensors(
        tensors, threshold=threshold, registry=registry, direction=direction
    )
    if headers:
        meta["shm"] = headers
    return encode_message(msg_type, meta, inline)


def _unpack(
    data: bytes,
    *,
    registry: MetricsRegistry | None = None,
    direction: str = "request",
) -> tuple[str, dict, dict]:
    """Inverse of :func:`_pack`: reattach any shared-memory tensors."""
    msg_type, meta, tensors = decode_message(data)
    headers = meta.pop("shm", [])
    if headers:
        tensors.update(
            shm.import_tensors(headers, registry=registry, direction=direction)
        )
    return msg_type, meta, tensors


def _record_tensor(record: bytes) -> dict[str, np.ndarray]:
    return {"record": np.frombuffer(record, dtype=np.uint8)}


# ----------------------------------------------------------------------
# Child side
# ----------------------------------------------------------------------


def _worker_main(conn, host: VariantHost, threshold: int) -> None:
    """Serve loop of the forked child; never returns."""
    # The fork copied the parent's registry (and possibly a lock held by
    # a parent thread mid-increment): start from a fresh one.  Child-side
    # metrics are per-process and intentionally not merged back.
    set_global_registry(MetricsRegistry())
    host.metrics = None
    shm._CREATED_SEGMENTS.clear()  # inherited names belong to the parent
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            os._exit(0)
        msg_type, meta, tensors = _unpack(data, direction="request")
        if msg_type == "exchange":
            _serve_exchange(conn, host, tensors, threshold)
        elif msg_type == "ping":
            conn.send_bytes(
                encode_message(
                    "pong",
                    {
                        "ts": meta.get("ts"),
                        "pid": os.getpid(),
                        "served": host.inferences_served,
                        "crashed": host.crashed,
                    },
                )
            )
        elif msg_type == "configure":
            for attr in ("simulated_latency", "realtime_latency"):
                if attr in meta:
                    setattr(host, attr, meta[attr])
            conn.send_bytes(encode_message("configured", {"pid": os.getpid()}))
        elif msg_type == "inject":
            # Chaos harness seam: faults must be armed *inside* the
            # worker -- the parent's runtime copy diverged at fork time,
            # so arming there would never reach this process.
            try:
                result = apply_fault_spec(host.runtime, meta["spec"])
            except Exception as exc:
                conn.send_bytes(
                    encode_message(
                        "inject-failed",
                        {"reason": str(exc), "pid": os.getpid()},
                    )
                )
            else:
                conn.send_bytes(
                    encode_message("injected", {"pid": os.getpid(), **result})
                )
        elif msg_type == "stop":
            conn.send_bytes(encode_message("stopping", {"pid": os.getpid()}))
            conn.close()
            os._exit(0)
        else:
            conn.send_bytes(
                encode_message("error", {"reason": f"unknown worker op {msg_type!r}"})
            )


def _serve_exchange(conn, host: VariantHost, tensors: dict, threshold: int) -> None:
    record = tensors["record"].tobytes()
    try:
        response = host.handle_record(record)
    except Exception as exc:
        # VariantUnavailable and ChannelError are the expected failure
        # shapes (the monitor treats both as an errored round trip); any
        # other exception must not kill the serve loop either -- the
        # parent converts the reason back into a typed failure.
        conn.send_bytes(
            encode_message(
                "exchange-failed",
                {"reason": str(exc), "crashed": host.crashed, "pid": os.getpid()},
            )
        )
        if host.crashed:
            # The TEE process dies with its runtime: flush the pipe and
            # exit hard so the parent sees a genuinely dead process.
            conn.close()
            os._exit(EXIT_CRASHED)
        return
    conn.send_bytes(
        _pack(
            "exchange-ok",
            {"pid": os.getpid()},
            _record_tensor(response),
            threshold=threshold,
            direction="response",
        )
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class WorkerProcess:
    """Parent-side handle of one forked variant worker.

    The handle serializes pipe access (one request/response in flight
    per worker), tracks liveness for the supervisor's heartbeat loop,
    and converts a dead child into a typed :class:`WorkerCrashed` --
    which the monitor treats exactly like a crashed TEE.
    """

    def __init__(
        self,
        host: VariantHost,
        *,
        shm_threshold: int = shm.SHM_THRESHOLD_BYTES,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.host = host
        self.shm_threshold = shm_threshold
        self.registry = registry
        self._clock = clock
        self._conn = None
        self._process: multiprocessing.Process | None = None
        import threading

        self._lock = threading.RLock()
        #: Pongs answered after their ping timed out: still in the pipe,
        #: to be drained before the next real response is read.
        self._stale_pongs = 0
        #: Monotonic timestamp of the last successful round trip.
        self.last_heartbeat: float = clock()
        #: Set once the death has been surfaced to the monitor, so the
        #: supervisor does not record a second incident for it.
        self.crash_reported = False

    @property
    def variant_id(self) -> str:
        """Identifier of the hosted variant."""
        return self.host.variant_id

    @property
    def pid(self) -> int | None:
        """OS pid of the child (None before start)."""
        return self._process.pid if self._process is not None else None

    @property
    def exitcode(self) -> int | None:
        """Child exit code (None while alive)."""
        return self._process.exitcode if self._process is not None else None

    def is_alive(self) -> bool:
        """Whether the child process is running."""
        return self._process is not None and self._process.is_alive()

    def start(self) -> "WorkerProcess":
        """Fork the child and hand it the initialized host."""
        if self._process is not None:
            raise RuntimeError(f"worker {self.variant_id} already started")
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        with warnings.catch_warnings():
            # Forking a multi-threaded parent is deliberate here: the
            # child only touches the pipe, the host and numpy.
            warnings.simplefilter("ignore", DeprecationWarning)
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, self.host, self.shm_threshold),
                name=f"mvtee-worker-{self.variant_id}",
                daemon=True,
            )
            process.start()
        child_conn.close()
        self._conn = parent_conn
        self._process = process
        self.last_heartbeat = self._clock()
        return self

    # ------------------------------------------------------------------
    # Round trips
    # ------------------------------------------------------------------

    def _roundtrip(self, message: bytes) -> tuple[str, dict, dict]:
        with self._lock:
            if self._conn is None or not self.is_alive():
                raise self._death(reap=True)
            try:
                self._conn.send_bytes(message)
                result = self._recv_response()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
                raise self._death(reap=True) from exc
        self.last_heartbeat = self._clock()
        return result

    def _recv_response(self) -> tuple[str, dict, dict]:
        """Read the next response, skipping pongs of timed-out pings."""
        while True:
            result = _unpack(
                self._conn.recv_bytes(), registry=self.registry, direction="response"
            )
            if self._stale_pongs and result[0] == "pong":
                self._stale_pongs -= 1
                continue
            return result

    def _death(self, *, reap: bool = False) -> WorkerCrashed:
        """Build the typed error for a dead child (joining it first)."""
        if reap and self._process is not None:
            self._process.join(timeout=1.0)
        return WorkerCrashed(
            f"variant {self.variant_id} worker process died "
            f"(pid={self.pid}, exit_code={self.exitcode})"
        )

    def exchange(self, record: bytes) -> bytes:
        """Round-trip one protected record through the child.

        Raises :class:`WorkerCrashed` when the child is dead, and
        :class:`VariantUnavailable` when the child answered with a typed
        failure (same semantics as the in-process
        :meth:`VariantHost.handle_record`).
        """
        msg_type, meta, tensors = self._roundtrip(
            _pack(
                "exchange",
                {},
                _record_tensor(record),
                threshold=self.shm_threshold,
                registry=self.registry,
                direction="request",
            )
        )
        if msg_type == "exchange-ok":
            return tensors["record"].tobytes()
        if msg_type == "exchange-failed":
            if meta.get("crashed"):
                # The child is about to exit with EXIT_CRASHED; reap it
                # so callers immediately see a dead worker.
                if self._process is not None:
                    self._process.join(timeout=2.0)
                raise WorkerCrashed(
                    f"variant {self.variant_id} worker crashed: {meta.get('reason')} "
                    f"(pid={self.pid}, exit_code={self.exitcode})"
                )
            raise VariantUnavailable(str(meta.get("reason")))
        raise VariantUnavailable(
            f"variant {self.variant_id} worker sent unexpected {msg_type!r}"
        )

    def ping(self, *, timeout: float = 1.0) -> dict | None:
        """Liveness probe; returns the child's pong meta or None if busy.

        Skips (returns None) when an exchange holds the pipe -- a busy
        worker is alive by definition, and its heartbeat is refreshed
        when the exchange completes.
        """
        if not self._lock.acquire(blocking=False):
            return None
        try:
            if self._conn is None or not self.is_alive():
                raise self._death(reap=True)
            self._conn.send_bytes(encode_message("ping", {"ts": self._clock()}))
            if not self._conn.poll(timeout):
                # The pong will still arrive; remember to drain it so it
                # is never mistaken for the next exchange's response.
                self._stale_pongs += 1
                return None
            msg_type, meta, _ = self._recv_response()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise self._death(reap=True) from exc
        finally:
            self._lock.release()
        if msg_type != "pong":
            return None
        self.last_heartbeat = self._clock()
        return meta

    def inject_fault(self, spec: dict) -> dict:
        """Arm (or clear) one fault spec inside the child runtime.

        The spec vocabulary is
        :func:`repro.runtime.faults.apply_fault_spec`'s.  Raises
        :class:`WorkerCrashed` when the child is dead and
        :class:`VariantUnavailable` when the child rejected the spec.
        """
        msg_type, meta, _ = self._roundtrip(encode_message("inject", {"spec": spec}))
        if msg_type != "injected":
            raise VariantUnavailable(
                f"variant {self.variant_id} fault injection failed: "
                f"{meta.get('reason')}"
            )
        return meta

    def configure(self, **attrs) -> None:
        """Set host attributes (e.g. simulated latency) in the child.

        Mirrors the values onto the parent-side host copy so scheduling
        decisions that read them (async laggard ordering) stay coherent.
        """
        self._roundtrip(encode_message("configure", attrs))
        for attr, value in attrs.items():
            setattr(self.host, attr, value)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def stop(self, *, graceful_timeout: float = 2.0) -> int | None:
        """Stop the child: graceful request, then SIGTERM, then SIGKILL.

        Returns the child's exit code.  A worker stuck in a long kernel
        (or wedged entirely) is hard-killed after ``graceful_timeout``
        so a crashed run never leaks orphan processes.
        """
        process = self._process
        if process is None:
            return None
        if process.is_alive() and self._conn is not None:
            if self._lock.acquire(timeout=graceful_timeout):
                try:
                    self._conn.send_bytes(encode_message("stop"))
                except (BrokenPipeError, ConnectionResetError, OSError):
                    pass
                finally:
                    self._lock.release()
            process.join(timeout=graceful_timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout=graceful_timeout)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        return process.exitcode
