"""Cryptographic substrate for MVTEE.

The paper encrypts all inter-TEE traffic with AES-GCM-256 over RA-TLS
sockets and encrypts variant files with ``gramine-sgx-pf-crypt``.  No
crypto library is available offline, so this package provides real,
test-vector-verified implementations built from scratch:

- :mod:`repro.crypto.aes` -- the AES block cipher (128/192/256 bit keys).
- :mod:`repro.crypto.gcm` -- AES-GCM authenticated encryption.
- :mod:`repro.crypto.chacha` -- ChaCha20-Poly1305, numpy-vectorized for
  bulk tensor payloads (pure-Python AES is too slow for megabyte records).
- :mod:`repro.crypto.aead` -- a uniform AEAD interface and registry.
- :mod:`repro.crypto.kdf` -- HKDF-SHA256 key derivation.
- :mod:`repro.crypto.keys` -- key manager: variant-specific keys act as
  key-derivation keys; file encryption uses one-time derived keys; usage
  counters model the NIST key-usage thresholds discussed in the paper.
- :mod:`repro.crypto.sealed` -- the encrypted file-blob format used for
  variant manifests and model partitions (pf-crypt analog).
"""

from repro.crypto.aead import Aead, AeadError, get_aead, available_aeads
from repro.crypto.aes import AesBlockCipher
from repro.crypto.gcm import AesGcm
from repro.crypto.chacha import ChaCha20Poly1305
from repro.crypto.kdf import hkdf_expand, hkdf_extract, hkdf_sha256, hmac_sha256
from repro.crypto.keys import KeyManager, KeyUsageExceeded
from repro.crypto.sealed import SealedBlob, SealError, seal_bytes, unseal_bytes

__all__ = [
    "Aead",
    "AeadError",
    "AesBlockCipher",
    "AesGcm",
    "ChaCha20Poly1305",
    "KeyManager",
    "KeyUsageExceeded",
    "SealedBlob",
    "SealError",
    "available_aeads",
    "get_aead",
    "hkdf_expand",
    "hkdf_extract",
    "hkdf_sha256",
    "hmac_sha256",
    "seal_bytes",
    "unseal_bytes",
]
