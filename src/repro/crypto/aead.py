"""Uniform AEAD interface and registry.

All MVTEE channels and sealed files are parameterized by an AEAD name so
the record cipher is a deployment choice, mirroring the paper's remark
that "encryption overhead ... can be optimized through more efficient
cryptographic algorithms and implementations".
"""

from __future__ import annotations

from typing import Protocol

from repro.crypto.chacha import ChaCha20Poly1305, ChaChaAuthError
from repro.crypto.gcm import AesGcm, GcmAuthError

__all__ = ["Aead", "AeadError", "get_aead", "available_aeads", "DEFAULT_CONTROL_AEAD", "DEFAULT_BULK_AEAD"]

AeadError = (GcmAuthError, ChaChaAuthError)
"""Exception types raised on authentication failure by any registered AEAD."""

DEFAULT_CONTROL_AEAD = "aes-gcm"
DEFAULT_BULK_AEAD = "chacha20-poly1305"


class Aead(Protocol):
    """Structural interface every registered AEAD satisfies."""

    name: str
    key_size: int
    nonce_size: int
    tag_size: int

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes: ...

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes: ...


_REGISTRY = {
    AesGcm.name: AesGcm,
    ChaCha20Poly1305.name: ChaCha20Poly1305,
}


def available_aeads() -> list[str]:
    """Names of all registered AEAD constructions."""
    return sorted(_REGISTRY)


def get_aead(name: str, key: bytes) -> Aead:
    """Instantiate a registered AEAD by name with the given key."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown AEAD {name!r}; available: {available_aeads()}") from None
    return cls(key)
