"""AES block cipher (FIPS-197), implemented from first principles.

The S-box and round tables are generated programmatically from the GF(2^8)
field definition rather than transcribed, eliminating table-typo risk.  The
encryption path uses the standard T-table formulation, which keeps the
pure-Python implementation fast enough for the control-plane messages that
use AES-GCM directly (bulk tensor records use the vectorized ChaCha20
AEAD instead; see :mod:`repro.crypto.chacha`).
"""

from __future__ import annotations

import struct

__all__ = ["AesBlockCipher"]

_AES_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= _AES_POLY
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    """Generate the AES S-box and its inverse from the field definition."""
    # Multiplicative inverses via exhaustive search (256 elements, done once).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        value = b
        for shift in range(1, 5):
            value ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = value ^ 0x63
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()

# T-tables: combined SubBytes + MixColumns for the encryption rounds.
_TE0 = [0] * 256
_TE1 = [0] * 256
_TE2 = [0] * 256
_TE3 = [0] * 256
for _x in range(256):
    _s = _SBOX[_x]
    _t = (
        (_gf_mul(_s, 2) << 24)
        | (_s << 16)
        | (_s << 8)
        | _gf_mul(_s, 3)
    )
    _TE0[_x] = _t
    _TE1[_x] = ((_t >> 8) | (_t << 24)) & 0xFFFFFFFF
    _TE2[_x] = ((_t >> 16) | (_t << 16)) & 0xFFFFFFFF
    _TE3[_x] = ((_t >> 24) | (_t << 8)) & 0xFFFFFFFF

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


class AesBlockCipher:
    """AES with a 128-, 192- or 256-bit key; encrypts one 16-byte block.

    Only the forward (encryption) direction is implemented because every
    mode used by MVTEE (CTR, GCM) needs only the forward permutation.
    """

    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = list(struct.unpack(f">{nk}I", key))
        total = 4 * (self._rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (  # SubWord
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be exactly 16 bytes")
        rk = self._round_keys
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        for rnd in range(1, self._rounds):
            base = 4 * rnd
            t0 = (
                _TE0[(s0 >> 24) & 0xFF]
                ^ _TE1[(s1 >> 16) & 0xFF]
                ^ _TE2[(s2 >> 8) & 0xFF]
                ^ _TE3[s3 & 0xFF]
                ^ rk[base]
            )
            t1 = (
                _TE0[(s1 >> 24) & 0xFF]
                ^ _TE1[(s2 >> 16) & 0xFF]
                ^ _TE2[(s3 >> 8) & 0xFF]
                ^ _TE3[s0 & 0xFF]
                ^ rk[base + 1]
            )
            t2 = (
                _TE0[(s2 >> 24) & 0xFF]
                ^ _TE1[(s3 >> 16) & 0xFF]
                ^ _TE2[(s0 >> 8) & 0xFF]
                ^ _TE3[s1 & 0xFF]
                ^ rk[base + 2]
            )
            t3 = (
                _TE0[(s3 >> 24) & 0xFF]
                ^ _TE1[(s0 >> 16) & 0xFF]
                ^ _TE2[(s1 >> 8) & 0xFF]
                ^ _TE3[s2 & 0xFF]
                ^ rk[base + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
        base = 4 * self._rounds
        out0 = (
            (_SBOX[(s0 >> 24) & 0xFF] << 24)
            | (_SBOX[(s1 >> 16) & 0xFF] << 16)
            | (_SBOX[(s2 >> 8) & 0xFF] << 8)
            | _SBOX[s3 & 0xFF]
        ) ^ rk[base]
        out1 = (
            (_SBOX[(s1 >> 24) & 0xFF] << 24)
            | (_SBOX[(s2 >> 16) & 0xFF] << 16)
            | (_SBOX[(s3 >> 8) & 0xFF] << 8)
            | _SBOX[s0 & 0xFF]
        ) ^ rk[base + 1]
        out2 = (
            (_SBOX[(s2 >> 24) & 0xFF] << 24)
            | (_SBOX[(s3 >> 16) & 0xFF] << 16)
            | (_SBOX[(s0 >> 8) & 0xFF] << 8)
            | _SBOX[s1 & 0xFF]
        ) ^ rk[base + 2]
        out3 = (
            (_SBOX[(s3 >> 24) & 0xFF] << 24)
            | (_SBOX[(s0 >> 16) & 0xFF] << 16)
            | (_SBOX[(s1 >> 8) & 0xFF] << 8)
            | _SBOX[s2 & 0xFF]
        ) ^ rk[base + 3]
        return struct.pack(">4I", out0, out1, out2, out3)

    def ctr_keystream(self, nonce16: bytes, n_bytes: int) -> bytes:
        """Produce a CTR-mode keystream starting at the given 16-byte counter block.

        The counter occupies the last 4 bytes (big-endian), matching GCM's
        32-bit counter convention.
        """
        if len(nonce16) != 16:
            raise ValueError("CTR start block must be 16 bytes")
        prefix = nonce16[:12]
        counter = struct.unpack(">I", nonce16[12:])[0]
        blocks = []
        for _ in range((n_bytes + 15) // 16):
            blocks.append(self.encrypt_block(prefix + struct.pack(">I", counter)))
            counter = (counter + 1) & 0xFFFFFFFF
        return b"".join(blocks)[:n_bytes]
