"""ChaCha20-Poly1305 AEAD (RFC 8439), with a numpy-vectorized keystream.

The paper encrypts checkpoint tensors (hundreds of kilobytes to megabytes
per record) with AES-GCM-256 via OpenSSL.  A pure-Python AES keystream is
orders of magnitude too slow for that record size, so MVTEE's bulk record
protection defaults to this AEAD: the ChaCha20 block function is evaluated
for all blocks of a record at once as numpy ``uint32`` array arithmetic,
reaching tens of MB/s.  The security properties relied on by the system
(confidentiality + integrity + per-record nonce freshness) are identical.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["ChaCha20Poly1305", "ChaChaAuthError", "chacha20_xor", "poly1305_mac"]

_CONSTANTS = np.array(
    [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32
)

_P1305 = (1 << 130) - 5


class ChaChaAuthError(Exception):
    """Raised when a Poly1305 tag fails to verify."""


def _rotl(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def _quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 7)


def _chacha_blocks(key: bytes, nonce: bytes, counter: int, n_blocks: int) -> np.ndarray:
    """Return the keystream for ``n_blocks`` consecutive blocks as uint8."""
    key_words = np.frombuffer(key, dtype="<u4")
    nonce_words = np.frombuffer(nonce, dtype="<u4")
    state = np.empty((16, n_blocks), dtype=np.uint32)
    state[0:4] = _CONSTANTS[:, None]
    state[4:12] = key_words[:, None]
    state[12] = (counter + np.arange(n_blocks, dtype=np.uint64)).astype(np.uint32)
    state[13:16] = nonce_words[:, None]
    working = state.copy()
    old_err = np.seterr(over="ignore")
    try:
        for _ in range(10):  # 20 rounds = 10 double rounds
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        working += state
    finally:
        np.seterr(**old_err)
    # Serialize: each block is the 16 words little-endian, blocks consecutive.
    return np.ascontiguousarray(working.T).astype("<u4").view(np.uint8).reshape(-1)


def chacha20_xor(key: bytes, nonce: bytes, counter: int, data: bytes) -> bytes:
    """XOR ``data`` with the ChaCha20 keystream (encrypt == decrypt)."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    if not data:
        return b""
    n_blocks = (len(data) + 63) // 64
    keystream = _chacha_blocks(key, nonce, counter, n_blocks)[: len(data)]
    buf = np.frombuffer(data, dtype=np.uint8)
    return (buf ^ keystream).tobytes()


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the Poly1305 MAC of ``message`` under a 32-byte one-time key."""
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    acc = 0
    for off in range(0, len(message), 16):
        chunk = message[off : off + 16]
        n = int.from_bytes(chunk, "little") + (1 << (8 * len(chunk)))
        acc = ((acc + n) * r) % _P1305
    return ((acc + s) & ((1 << 128) - 1)).to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return data + (b"\x00" * (16 - remainder) if remainder else b"")


class ChaCha20Poly1305:
    """RFC 8439 AEAD construction.

    >>> aead = ChaCha20Poly1305(bytes(32))
    >>> ct = aead.encrypt(bytes(12), b"hello", b"aad")
    >>> aead.decrypt(bytes(12), ct, b"aad")
    b'hello'
    """

    name = "chacha20-poly1305"
    key_size = 32
    nonce_size = 12
    tag_size = 16

    def __init__(self, key: bytes):
        if len(key) != 32:
            raise ValueError("ChaCha20-Poly1305 key must be 32 bytes")
        self._key = key

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        otk = _chacha_blocks(self._key, nonce, 0, 1).tobytes()[:32]
        mac_data = (
            _pad16(aad)
            + _pad16(ciphertext)
            + struct.pack("<QQ", len(aad), len(ciphertext))
        )
        return poly1305_mac(otk, mac_data)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        ciphertext = chacha20_xor(self._key, nonce, 1, plaintext)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises :class:`ChaChaAuthError` on mismatch."""
        if len(data) < self.tag_size:
            raise ChaChaAuthError("ciphertext shorter than the authentication tag")
        ciphertext, tag = data[: -self.tag_size], data[-self.tag_size :]
        expected = self._tag(nonce, ciphertext, aad)
        diff = 0
        for x, y in zip(expected, tag):
            diff |= x ^ y
        if diff:
            raise ChaChaAuthError("Poly1305 tag verification failed")
        return chacha20_xor(self._key, nonce, 1, ciphertext)
