"""AES-GCM authenticated encryption (NIST SP 800-38D).

This is the cipher the paper names for all inter-TEE traffic
("AES-GCM-256").  GHASH is implemented over GF(2^128) with the standard
right-shift carry-less multiply.  This pure-Python AEAD is used for
control-plane messages (attestation, key distribution, bindings); bulk
tensor records default to the numpy-vectorized ChaCha20-Poly1305 in
:mod:`repro.crypto.chacha`, selectable per channel.
"""

from __future__ import annotations

import struct

from repro.crypto.aes import AesBlockCipher

__all__ = ["AesGcm", "GcmAuthError"]


class GcmAuthError(Exception):
    """Raised when a GCM authentication tag fails to verify."""


def _gf128_mul(x: int, y: int) -> int:
    """Carry-less multiply in GF(2^128) with the GCM reduction polynomial.

    Uses the right-shift formulation from SP 800-38D: bit 0 of an element
    is the coefficient of x^0 at the *most significant* position.
    """
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ (0xE1 << 120)
        else:
            v >>= 1
    return z


class AesGcm:
    """AES-GCM AEAD with 96-bit nonces and 128-bit tags.

    >>> aead = AesGcm(bytes(32))
    >>> ct = aead.encrypt(bytes(12), b"hello", b"aad")
    >>> aead.decrypt(bytes(12), ct, b"aad")
    b'hello'
    """

    name = "aes-gcm"
    key_size = 32
    nonce_size = 12
    tag_size = 16

    def __init__(self, key: bytes):
        self._cipher = AesBlockCipher(key)
        self._h = int.from_bytes(self._cipher.encrypt_block(bytes(16)), "big")

    def _ghash_blocks(self, data: bytes, acc: int = 0) -> int:
        padded = data + b"\x00" * ((16 - len(data) % 16) % 16)
        for off in range(0, len(padded), 16):
            acc ^= int.from_bytes(padded[off : off + 16], "big")
            acc = _gf128_mul(self._h, acc)
        return acc

    def _ghash(self, aad: bytes, ciphertext: bytes) -> int:
        acc = 0
        if aad:
            acc = self._ghash_blocks(aad, acc)
        if ciphertext:
            acc = self._ghash_blocks(ciphertext, acc)
        acc ^= int.from_bytes(struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8), "big")
        return _gf128_mul(self._h, acc)

    def _j0(self, nonce: bytes) -> bytes:
        if len(nonce) == 12:
            return nonce + b"\x00\x00\x00\x01"
        acc = self._ghash_blocks(nonce, 0)
        acc ^= len(nonce) * 8
        return _gf128_mul(self._h, acc).to_bytes(16, "big")

    @staticmethod
    def _increment_counter(block: bytes) -> bytes:
        counter = (struct.unpack(">I", block[12:])[0] + 1) & 0xFFFFFFFF
        return block[:12] + struct.pack(">I", counter)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        j0 = self._j0(nonce)
        keystream = self._cipher.ctr_keystream(self._increment_counter(j0), len(plaintext))
        ciphertext = bytes(p ^ k for p, k in zip(plaintext, keystream))
        tag_mask = int.from_bytes(self._cipher.encrypt_block(j0), "big")
        tag = (self._ghash(aad, ciphertext) ^ tag_mask).to_bytes(16, "big")
        return ciphertext + tag

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises :class:`GcmAuthError` on mismatch."""
        if len(data) < self.tag_size:
            raise GcmAuthError("ciphertext shorter than the authentication tag")
        ciphertext, tag = data[: -self.tag_size], data[-self.tag_size :]
        j0 = self._j0(nonce)
        tag_mask = int.from_bytes(self._cipher.encrypt_block(j0), "big")
        expected = (self._ghash(aad, ciphertext) ^ tag_mask).to_bytes(16, "big")
        if not _constant_time_eq(expected, tag):
            raise GcmAuthError("GCM tag verification failed")
        keystream = self._cipher.ctr_keystream(self._increment_counter(j0), len(ciphertext))
        return bytes(c ^ k for c, k in zip(ciphertext, keystream))


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
