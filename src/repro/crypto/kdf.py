"""HKDF-SHA256 key derivation (RFC 5869) and HMAC helpers.

MVTEE derives per-purpose keys everywhere a secret is shared: channel
record keys from the RA-TLS handshake secret, one-time file keys from a
variant's key-derivation key, and report MACs from the simulated hardware
root key.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["hmac_sha256", "hkdf_extract", "hkdf_expand", "hkdf_sha256"]

_HASH_LEN = 32


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 of ``data`` under ``key``."""
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: compress input keying material into a pseudorandom key."""
    return hmac_sha256(salt or bytes(_HASH_LEN), ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: stretch a pseudorandom key to ``length`` output bytes."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF-Expand output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(prk, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf_sha256(ikm: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """Full HKDF (extract-then-expand) in one call."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
