"""Key management for MVTEE.

The paper (§6.5, "Attacks on init-variant and initialization/updates")
specifies that the variant-specific key acts as a *key-derivation key* for
the TEE OS's encrypted filesystem, while actual file encryption uses
one-time keys; this prolongs the time to reach NIST key-usage thresholds
and lessens rotation burden.  :class:`KeyManager` implements exactly that
scheme, plus usage accounting and rotation.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.crypto.kdf import hkdf_sha256

__all__ = ["KeyManager", "KeyRecord", "KeyUsageExceeded"]

#: Conservative stand-in for the NIST SP 800-38D invocation limit discussed
#: in the paper.  Kept deliberately small-ish so tests can exercise rotation.
DEFAULT_USAGE_LIMIT = 2**20


class KeyUsageExceeded(Exception):
    """Raised when a key-derivation key exceeds its configured usage limit."""


@dataclass
class KeyRecord:
    """A managed key-derivation key with usage accounting."""

    key_id: str
    key: bytes
    usage_limit: int = DEFAULT_USAGE_LIMIT
    derivations: int = 0
    generation: int = 0
    retired: bool = False

    def derive(self, purpose: str, context: bytes = b"", length: int = 32) -> bytes:
        """Derive a one-time subordinate key for ``purpose``.

        Every call consumes one usage unit and yields a distinct key (the
        derivation counter is folded into the HKDF info string), so the
        KDK itself never directly encrypts data.
        """
        if self.retired:
            raise KeyUsageExceeded(f"key {self.key_id} (gen {self.generation}) is retired")
        if self.derivations >= self.usage_limit:
            raise KeyUsageExceeded(
                f"key {self.key_id} reached its usage limit of {self.usage_limit}"
            )
        self.derivations += 1
        info = b"|".join(
            [b"mvtee-kdk", self.key_id.encode(), purpose.encode(), str(self.derivations).encode()]
        )
        return hkdf_sha256(self.key, info=info + b"|" + context, length=length)


@dataclass
class KeyManager:
    """Creates, derives from, rotates and retires key-derivation keys."""

    usage_limit: int = DEFAULT_USAGE_LIMIT
    _records: dict[str, KeyRecord] = field(default_factory=dict)

    def create_key(self, key_id: str, *, key: bytes | None = None) -> KeyRecord:
        """Create (or install) a fresh KDK under ``key_id``."""
        if key_id in self._records and not self._records[key_id].retired:
            raise ValueError(f"key {key_id!r} already exists")
        record = KeyRecord(
            key_id=key_id,
            key=key if key is not None else secrets.token_bytes(32),
            usage_limit=self.usage_limit,
            generation=self._records[key_id].generation + 1 if key_id in self._records else 0,
        )
        self._records[key_id] = record
        return record

    def get(self, key_id: str) -> KeyRecord:
        """Look up an active KDK by id."""
        record = self._records.get(key_id)
        if record is None:
            raise KeyError(f"no key {key_id!r}")
        return record

    def derive(self, key_id: str, purpose: str, context: bytes = b"", length: int = 32) -> bytes:
        """Derive a one-time key from the named KDK."""
        return self.get(key_id).derive(purpose, context, length)

    def rotate(self, key_id: str) -> KeyRecord:
        """Retire the current generation and install a fresh key."""
        old = self.get(key_id)
        old.retired = True
        fresh = KeyRecord(
            key_id=key_id,
            key=secrets.token_bytes(32),
            usage_limit=self.usage_limit,
            generation=old.generation + 1,
        )
        self._records[key_id] = fresh
        return fresh

    def needs_rotation(self, key_id: str, *, headroom: float = 0.9) -> bool:
        """True once a key has consumed ``headroom`` of its usage budget."""
        record = self.get(key_id)
        return record.derivations >= int(record.usage_limit * headroom)

    def key_ids(self) -> list[str]:
        """Ids of all managed (active) keys."""
        return sorted(k for k, r in self._records.items() if not r.retired)
