"""Sealed (encrypted + integrity-protected) file blobs.

This is the analog of ``gramine-sgx-pf-crypt``: variant manifests, model
partitions and weights are stored encrypted under a variant-specific
key-derivation key.  Each blob is encrypted with a *one-time* file key
derived from the KDK (see :mod:`repro.crypto.keys`), and the header --
including the ``freshness`` counter used by the protected filesystem for
rollback detection -- is bound into the AEAD as associated data, so any
header tampering breaks decryption.
"""

from __future__ import annotations

import json
import secrets
from dataclasses import dataclass

from repro.crypto.aead import DEFAULT_BULK_AEAD, AeadError, get_aead
from repro.crypto.kdf import hkdf_sha256
from repro.crypto.keys import KeyRecord

__all__ = ["SealedBlob", "SealError", "seal_bytes", "unseal_bytes"]

_MAGIC = "mvtee-sealed-v1"


class SealError(Exception):
    """Raised when a sealed blob fails to parse or authenticate."""


@dataclass(frozen=True)
class SealedBlob:
    """A sealed payload plus the public metadata needed to unseal it."""

    aead: str
    key_id: str
    derivation_counter: int
    derivation_salt: bytes
    nonce: bytes
    freshness: int
    path: str
    ciphertext: bytes

    def header_bytes(self) -> bytes:
        """Canonical header serialization, bound as AEAD associated data."""
        header = {
            "magic": _MAGIC,
            "aead": self.aead,
            "key_id": self.key_id,
            "counter": self.derivation_counter,
            "salt": self.derivation_salt.hex(),
            "nonce": self.nonce.hex(),
            "freshness": self.freshness,
            "path": self.path,
        }
        return json.dumps(header, sort_keys=True).encode()

    def to_bytes(self) -> bytes:
        """Full wire/disk form: length-prefixed header then ciphertext."""
        header = self.header_bytes()
        return len(header).to_bytes(4, "big") + header + self.ciphertext

    @classmethod
    def from_bytes(cls, data: bytes) -> "SealedBlob":
        """Parse the wire/disk form back into a blob (no authentication yet)."""
        if len(data) < 4:
            raise SealError("sealed blob truncated")
        header_len = int.from_bytes(data[:4], "big")
        if len(data) < 4 + header_len:
            raise SealError("sealed blob header truncated")
        try:
            header = json.loads(data[4 : 4 + header_len])
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SealError(f"sealed blob header is not valid JSON: {exc}") from exc
        if header.get("magic") != _MAGIC:
            raise SealError("sealed blob has wrong magic")
        return cls(
            aead=header["aead"],
            key_id=header["key_id"],
            derivation_counter=int(header["counter"]),
            derivation_salt=bytes.fromhex(header["salt"]),
            nonce=bytes.fromhex(header["nonce"]),
            freshness=int(header["freshness"]),
            path=header["path"],
            ciphertext=data[4 + header_len :],
        )


def _derive_file_key(kdk: bytes, key_id: str, counter: int, salt: bytes, path: str) -> bytes:
    """Deterministic one-time file key: mirrors :meth:`KeyRecord.derive`."""
    info = b"|".join([b"mvtee-kdk", key_id.encode(), b"file-seal", str(counter).encode()])
    one_time = hkdf_sha256(kdk, info=info + b"|" + salt + path.encode())
    return hkdf_sha256(one_time, salt=salt, info=b"mvtee-file-key|" + path.encode(), length=32)


def seal_bytes(
    key_record: KeyRecord,
    path: str,
    plaintext: bytes,
    *,
    freshness: int = 0,
    aead_name: str = DEFAULT_BULK_AEAD,
) -> SealedBlob:
    """Seal ``plaintext`` for logical file ``path`` under a one-time file key.

    ``key_record`` is the variant's key-derivation key; each call burns one
    derivation counter and a fresh random salt, so no file key is reused.
    The counter and salt are public and recorded in the header.
    """
    salt = secrets.token_bytes(16)
    key_record.derive("file-seal", context=salt + path.encode())  # burn + account
    counter = key_record.derivations
    file_key = _derive_file_key(key_record.key, key_record.key_id, counter, salt, path)
    nonce = secrets.token_bytes(12)
    blob = SealedBlob(
        aead=aead_name,
        key_id=key_record.key_id,
        derivation_counter=counter,
        derivation_salt=salt,
        nonce=nonce,
        freshness=freshness,
        path=path,
        ciphertext=b"",
    )
    aead = get_aead(aead_name, file_key)
    ciphertext = aead.encrypt(nonce, plaintext, blob.header_bytes())
    return SealedBlob(
        aead=blob.aead,
        key_id=blob.key_id,
        derivation_counter=counter,
        derivation_salt=salt,
        nonce=nonce,
        freshness=freshness,
        path=path,
        ciphertext=ciphertext,
    )


def unseal_bytes(kdk: bytes, key_id: str, blob: SealedBlob) -> bytes:
    """Unseal a blob given the raw KDK bytes and its key id.

    Unsealing happens inside a variant TEE that received the KDK from the
    monitor; the one-time file key is re-derived from the public header
    fields (counter, salt, path).
    """
    if blob.key_id != key_id:
        raise SealError(f"blob sealed under key {blob.key_id!r}, not {key_id!r}")
    file_key = _derive_file_key(
        kdk, key_id, blob.derivation_counter, blob.derivation_salt, blob.path
    )
    aead = get_aead(blob.aead, file_key)
    try:
        return aead.decrypt(blob.nonce, blob.ciphertext, blob.header_bytes())
    except AeadError as exc:
        raise SealError("sealed blob failed authentication") from exc
