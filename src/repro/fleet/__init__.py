"""Multi-tenant model-fleet serving behind one front door.

Composition:

- :mod:`repro.fleet.spec` -- :class:`TenantSpec` (model, MVX shape,
  SLO class, weighted-fair share, engine policy, autoscale bounds).
- :mod:`repro.fleet.quota` -- per-tenant :class:`TokenBucket`
  admission budgets.
- :mod:`repro.fleet.fleet` -- :class:`ModelFleet` (one deployment +
  engine per tenant, fleet metrics, shared flight recorder, rolling
  updates) and the client-facing :class:`FleetFrontDoor`.
- :mod:`repro.fleet.autoscaler` -- :class:`FleetAutoscaler`
  (queue/health-driven worker-pool elasticity).
"""

from repro.fleet.autoscaler import FleetAutoscaler
from repro.fleet.fleet import FleetFrontDoor, FleetHealth, ModelFleet, QuotaExceeded
from repro.fleet.quota import TokenBucket
from repro.fleet.spec import SLOClass, TenantSpec

__all__ = [
    "FleetAutoscaler",
    "FleetFrontDoor",
    "FleetHealth",
    "ModelFleet",
    "QuotaExceeded",
    "SLOClass",
    "TenantSpec",
    "TokenBucket",
]
