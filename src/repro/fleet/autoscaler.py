"""Queue- and health-driven worker-pool elasticity for the fleet.

Each tenant engine runs ``num_workers`` micro-batches in flight;
:class:`FleetAutoscaler` periodically walks the fleet and resizes every
engine within its spec's ``[min_workers, max_workers]`` bounds:

- **scale up** when the tenant's admission queue is deeper than
  ``scale_up_depth`` -- requests are waiting on in-flight capacity;
- **scale down** when the queue has been empty for
  ``idle_steps_to_shrink`` consecutive steps *and* the tenant's health
  watchdog grades OK -- a degraded tenant keeps its capacity while the
  operator investigates.

The loop is a daemon thread (:meth:`start`/:meth:`stop`); :meth:`step`
is the synchronous single-pass used by tests and by operators who
prefer to drive scaling from their own control loop.  Every resize
increments ``mvtee_autoscale_actions_total`` with the tenant and
direction labels.
"""

from __future__ import annotations

import threading

from repro.observability.health import HealthStatus

__all__ = ["FleetAutoscaler"]


class FleetAutoscaler:
    """Background resize loop over one fleet's tenant engines."""

    def __init__(
        self,
        fleet,
        *,
        interval_s: float = 0.5,
        scale_up_depth: int = 8,
        idle_steps_to_shrink: int = 4,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if scale_up_depth < 1:
            raise ValueError(
                f"scale_up_depth must be >= 1, got {scale_up_depth}"
            )
        if idle_steps_to_shrink < 1:
            raise ValueError(
                f"idle_steps_to_shrink must be >= 1, got {idle_steps_to_shrink}"
            )
        self.fleet = fleet
        self.interval_s = interval_s
        self.scale_up_depth = scale_up_depth
        self.idle_steps_to_shrink = idle_steps_to_shrink
        self._idle_steps: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------

    def step(self) -> list[tuple[str, int]]:
        """One synchronous pass; returns ``(tenant, new_target)`` resizes."""
        actions = []
        counter = self.fleet.registry.counter(
            "mvtee_autoscale_actions_total", "Worker-pool resizes per tenant"
        )
        for name in self.fleet.tenants():
            try:
                entry = self.fleet.tenant(name)
            except KeyError:
                continue  # unregistered between listing and lookup
            engine, spec = entry.engine, entry.spec
            depth = engine.queue_depth
            self.fleet._sample_queue_depth(name, entry)
            workers = engine.num_workers
            if depth >= self.scale_up_depth and workers < spec.max_workers:
                self._idle_steps[name] = 0
                engine.resize(workers + 1)
                counter.inc(tenant=name, direction="up")
                actions.append((name, workers + 1))
                continue
            if depth == 0 and workers > spec.min_workers:
                idle = self._idle_steps.get(name, 0) + 1
                self._idle_steps[name] = idle
                if idle >= self.idle_steps_to_shrink:
                    healthy = entry.health.evaluate().status is HealthStatus.OK
                    if healthy:
                        self._idle_steps[name] = 0
                        engine.resize(workers - 1)
                        counter.inc(tenant=name, direction="down")
                        actions.append((name, workers - 1))
                continue
            self._idle_steps[name] = 0
        return actions

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.step()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "FleetAutoscaler":
        """Spawn the daemon loop (idempotent while running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="mvtee-fleet-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, timeout: float | None = 5.0) -> None:
        """Stop the loop and join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
