"""Multi-tenant model-fleet serving behind one front door.

:class:`ModelFleet` owns one full MVTEE deployment -- a
:class:`~repro.mvx.system.MvteeSystem` plus a started
:class:`~repro.serving.ServingEngine` -- per registered
:class:`~repro.fleet.spec.TenantSpec`, and multiplexes them behind a
single :class:`FleetFrontDoor.submit` surface:

- **weighted-fair admission**: each tenant holds a
  :class:`~repro.fleet.quota.TokenBucket` sized by its spec weight; a
  tenant bursting past its own budget is shed with
  :class:`QuotaExceeded` *before* touching any shared resource, so its
  burst can never starve a neighbor;
- **isolation**: every tenant gets its own metrics registry and
  :class:`~repro.observability.health.HealthMonitor`; the fleet keeps a
  separate registry for the ``tenant=``-labeled fleet metrics and one
  shared :class:`~repro.observability.recorder.FlightRecorder` so all
  tenants' audit events land in a single hash chain;
- **elasticity**: a :class:`~repro.fleet.autoscaler.FleetAutoscaler`
  resizes each tenant engine's worker pool within the spec's bounds
  from queue-depth and health signals;
- **zero-downtime updates**: :meth:`ModelFleet.rolling_update` quiesces
  one tenant's engine (in-flight batches finish, admission stays open),
  replaces its variant group partition by partition through the
  existing re-attestation path, verifies the binding ledger, and
  resumes -- no in-flight ticket is dropped.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.fleet.quota import TokenBucket
from repro.fleet.spec import TenantSpec
from repro.mvx.system import MvteeSystem
from repro.observability.health import HealthMonitor, HealthReport, HealthStatus
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import (
    KIND_REQUEST_SHED,
    KIND_ROLLING_UPDATE,
    FlightRecorder,
)
from repro.observability.sinks import Sinks
from repro.serving.engine import ServingEngine, ServingPolicy, Ticket
from repro.serving.errors import Overloaded
from repro.zoo.registry import build_model

__all__ = ["FleetFrontDoor", "FleetHealth", "ModelFleet", "QuotaExceeded"]


class QuotaExceeded(Overloaded):
    """A tenant burst past its own weighted-fair admission budget."""


@dataclass(frozen=True)
class FleetHealth:
    """Aggregated fleet verdict: the worst tenant wins."""

    status: HealthStatus
    tenants: dict[str, HealthReport]

    def to_json(self) -> dict:
        return {
            "status": self.status.value,
            "tenants": {
                name: report.to_json() for name, report in self.tenants.items()
            },
        }


@dataclass
class _Tenant:
    """One registered tenant's full serving stack."""

    spec: TenantSpec
    system: MvteeSystem
    engine: ServingEngine
    registry: MetricsRegistry
    health: HealthMonitor
    bucket: TokenBucket
    #: Guards rolling updates: one at a time per tenant.
    update_lock: threading.Lock = field(default_factory=threading.Lock)


class ModelFleet:
    """Tenant registry + shared front door + fleet operations."""

    def __init__(
        self,
        *,
        quota_rps_per_weight: float = 50.0,
        burst_s: float = 1.0,
        registry: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        #: Requests/second one unit of tenant weight buys.
        self.quota_rps_per_weight = quota_rps_per_weight
        #: Seconds of sustained rate a tenant may save up as burst.
        self.burst_s = burst_s
        #: Fleet-level registry: only ``tenant=``-labeled aggregates
        #: live here; per-tenant engine metrics stay in each tenant's
        #: own registry so unlabeled gauges never collide.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: One shared hash chain for all tenants' audit events.
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self._clock = clock
        self._tenants: dict[str, _Tenant] = {}
        self._lock = threading.Lock()
        self._autoscaler = None
        # Pre-register the fleet metric surface so the documented
        # inventory is verifiable before the first request arrives.
        self.registry.gauge(
            "mvtee_fleet_tenants", "Tenants registered with the fleet"
        ).set(0)
        self.registry.gauge(
            "mvtee_tenant_queue_depth", "Admission-queue depth per tenant"
        )
        self.registry.gauge(
            "mvtee_tenant_p95_seconds", "Rolling p95 request latency per tenant"
        )
        self.registry.counter(
            "mvtee_tenant_requests_total", "Requests admitted per tenant"
        )
        self.registry.counter(
            "mvtee_tenant_requests_shed_total",
            "Requests shed per tenant (quota or engine overload)",
        )
        self.registry.histogram(
            "mvtee_tenant_latency_seconds",
            "End-to-end request latency per tenant",
        )
        self.registry.counter(
            "mvtee_autoscale_actions_total", "Worker-pool resizes per tenant"
        )
        self.registry.counter(
            "mvtee_rolling_updates_total", "Rolling variant updates per tenant"
        )

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------

    def register(self, spec: TenantSpec) -> "ModelFleet":
        """Deploy and start serving one tenant; returns the fleet.

        Runs the tenant's full offline + bootstrap phase (zoo build,
        partition search, variant diversification, attestation) and
        starts its serving engine.  The tenant is admitting traffic
        when this returns.
        """
        with self._lock:
            if spec.name in self._tenants:
                raise ValueError(f"tenant {spec.name!r} is already registered")
        model = build_model(spec.model, **spec.model_kwargs)
        tenant_registry = MetricsRegistry()
        system = MvteeSystem.deploy(
            model,
            num_partitions=spec.num_partitions,
            mvx_partitions=dict(spec.mvx_partitions),
            seed=spec.seed,
            verify_partitions=spec.verify_partitions,
            verify_variants=spec.verify_variants,
            sinks=Sinks(metrics=tenant_registry, recorder=self.recorder),
        )
        policy = spec.policy if spec.policy is not None else ServingPolicy()
        workers = min(
            max(policy.num_workers, spec.min_workers), spec.max_workers
        )
        if workers != policy.num_workers:
            policy = replace(policy, num_workers=workers)
        engine = ServingEngine(
            system,
            policy=policy,
            sinks=Sinks(metrics=tenant_registry, recorder=self.recorder),
            clock=self._clock,
        )
        tenant = _Tenant(
            spec=spec,
            system=system,
            engine=engine,
            registry=tenant_registry,
            health=HealthMonitor(tenant_registry, recorder=self.recorder),
            bucket=TokenBucket(
                rate=spec.weight * self.quota_rps_per_weight,
                burst=max(1.0, spec.weight * self.quota_rps_per_weight * self.burst_s),
                clock=self._clock,
            ),
        )
        with self._lock:
            if spec.name in self._tenants:
                raise ValueError(f"tenant {spec.name!r} is already registered")
            self._tenants[spec.name] = tenant
            self.registry.gauge(
                "mvtee_fleet_tenants", "Tenants registered with the fleet"
            ).set(len(self._tenants))
        engine.start()
        return self

    def tenant(self, name: str) -> _Tenant:
        """The registered tenant (raises ``KeyError`` when unknown)."""
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise KeyError(
                    f"unknown tenant {name!r}; registered: {sorted(self._tenants)}"
                ) from None

    def tenants(self) -> list[str]:
        """Registered tenant names."""
        with self._lock:
            return sorted(self._tenants)

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------

    @property
    def front_door(self) -> "FleetFrontDoor":
        """The single client-facing submission surface."""
        return FleetFrontDoor(self)

    def submit(
        self,
        tenant: str,
        feeds: dict[str, np.ndarray],
        *,
        deadline_s: float | None = None,
    ) -> Ticket:
        """Admit one request for ``tenant`` through quota + engine.

        The tenant's token bucket is charged first: an empty bucket
        sheds with :class:`QuotaExceeded` without touching the tenant's
        queue (and without touching any other tenant's anything).  Past
        the quota, the tenant engine's own admission control applies --
        a full queue sheds with :class:`~repro.serving.errors.Overloaded`.
        ``deadline_s`` defaults to the spec's SLO-derived deadline.
        """
        entry = self.tenant(tenant)
        shed = self.registry.counter(
            "mvtee_tenant_requests_shed_total",
            "Requests shed per tenant (quota or engine overload)",
        )
        if not entry.bucket.try_acquire():
            shed.inc(tenant=tenant)
            self.recorder.record(
                KIND_REQUEST_SHED,
                tenant=tenant,
                reason="quota",
                rate=entry.bucket.rate,
            )
            raise QuotaExceeded(
                f"tenant {tenant!r} exceeded its admission quota "
                f"({entry.bucket.rate:g} req/s)"
            )
        if deadline_s is None:
            deadline_s = entry.spec.effective_deadline_s()
        start = self._clock()
        try:
            ticket = entry.engine.submit(feeds, deadline_s=deadline_s)
        except Overloaded:
            shed.inc(tenant=tenant)
            raise
        self.registry.counter(
            "mvtee_tenant_requests_total", "Requests admitted per tenant"
        ).inc(tenant=tenant)
        self._sample_queue_depth(tenant, entry)
        ticket.add_done_callback(
            lambda t, name=tenant, start=start: self._observe_done(name, start)
        )
        return ticket

    def _sample_queue_depth(self, name: str, entry: _Tenant) -> None:
        self.registry.gauge(
            "mvtee_tenant_queue_depth", "Admission-queue depth per tenant"
        ).set(entry.engine.queue_depth, tenant=name)

    def _observe_done(self, name: str, start: float) -> None:
        latency = self._clock() - start
        histogram = self.registry.histogram(
            "mvtee_tenant_latency_seconds",
            "End-to-end request latency per tenant",
        )
        histogram.observe(latency, tenant=name)
        self.registry.gauge(
            "mvtee_tenant_p95_seconds", "Rolling p95 request latency per tenant"
        ).set(histogram.quantile(0.95, tenant=name), tenant=name)
        with self._lock:
            entry = self._tenants.get(name)
        if entry is not None:
            self._sample_queue_depth(name, entry)

    # ------------------------------------------------------------------
    # Fleet operations
    # ------------------------------------------------------------------

    def healthz(self) -> FleetHealth:
        """Evaluate every tenant's health watchdog; worst verdict wins."""
        with self._lock:
            entries = dict(self._tenants)
        reports = {name: t.health.evaluate() for name, t in entries.items()}
        worst = HealthStatus.OK
        for report in reports.values():
            if report.status.severity > worst.severity:
                worst = report.status
        return FleetHealth(status=worst, tenants=reports)

    def rolling_update(self, tenant: str, *, seed: int = 1) -> list[int]:
        """Replace one tenant's entire variant group with zero drops.

        Quiesces the tenant's engine (in-flight batches complete,
        admission keeps queueing), replaces every partition's variants
        through :meth:`MvteeSystem.update_partition` -- the full
        re-attestation bootstrap, each replacement appending
        ``variant-replaced`` evidence to the shared recorder and fresh
        bindings to the monitor's ledger -- verifies the ledger chain,
        records one ``rolling-update`` audit event, and resumes.
        Returns the partition indexes updated.
        """
        entry = self.tenant(tenant)
        with entry.update_lock:
            updated = []
            with entry.engine.quiesce():
                for claim in entry.system.config.claims:
                    entry.system.update_partition(
                        claim.partition_index, seed=seed
                    )
                    updated.append(claim.partition_index)
                entry.system.monitor.ledger.verify_chain()
            self.recorder.record(
                KIND_ROLLING_UPDATE,
                tenant=tenant,
                seed=seed,
                partitions=updated,
                ledger_entries=len(entry.system.monitor.ledger.entries),
            )
            self.registry.counter(
                "mvtee_rolling_updates_total", "Rolling variant updates per tenant"
            ).inc(tenant=tenant)
            return updated

    def start_autoscaler(self, *, interval_s: float = 0.5, **kwargs):
        """Start the background autoscaler thread (idempotent)."""
        from repro.fleet.autoscaler import FleetAutoscaler

        if self._autoscaler is None:
            self._autoscaler = FleetAutoscaler(
                self, interval_s=interval_s, **kwargs
            ).start()
        return self._autoscaler

    def shutdown(self) -> None:
        """Stop the autoscaler, every engine, and every deployment."""
        if self._autoscaler is not None:
            self._autoscaler.stop()
            self._autoscaler = None
        with self._lock:
            entries = list(self._tenants.values())
            self._tenants.clear()
            self.registry.gauge(
                "mvtee_fleet_tenants", "Tenants registered with the fleet"
            ).set(0)
        for entry in entries:
            entry.engine.stop()
            entry.system.shutdown()

    def __enter__(self) -> "ModelFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def render_prometheus(self) -> str:
        """The fleet registry's full text exposition."""
        return self.registry.render_prometheus()


class FleetFrontDoor:
    """The one client-facing surface of a fleet.

    A deliberately thin facade: clients hold this instead of the fleet
    so the operational surface (register/rolling_update/shutdown) stays
    out of their reach.
    """

    def __init__(self, fleet: ModelFleet):
        self._fleet = fleet

    def submit(
        self,
        tenant: str,
        feeds: dict[str, np.ndarray],
        *,
        deadline_s: float | None = None,
    ) -> Ticket:
        """Submit one request for ``tenant`` (see :meth:`ModelFleet.submit`)."""
        return self._fleet.submit(tenant, feeds, deadline_s=deadline_s)

    def tenants(self) -> list[str]:
        """Tenant names accepting traffic."""
        return self._fleet.tenants()

    def healthz(self) -> FleetHealth:
        """Aggregated fleet health (readiness-probe endpoint)."""
        return self._fleet.healthz()
