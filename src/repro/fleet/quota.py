"""Per-tenant token-bucket admission quotas.

The fleet's fairness invariant -- a bursting tenant is shed at *its own*
quota, never by starving its neighbors -- needs per-tenant budgets
enforced before a request can touch any shared resource.  A token
bucket gives each tenant a sustained rate plus a bounded burst: tokens
accrue at ``rate`` per second up to ``burst`` capacity, and each
admission spends one.  An empty bucket means the tenant (and only the
tenant) exceeded its share.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["TokenBucket"]


class TokenBucket:
    """Thread-safe token bucket with an injectable clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        #: Sustained refill rate (tokens/second).
        self.rate = rate
        #: Bucket capacity (maximum saved-up burst).
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False means over quota."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently spendable (refilled to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens
