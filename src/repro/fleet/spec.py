"""Tenant declarations for the model fleet.

A :class:`TenantSpec` is everything the fleet needs to stand one tenant
up: which zoo model to deploy, how to partition and replicate it (the
MVX shape), which SLO class its traffic belongs to, its weighted-fair
share of the fleet's admission budget, and the serving-engine policy
overrides.  The spec is frozen -- re-registering a tenant means a new
spec, which keeps the fleet's audit trail honest about what changed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.serving.engine import ServingPolicy

__all__ = ["SLOClass", "TenantSpec"]


class SLOClass(enum.Enum):
    """What a tenant's traffic optimizes for.

    LATENCY tenants get a default per-request deadline (their tickets
    time out rather than queue unboundedly) and the autoscaler treats
    queue growth as urgent; THROUGHPUT tenants run without a default
    deadline and tolerate deeper queues before scaling.
    """

    LATENCY = "latency"
    THROUGHPUT = "throughput"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fleet, fully declared."""

    #: Unique tenant name; becomes the ``tenant=`` label on every fleet
    #: metric and the routing key of :meth:`FleetFrontDoor.submit`.
    name: str
    #: Zoo model name (see :func:`repro.zoo.available_models`).
    model: str
    #: Extra kwargs for the zoo builder (batch, input_size, seed, ...).
    model_kwargs: dict = field(default_factory=dict)
    #: Pipeline partition count for this tenant's deployment.
    num_partitions: int = 3
    #: Partition index -> variant count (selective MVX); empty means
    #: every partition runs a single variant (fast path everywhere).
    mvx_partitions: dict[int, int] = field(default_factory=dict)
    #: Latency-bound or throughput-bound traffic.
    slo: SLOClass = SLOClass.THROUGHPUT
    #: Weighted-fair share: the tenant's admission budget is
    #: ``weight * ModelFleet.quota_rps_per_weight`` requests/second.
    weight: float = 1.0
    #: Default per-request deadline (seconds).  None defers to the SLO
    #: class: LATENCY tenants get :data:`DEFAULT_LATENCY_DEADLINE_S`,
    #: THROUGHPUT tenants run unbounded.
    deadline_s: float | None = None
    #: Serving-engine policy overrides; None takes the stock policy.
    policy: ServingPolicy | None = None
    #: Offline-phase seed (variant diversification, partition search).
    seed: int = 0
    #: Offline verification toggles (exhaustive equivalence checks are
    #: expensive for the bigger zoo models; the fleet defaults them on).
    verify_partitions: bool = True
    verify_variants: bool = True
    #: Autoscaler bounds on the tenant engine's worker pool.
    min_workers: int = 1
    max_workers: int = 4

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})"
            )

    #: Stock deadline for LATENCY tenants that do not declare one.
    DEFAULT_LATENCY_DEADLINE_S = 2.0

    def effective_deadline_s(self) -> float | None:
        """The per-request deadline this tenant's tickets carry."""
        if self.deadline_s is not None:
            return self.deadline_s
        if self.slo is SLOClass.LATENCY:
            return self.DEFAULT_LATENCY_DEADLINE_S
        return None
