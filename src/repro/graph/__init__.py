"""The computational-graph IR substrate (ONNX equivalent).

MVTEE's offline tool operates on ONNX graphs; no onnx package is
available offline, so this package implements the subset of ONNX the
paper relies on: a DAG of typed operator nodes with named tensor edges,
initializers (weights), graph inputs/outputs, shape inference, cost
annotation (FLOPs/bytes), subgraph extraction for partitioning, and a
JSON+npz serialization format.
"""

from repro.graph.dtypes import DataType
from repro.graph.tensor import TensorSpec
from repro.graph.node import Node
from repro.graph.model import GraphError, ModelGraph
from repro.graph.builder import GraphBuilder
from repro.graph.shapes import infer_shapes, ShapeInferenceError
from repro.graph.flops import graph_flops, node_flops, tensor_nbytes

__all__ = [
    "DataType",
    "GraphBuilder",
    "GraphError",
    "ModelGraph",
    "Node",
    "ShapeInferenceError",
    "TensorSpec",
    "graph_flops",
    "infer_shapes",
    "node_flops",
    "tensor_nbytes",
]
