"""Fluent construction of model graphs.

The zoo models (ResNet, Inception, MobileNet, ...) are defined through
this builder.  Each helper appends a node, registers randomly initialized
weights (seeded, He-style), and returns the produced tensor name, so model
definitions read like framework code:

>>> b = GraphBuilder("tiny", seed=0)
>>> x = b.input("x", (1, 3, 8, 8))
>>> y = b.relu(b.conv(x, 4, kernel=3, pad=1))
>>> b.set_output(b.fc(b.global_avg_pool(y), 10))
>>> model = b.finish()
"""

from __future__ import annotations

import numpy as np

from repro.graph.dtypes import DataType
from repro.graph.model import ModelGraph
from repro.graph.node import Node
from repro.graph.shapes import _infer_node, infer_shapes
from repro.graph.tensor import TensorSpec

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally builds a validated :class:`ModelGraph`."""

    def __init__(self, name: str, *, seed: int = 0):
        self._name = name
        self._rng = np.random.default_rng(seed)
        self._inputs: list[TensorSpec] = []
        self._outputs: list[str] = []
        self._nodes: list[Node] = []
        self._initializers: dict[str, np.ndarray] = {}
        self._counters: dict[str, int] = {}
        # Incrementally maintained shape table so layer helpers can query
        # shapes in O(1) instead of re-running whole-graph inference.
        self._specs: dict[str, TensorSpec] = {}

    # ------------------------------------------------------------------
    # Core plumbing
    # ------------------------------------------------------------------

    def _fresh(self, kind: str) -> str:
        index = self._counters.get(kind, 0)
        self._counters[kind] = index + 1
        return f"{kind}_{index}"

    def add_node(
        self,
        op_type: str,
        inputs: list[str],
        *,
        attrs: dict | None = None,
        name: str | None = None,
        n_outputs: int = 1,
    ) -> str | list[str]:
        """Append a raw node; returns its output name(s)."""
        node_name = name or self._fresh(op_type.lower())
        outputs = [f"{node_name}:{i}" if n_outputs > 1 else f"{node_name}:out" for i in range(n_outputs)]
        node = Node(
            name=node_name, op_type=op_type, inputs=inputs, outputs=outputs, attrs=attrs or {}
        )
        self._nodes.append(node)
        _infer_node(node, self._specs)
        return outputs if n_outputs > 1 else outputs[0]

    def add_initializer(self, name: str, array: np.ndarray) -> str:
        """Register a weight tensor."""
        if name in self._initializers:
            raise ValueError(f"initializer {name!r} already registered")
        arr = np.asarray(array, dtype=np.float32)
        self._initializers[name] = arr
        self._specs[name] = TensorSpec(name, tuple(arr.shape), DataType.FLOAT32)
        return name

    def _he_weight(self, name: str, shape: tuple[int, ...], fan_in: int) -> str:
        scale = np.sqrt(2.0 / max(fan_in, 1))
        return self.add_initializer(
            name, self._rng.normal(0.0, scale, size=shape).astype(np.float32)
        )

    def input(self, name: str, shape: tuple[int, ...], dtype: DataType = DataType.FLOAT32) -> str:
        """Declare a graph input and return its tensor name."""
        spec = TensorSpec(name, shape, dtype)
        self._inputs.append(spec)
        self._specs[name] = spec
        return name

    def set_output(self, *tensors: str) -> None:
        """Declare graph outputs (call once per output tensor or with several)."""
        self._outputs.extend(tensors)

    def finish(self) -> ModelGraph:
        """Validate and return the built model."""
        draft = ModelGraph(
            name=self._name,
            inputs=list(self._inputs),
            outputs=[self._specs[t] for t in self._outputs],
            nodes=list(self._nodes),
            initializers=dict(self._initializers),
        )
        draft.toposort_inplace()
        draft.validate()
        # Cross-check the incremental shape table against a from-scratch pass.
        infer_shapes(draft)
        return draft

    # ------------------------------------------------------------------
    # Layer helpers
    # ------------------------------------------------------------------

    def conv(
        self,
        x: str,
        out_channels: int,
        *,
        kernel: int | tuple[int, int] = 3,
        stride: int | tuple[int, int] = 1,
        pad: int | tuple[int, int] | None = None,
        group: int = 1,
        dilation: int = 1,
        bias: bool = False,
        in_channels: int | None = None,
        name: str | None = None,
    ) -> str:
        """2-D convolution.  ``pad=None`` means 'same' for odd kernels at stride 1."""
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        if in_channels is None:
            in_channels = self._current_channels(x)
        if in_channels % group:
            raise ValueError(f"in_channels {in_channels} not divisible by group {group}")
        if pad is None:
            pad = (kh // 2, kw // 2)
        ph, pw = (pad, pad) if isinstance(pad, int) else pad
        node_name = name or self._fresh("conv")
        weight = self._he_weight(
            f"{node_name}.w",
            (out_channels, in_channels // group, kh, kw),
            fan_in=(in_channels // group) * kh * kw,
        )
        inputs = [x, weight]
        if bias:
            inputs.append(self.add_initializer(f"{node_name}.b", np.zeros(out_channels)))
        sh, sw = (stride, stride) if isinstance(stride, int) else stride
        return self.add_node(
            "Conv",
            inputs,
            attrs={
                "strides": [sh, sw],
                "pads": [ph, pw, ph, pw],
                "dilations": [dilation, dilation],
                "group": group,
                "kernel_shape": [kh, kw],
            },
            name=node_name,
        )

    def depthwise_conv(
        self,
        x: str,
        *,
        kernel: int = 3,
        stride: int = 1,
        pad: int | None = None,
        name: str | None = None,
    ) -> str:
        """Depthwise convolution (group == channels)."""
        channels = self._current_channels(x)
        return self.conv(
            x,
            channels,
            kernel=kernel,
            stride=stride,
            pad=pad,
            group=channels,
            name=name or self._fresh("dwconv"),
        )

    def batch_norm(self, x: str, *, eps: float = 1e-5, name: str | None = None) -> str:
        """Batch normalization (inference mode: uses stored statistics)."""
        channels = self._current_channels(x)
        node_name = name or self._fresh("bn")
        scale = self.add_initializer(
            f"{node_name}.scale", np.abs(self._rng.normal(1.0, 0.1, channels)) + 0.1
        )
        shift = self.add_initializer(f"{node_name}.shift", self._rng.normal(0.0, 0.1, channels))
        mean = self.add_initializer(f"{node_name}.mean", self._rng.normal(0.0, 0.2, channels))
        var = self.add_initializer(
            f"{node_name}.var", np.abs(self._rng.normal(1.0, 0.1, channels)) + 0.1
        )
        return self.add_node(
            "BatchNormalization",
            [x, scale, shift, mean, var],
            attrs={"epsilon": eps},
            name=node_name,
        )

    def _activation(self, op: str, x: str, name: str | None = None, **attrs) -> str:
        return self.add_node(op, [x], attrs=attrs, name=name)

    def relu(self, x: str, name: str | None = None) -> str:
        """ReLU activation."""
        return self._activation("Relu", x, name)

    def sigmoid(self, x: str, name: str | None = None) -> str:
        """Logistic sigmoid."""
        return self._activation("Sigmoid", x, name)

    def tanh(self, x: str, name: str | None = None) -> str:
        """Hyperbolic tangent."""
        return self._activation("Tanh", x, name)

    def hard_sigmoid(self, x: str, name: str | None = None) -> str:
        """Hard sigmoid: clip(x/6 + 0.5, 0, 1) (MobileNet-V3 convention)."""
        return self._activation("HardSigmoid", x, name, alpha=1.0 / 6.0, beta=0.5)

    def hard_swish(self, x: str, name: str | None = None) -> str:
        """Hard swish: x * hard_sigmoid(x)."""
        return self._activation("HardSwish", x, name)

    def silu(self, x: str, name: str | None = None) -> str:
        """SiLU / swish: x * sigmoid(x) (EfficientNet activation)."""
        return self._activation("Silu", x, name)

    def clip(self, x: str, *, lo: float = 0.0, hi: float = 6.0, name: str | None = None) -> str:
        """Clip to [lo, hi] (ReLU6 as used by MnasNet)."""
        return self._activation("Clip", x, name, min=lo, max=hi)

    def softmax(self, x: str, *, axis: int = -1, name: str | None = None) -> str:
        """Softmax along ``axis``."""
        return self._activation("Softmax", x, name, axis=axis)

    def max_pool(
        self,
        x: str,
        *,
        kernel: int = 2,
        stride: int | None = None,
        pad: int = 0,
        ceil_mode: bool = False,
        name: str | None = None,
    ) -> str:
        """Max pooling."""
        stride = stride if stride is not None else kernel
        return self.add_node(
            "MaxPool",
            [x],
            attrs={
                "kernel_shape": [kernel, kernel],
                "strides": [stride, stride],
                "pads": [pad, pad, pad, pad],
                "ceil_mode": int(ceil_mode),
            },
            name=name,
        )

    def avg_pool(
        self,
        x: str,
        *,
        kernel: int = 2,
        stride: int | None = None,
        pad: int = 0,
        name: str | None = None,
    ) -> str:
        """Average pooling."""
        stride = stride if stride is not None else kernel
        return self.add_node(
            "AveragePool",
            [x],
            attrs={
                "kernel_shape": [kernel, kernel],
                "strides": [stride, stride],
                "pads": [pad, pad, pad, pad],
            },
            name=name,
        )

    def global_avg_pool(self, x: str, name: str | None = None) -> str:
        """Global average pooling to (N, C, 1, 1)."""
        return self.add_node("GlobalAveragePool", [x], name=name)

    def flatten(self, x: str, *, axis: int = 1, name: str | None = None) -> str:
        """Flatten trailing dimensions from ``axis``."""
        return self.add_node("Flatten", [x], attrs={"axis": axis}, name=name)

    def fc(
        self,
        x: str,
        out_features: int,
        *,
        bias: bool = True,
        flatten: bool = True,
        name: str | None = None,
    ) -> str:
        """Fully connected layer (optionally flattening a 4-D input first)."""
        if flatten and len(self._current_shape(x)) > 2:
            x = self.flatten(x)
        in_features = self._current_shape(x)[-1]
        node_name = name or self._fresh("fc")
        weight = self._he_weight(
            f"{node_name}.w", (out_features, in_features), fan_in=in_features
        )
        inputs = [x, weight]
        if bias:
            inputs.append(self.add_initializer(f"{node_name}.b", np.zeros(out_features)))
        return self.add_node("Gemm", inputs, attrs={"transB": 1}, name=node_name)

    def add(self, a: str, b: str, name: str | None = None) -> str:
        """Elementwise addition (residual connections)."""
        return self.add_node("Add", [a, b], name=name)

    def mul(self, a: str, b: str, name: str | None = None) -> str:
        """Elementwise multiplication (attention gating)."""
        return self.add_node("Mul", [a, b], name=name)

    def concat(self, tensors: list[str], *, axis: int = 1, name: str | None = None) -> str:
        """Concatenate along ``axis`` (Inception branches)."""
        return self.add_node("Concat", list(tensors), attrs={"axis": axis}, name=name)

    def reshape(self, x: str, shape: list[int], name: str | None = None) -> str:
        """Reshape to a static target (one -1 allowed)."""
        return self.add_node("Reshape", [x], attrs={"shape": list(shape)}, name=name)

    def identity(self, x: str, name: str | None = None) -> str:
        """Pass-through node."""
        return self.add_node("Identity", [x], name=name)

    # ------------------------------------------------------------------
    # Transformer layers (requires repro.ops imported for the op family)
    # ------------------------------------------------------------------

    def layer_norm(self, x: str, *, eps: float = 1e-5, name: str | None = None) -> str:
        """Layer normalization over the last dimension."""
        features = self._current_shape(x)[-1]
        node_name = name or self._fresh("ln")
        scale = self.add_initializer(
            f"{node_name}.scale", np.abs(self._rng.normal(1.0, 0.05, features)) + 0.5
        )
        shift = self.add_initializer(f"{node_name}.shift", self._rng.normal(0.0, 0.05, features))
        return self.add_node(
            "LayerNormalization", [x, scale, shift], attrs={"epsilon": eps}, name=node_name
        )

    def gelu(self, x: str, name: str | None = None) -> str:
        """GELU activation (tanh approximation)."""
        return self.add_node("Gelu", [x], name=name)

    def linear(self, x: str, out_features: int, *, name: str | None = None) -> str:
        """Batched linear projection over the last dimension (no flatten)."""
        in_features = self._current_shape(x)[-1]
        node_name = name or self._fresh("linear")
        weight = self._he_weight(
            f"{node_name}.w", (in_features, out_features), fan_in=in_features
        )
        return self.add_node("BatchMatMul", [x, weight], name=node_name)

    def batch_matmul(
        self,
        a: str,
        b: str,
        *,
        trans_a: bool = False,
        trans_b: bool = False,
        scale: float = 1.0,
        name: str | None = None,
    ) -> str:
        """Batched matrix product with optional transposes and scaling."""
        return self.add_node(
            "BatchMatMul",
            [a, b],
            attrs={"transA": int(trans_a), "transB": int(trans_b), "scale": scale},
            name=name,
        )

    def split(self, x: str, parts: int, *, axis: int = -1, name: str | None = None) -> list[str]:
        """Split a tensor into equal parts along ``axis``."""
        return self.add_node(
            "Split", [x], attrs={"axis": axis, "num_outputs": parts},
            name=name, n_outputs=parts,
        )

    def causal_mask(self, x: str, name: str | None = None) -> str:
        """Apply a causal (lower-triangular) mask to attention scores."""
        return self.add_node("CausalMask", [x], name=name)

    def transpose(self, x: str, perm: list[int], name: str | None = None) -> str:
        """Permute tensor dimensions."""
        return self.add_node("Transpose", [x], attrs={"perm": list(perm)}, name=name)

    # ------------------------------------------------------------------
    # Shape bookkeeping (incremental inference over built prefix)
    # ------------------------------------------------------------------

    def _current_shape(self, tensor: str) -> tuple[int, ...]:
        if tensor not in self._specs:
            raise KeyError(f"unknown tensor {tensor!r}")
        return self._specs[tensor].shape

    def _current_channels(self, tensor: str) -> int:
        shape = self._current_shape(tensor)
        if len(shape) < 2:
            raise ValueError(f"tensor {tensor!r} has no channel dimension: {shape}")
        return shape[1]
