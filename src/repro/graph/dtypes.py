"""Tensor element types, mirroring the ONNX TensorProto type subset we use."""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["DataType"]


class DataType(enum.Enum):
    """Element type of a tensor edge."""

    FLOAT32 = "float32"
    FLOAT64 = "float64"
    FLOAT16 = "float16"
    INT64 = "int64"
    INT32 = "int32"
    INT8 = "int8"
    UINT8 = "uint8"
    BOOL = "bool"

    @property
    def numpy(self) -> np.dtype:
        """The numpy dtype this element type maps to."""
        return np.dtype(self.value)

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.numpy.itemsize

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DataType":
        """Map a numpy dtype back to a :class:`DataType`."""
        name = np.dtype(dtype).name
        try:
            return cls(name)
        except ValueError:
            raise ValueError(f"unsupported tensor dtype {name!r}") from None
