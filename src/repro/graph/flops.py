"""Cost annotation: FLOPs and activation bytes per node.

These numbers drive (i) the edge-weight function used by the
random-balanced partitioner ("balanced" is measured in compute) and
(ii) the discrete-event cost model that reproduces the paper's
performance figures.
"""

from __future__ import annotations

import math

from repro.graph.node import Node
from repro.graph.tensor import TensorSpec

__all__ = ["node_flops", "graph_flops", "tensor_nbytes"]


def tensor_nbytes(spec: TensorSpec) -> int:
    """Serialized size of one tensor in bytes."""
    return spec.nbytes


def node_flops(node: Node, specs: dict[str, TensorSpec]) -> int:
    """Estimate multiply-accumulate-style FLOPs for one operator.

    Conventions follow common profiler practice: a MAC counts as 2 FLOPs;
    elementwise/normalization ops count a small constant per element.
    """
    op = node.op_type
    out = specs[node.outputs[0]]
    out_elems = out.num_elements
    if op in ("Conv", "FusedConvRelu"):
        weight = specs[node.inputs[1]]
        # weight: (M, C/group, kH, kW); every output element costs
        # C/group * kH * kW MACs.
        macs_per_out = weight.shape[1] * weight.shape[2] * weight.shape[3]
        return 2 * out_elems * macs_per_out
    if op in ("Gemm", "MatMul", "BatchMatMul", "FusedGemmRelu"):
        a = specs[node.inputs[0]]
        if op in ("Gemm", "FusedGemmRelu"):
            k = a.shape[0] if node.attrs.get("transA") else a.shape[-1]
        else:
            k = a.shape[-2] if node.attrs.get("transA") else a.shape[-1]
        return 2 * out_elems * k
    if op in ("BatchNormalization", "LayerNormalization"):
        return 4 * out_elems
    if op == "Gelu":
        return 8 * out_elems
    if op in ("Split", "CausalMask"):
        return sum(specs[o].num_elements for o in node.outputs if o in specs)
    if op in ("MaxPool", "AveragePool"):
        kh, kw = node.attrs["kernel_shape"][:2] if not isinstance(
            node.attrs["kernel_shape"], int
        ) else (node.attrs["kernel_shape"], node.attrs["kernel_shape"])
        return out_elems * int(kh) * int(kw)
    if op == "GlobalAveragePool":
        return specs[node.inputs[0]].num_elements
    if op == "ReduceMean":
        return specs[node.inputs[0]].num_elements
    if op in ("Relu", "Identity", "Dropout", "ZeroAdd", "Neg"):
        return out_elems
    if op in ("Sigmoid", "Tanh", "Softmax", "Exp", "Erf", "Sqrt", "LRN"):
        return 4 * out_elems
    if op in ("HardSigmoid", "HardSwish", "Silu", "Clip"):
        return 3 * out_elems
    if op in ("Add", "Mul", "Sub", "Div"):
        return out_elems
    if op in ("Concat", "Flatten", "Reshape", "Squeeze", "Unsqueeze", "Transpose", "Pad"):
        return out_elems  # memory movement, charged as 1 "FLOP"/element
    return out_elems


def graph_flops(model, specs: dict[str, TensorSpec] | None = None) -> int:
    """Total FLOPs for one inference through ``model``."""
    if specs is None:
        from repro.graph.shapes import infer_shapes

        specs = infer_shapes(model)
    return sum(node_flops(node, specs) for node in model.nodes)


def node_output_bytes(node: Node, specs: dict[str, TensorSpec]) -> int:
    """Bytes of activation the node produces (checkpoint transfer size)."""
    return sum(specs[out].nbytes for out in node.outputs if out in specs)


def graph_activation_bytes(model, specs: dict[str, TensorSpec] | None = None) -> int:
    """Total bytes of all intermediate activations for one inference."""
    if specs is None:
        from repro.graph.shapes import infer_shapes

        specs = infer_shapes(model)
    return sum(node_output_bytes(node, specs) for node in model.nodes)


def parameter_bytes(model) -> int:
    """Total bytes of model weights."""
    return sum(arr.nbytes for arr in model.initializers.values())


def humanize_flops(flops: int) -> str:
    """Render a FLOP count as a human-readable string (e.g. '4.1 GFLOPs')."""
    if flops <= 0:
        return "0 FLOPs"
    units = ["", "K", "M", "G", "T"]
    scale = min(int(math.log10(flops) // 3), len(units) - 1)
    return f"{flops / 10 ** (3 * scale):.1f} {units[scale]}FLOPs"
