"""The model graph: a validated DAG of operator nodes.

Provides the structural operations MVTEE's offline tooling needs:
validation, topological ordering, producer/consumer maps, subgraph
extraction (the core of partitioning), and serialization.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass, field

import numpy as np

from repro.graph.dtypes import DataType
from repro.graph.node import Node
from repro.graph.tensor import TensorSpec

__all__ = ["GraphError", "ModelGraph"]


class GraphError(Exception):
    """Raised when a graph is structurally invalid."""


@dataclass
class ModelGraph:
    """A DNN model as a DAG of operator nodes with named tensor edges.

    Invariants enforced by :meth:`validate` (and maintained by all library
    transformations):

    - node names and produced tensor names are unique;
    - every node input resolves to a graph input, an initializer, or a
      tensor produced by another node;
    - the node dependency relation is acyclic;
    - every declared graph output is produced.
    """

    name: str
    inputs: list[TensorSpec]
    outputs: list[TensorSpec]
    nodes: list[Node] = field(default_factory=list)
    initializers: dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def producers(self) -> dict[str, Node]:
        """Map from tensor name to the node that produces it."""
        produced: dict[str, Node] = {}
        for node in self.nodes:
            for out in node.outputs:
                if out in produced:
                    raise GraphError(
                        f"tensor {out!r} produced by both {produced[out].name!r} "
                        f"and {node.name!r}"
                    )
                produced[out] = node
        return produced

    def consumers(self) -> dict[str, list[Node]]:
        """Map from tensor name to the nodes that consume it."""
        consumed: dict[str, list[Node]] = {}
        for node in self.nodes:
            for inp in node.inputs:
                consumed.setdefault(inp, []).append(node)
        return consumed

    def node_by_name(self, name: str) -> Node:
        """Look up a node by its unique name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} in graph {self.name!r}")

    def input_names(self) -> set[str]:
        """Names of the graph's data inputs."""
        return {spec.name for spec in self.inputs}

    def output_names(self) -> set[str]:
        """Names of the graph's declared outputs."""
        return {spec.name for spec in self.outputs}

    # ------------------------------------------------------------------
    # Validation and ordering
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`GraphError` if broken."""
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise GraphError(f"duplicate node names: {dupes}")
        produced = self.producers()  # raises on duplicate tensor producers
        known = self.input_names() | set(self.initializers)
        overlap = known & set(produced)
        if overlap:
            raise GraphError(f"tensors both provided and produced: {sorted(overlap)}")
        available = known | set(produced)
        for node in self.nodes:
            for inp in node.inputs:
                if inp not in available:
                    raise GraphError(
                        f"node {node.name!r} consumes unknown tensor {inp!r}"
                    )
        for spec in self.outputs:
            if spec.name not in available:
                raise GraphError(f"graph output {spec.name!r} is never produced")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> list[Node]:
        """Nodes in a deterministic topological order (Kahn, stable by position)."""
        produced = self.producers()
        index = {node.name: i for i, node in enumerate(self.nodes)}
        in_degree: dict[str, int] = {}
        dependents: dict[str, list[Node]] = {}
        for node in self.nodes:
            deps = {
                produced[inp].name
                for inp in node.inputs
                if inp in produced
            }
            in_degree[node.name] = len(deps)
            for dep in deps:
                dependents.setdefault(dep, []).append(node)
        ready = sorted(
            (node for node in self.nodes if in_degree[node.name] == 0),
            key=lambda n: index[n.name],
        )
        order: list[Node] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for dependent in dependents.get(node.name, []):
                in_degree[dependent.name] -= 1
                if in_degree[dependent.name] == 0:
                    # Insert keeping the ready list sorted by original index
                    # so the order is deterministic.
                    pos = 0
                    while pos < len(ready) and index[ready[pos].name] < index[dependent.name]:
                        pos += 1
                    ready.insert(pos, dependent)
        if len(order) != len(self.nodes):
            remaining = sorted(set(n.name for n in self.nodes) - {n.name for n in order})
            raise GraphError(f"graph contains a cycle involving: {remaining}")
        return order

    def toposort_inplace(self) -> None:
        """Reorder ``self.nodes`` into topological order."""
        self.nodes = self.topological_order()

    # ------------------------------------------------------------------
    # Subgraph extraction (partitioning primitive)
    # ------------------------------------------------------------------

    def extract_subgraph(self, node_names: list[str], *, name: str | None = None) -> "ModelGraph":
        """Build the sub-model induced by ``node_names``.

        The subgraph's inputs are the tensors its nodes consume that are
        produced outside (or are graph inputs); initializers referenced by
        the chosen nodes are copied in.  Its outputs are tensors produced
        inside and consumed outside or declared as graph outputs -- these
        boundary tensors are exactly MVTEE's checkpoint tensors.
        """
        chosen = set(node_names)
        missing = chosen - {n.name for n in self.nodes}
        if missing:
            raise GraphError(f"unknown nodes in subgraph request: {sorted(missing)}")
        shapes = self._all_shapes()
        sub_nodes = [n.copy() for n in self.nodes if n.name in chosen]
        produced_inside = {out for n in sub_nodes for out in n.outputs}
        sub_inits: dict[str, np.ndarray] = {}
        boundary_inputs: list[str] = []
        for node in sub_nodes:
            for inp in node.inputs:
                if inp in produced_inside:
                    continue
                if inp in self.initializers:
                    sub_inits[inp] = self.initializers[inp]
                elif inp not in boundary_inputs:
                    boundary_inputs.append(inp)
        graph_outputs = self.output_names()
        consumed_outside = {
            inp
            for node in self.nodes
            if node.name not in chosen
            for inp in node.inputs
        }
        boundary_outputs = [
            out
            for node in sub_nodes
            for out in node.outputs
            if out in consumed_outside or out in graph_outputs
        ]
        def _spec(tensor: str) -> TensorSpec:
            if tensor in shapes:
                return shapes[tensor]
            raise GraphError(f"cannot infer shape for boundary tensor {tensor!r}")

        sub = ModelGraph(
            name=name or f"{self.name}.sub",
            inputs=[_spec(t) for t in boundary_inputs],
            outputs=[_spec(t) for t in boundary_outputs],
            nodes=sub_nodes,
            initializers=sub_inits,
        )
        sub.toposort_inplace()
        sub.validate()
        return sub

    def _all_shapes(self) -> dict[str, TensorSpec]:
        # Local import: shapes.py imports nothing from model.py's runtime
        # path, but keep the modules decoupled at import time.
        from repro.graph.shapes import infer_shapes

        return infer_shapes(self)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """Topology-only JSON form (weights serialized separately)."""
        return {
            "name": self.name,
            "inputs": [s.to_json() for s in self.inputs],
            "outputs": [s.to_json() for s in self.outputs],
            "nodes": [n.to_json() for n in self.nodes],
            "initializer_specs": {
                name: {"shape": list(arr.shape), "dtype": str(arr.dtype)}
                for name, arr in self.initializers.items()
            },
        }

    def to_bytes(self) -> bytes:
        """Full serialized model: JSON topology + npz weight archive."""
        topo = json.dumps(self.to_json(), sort_keys=True).encode()
        buffer = io.BytesIO()
        np.savez(buffer, **{name: arr for name, arr in self.initializers.items()})
        weights = buffer.getvalue()
        return (
            len(topo).to_bytes(8, "big")
            + topo
            + len(weights).to_bytes(8, "big")
            + weights
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ModelGraph":
        """Inverse of :meth:`to_bytes`."""
        topo_len = int.from_bytes(data[:8], "big")
        topo = json.loads(data[8 : 8 + topo_len])
        offset = 8 + topo_len
        weights_len = int.from_bytes(data[offset : offset + 8], "big")
        blob = data[offset + 8 : offset + 8 + weights_len]
        initializers: dict[str, np.ndarray] = {}
        if weights_len:
            with np.load(io.BytesIO(blob)) as archive:
                initializers = {name: archive[name] for name in archive.files}
        model = cls(
            name=topo["name"],
            inputs=[TensorSpec.from_json(s) for s in topo["inputs"]],
            outputs=[TensorSpec.from_json(s) for s in topo["outputs"]],
            nodes=[Node.from_json(n) for n in topo["nodes"]],
            initializers=initializers,
        )
        model.validate()
        return model

    def structural_hash(self) -> str:
        """SHA-256 over topology and weight metadata (not weight values).

        Used as the model *measurement* component in attestation: two
        graph-level variants hash differently, replicas hash identically.
        """
        return hashlib.sha256(
            json.dumps(self.to_json(), sort_keys=True).encode()
        ).hexdigest()

    def weights_hash(self) -> str:
        """SHA-256 over all initializer values in name order."""
        digest = hashlib.sha256()
        for name in sorted(self.initializers):
            arr = self.initializers[name]
            digest.update(name.encode())
            digest.update(str(arr.dtype).encode())
            digest.update(np.ascontiguousarray(arr).tobytes())
        return digest.hexdigest()

    def copy(self) -> "ModelGraph":
        """Independent copy (nodes deep-copied, weights shared read-only)."""
        return ModelGraph(
            name=self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            nodes=[n.copy() for n in self.nodes],
            initializers=dict(self.initializers),
        )

    def to_dot(self, *, partition_of: dict[str, int] | None = None) -> str:
        """Graphviz DOT rendering of the graph.

        ``partition_of`` (node name -> partition index) colors nodes by
        partition, visualizing a checkpoint configuration.
        """
        palette = (
            "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
            "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
        )
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;",
                 "  node [shape=box, style=filled, fillcolor=white];"]
        for spec in self.inputs:
            lines.append(
                f'  "{spec.name}" [shape=ellipse, label="{spec.name}\\n{list(spec.shape)}"];'
            )
        for node in self.nodes:
            color = "white"
            suffix = ""
            if partition_of and node.name in partition_of:
                index = partition_of[node.name]
                color = palette[index % len(palette)]
                suffix = f"\\np{index}"
            lines.append(
                f'  "{node.name}" [label="{node.op_type}\\n{node.name}{suffix}", '
                f'fillcolor="{color}"];'
            )
        producers = self.producers()
        for node in self.nodes:
            for inp in node.inputs:
                if inp in producers:
                    lines.append(f'  "{producers[inp].name}" -> "{node.name}";')
                elif inp in self.input_names():
                    lines.append(f'  "{inp}" -> "{node.name}";')
        for spec in self.outputs:
            if spec.name in producers:
                lines.append(
                    f'  "{spec.name}_out" [shape=ellipse, label="{spec.name}"];'
                )
                lines.append(f'  "{producers[spec.name].name}" -> "{spec.name}_out";')
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Human-readable one-line-per-node description (inspection module)."""
        lines = [f"model {self.name}: {len(self.nodes)} nodes"]
        for spec in self.inputs:
            lines.append(f"  input  {spec.name} {list(spec.shape)} {spec.dtype.value}")
        for node in self.topological_order():
            lines.append(
                f"  [{node.op_type}] {node.name}: "
                f"{', '.join(node.inputs)} -> {', '.join(node.outputs)}"
            )
        for spec in self.outputs:
            lines.append(f"  output {spec.name} {list(spec.shape)} {spec.dtype.value}")
        return "\n".join(lines)
