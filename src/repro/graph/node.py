"""Operator nodes of the model graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Node"]

_JSON_SCALARS = (str, int, float, bool, type(None))


def _check_attr_value(name: str, value: Any) -> Any:
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_attr_value(name, v) for v in value]
    raise TypeError(f"attribute {name!r} has non-serializable value {value!r}")


@dataclass
class Node:
    """One operator application: ``outputs = op_type(inputs; attrs)``.

    ``inputs`` and ``outputs`` are tensor names; weight tensors appear as
    inputs whose names resolve to graph initializers, exactly as in ONNX.
    """

    name: str
    op_type: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if not self.op_type:
            raise ValueError(f"node {self.name!r} has empty op_type")
        if not self.outputs:
            raise ValueError(f"node {self.name!r} produces no outputs")
        self.inputs = list(self.inputs)
        self.outputs = list(self.outputs)
        self.attrs = {k: _check_attr_value(k, v) for k, v in self.attrs.items()}

    def to_json(self) -> dict:
        """JSON-serializable form."""
        return {
            "name": self.name,
            "op_type": self.op_type,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "attrs": self.attrs,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Node":
        """Inverse of :meth:`to_json`."""
        return cls(
            name=data["name"],
            op_type=data["op_type"],
            inputs=list(data["inputs"]),
            outputs=list(data["outputs"]),
            attrs=dict(data.get("attrs", {})),
        )

    def copy(self) -> "Node":
        """Deep-enough copy (attrs re-validated, lists re-materialized)."""
        return Node.from_json(self.to_json())
