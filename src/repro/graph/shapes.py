"""Static shape inference over a model graph.

Every operator supported by the runtimes has a shape rule here.  Shape
inference is used by partitioning (checkpoint tensor sizes feed the edge
weight function), by the cost model (FLOPs need activation shapes), and
by subgraph extraction (boundary tensor specs).
"""

from __future__ import annotations

import math

from repro.graph.dtypes import DataType
from repro.graph.node import Node
from repro.graph.tensor import TensorSpec

__all__ = ["ShapeInferenceError", "infer_shapes", "register_shape_rule"]


class ShapeInferenceError(Exception):
    """Raised when shapes cannot be inferred or are inconsistent."""


#: Extension point: op_type -> rule(node, specs).  Packages adding new
#: operator families (e.g. the transformer ops) register rules here.
_EXTRA_RULES: dict = {}


def register_shape_rule(op_type: str, rule) -> None:
    """Register a shape-inference rule for an extension operator."""
    if op_type in _EXTRA_RULES:
        raise ValueError(f"shape rule for {op_type!r} already registered")
    _EXTRA_RULES[op_type] = rule


def _pair(value, name: str) -> tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    if len(value) != 2:
        raise ShapeInferenceError(f"{name} must have 2 entries, got {value}")
    return (int(value[0]), int(value[1]))


def _conv_output_hw(
    h: int,
    w: int,
    kernel: tuple[int, int],
    strides: tuple[int, int],
    pads: tuple[int, int, int, int],
    dilations: tuple[int, int],
    *,
    ceil_mode: bool = False,
) -> tuple[int, int]:
    rounding = math.ceil if ceil_mode else math.floor
    effective_kh = dilations[0] * (kernel[0] - 1) + 1
    effective_kw = dilations[1] * (kernel[1] - 1) + 1
    out_h = rounding((h + pads[0] + pads[2] - effective_kh) / strides[0]) + 1
    out_w = rounding((w + pads[1] + pads[3] - effective_kw) / strides[1]) + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeInferenceError(
            f"conv/pool output collapsed to {out_h}x{out_w} "
            f"(input {h}x{w}, kernel {kernel}, strides {strides}, pads {pads})"
        )
    return out_h, out_w


def _node_pads(node: Node) -> tuple[int, int, int, int]:
    pads = node.attrs.get("pads", [0, 0, 0, 0])
    if len(pads) == 2:
        pads = [pads[0], pads[1], pads[0], pads[1]]
    if len(pads) != 4:
        raise ShapeInferenceError(f"node {node.name!r}: pads must have 2 or 4 entries")
    return tuple(int(p) for p in pads)


def _broadcast(a: tuple[int, ...], b: tuple[int, ...], node: Node) -> tuple[int, ...]:
    rank = max(len(a), len(b))
    a = (1,) * (rank - len(a)) + a
    b = (1,) * (rank - len(b)) + b
    out = []
    for da, db in zip(a, b):
        if da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            raise ShapeInferenceError(
                f"node {node.name!r}: shapes {a} and {b} are not broadcastable"
            )
    return tuple(out)


def infer_shapes(model) -> dict[str, TensorSpec]:
    """Infer a :class:`TensorSpec` for every tensor in the graph.

    Returns a dict keyed by tensor name covering graph inputs,
    initializers and every node output.
    """
    specs: dict[str, TensorSpec] = {}
    for spec in model.inputs:
        specs[spec.name] = spec
    for name, arr in model.initializers.items():
        specs[name] = TensorSpec(name, tuple(arr.shape), DataType.from_numpy(arr.dtype))
    for node in model.topological_order():
        _infer_node(node, specs)
    return specs


def _shape_of(specs: dict[str, TensorSpec], name: str, node: Node) -> tuple[int, ...]:
    if name not in specs:
        raise ShapeInferenceError(f"node {node.name!r}: unknown input tensor {name!r}")
    return specs[name].shape


def _dtype_of(specs: dict[str, TensorSpec], name: str) -> DataType:
    return specs[name].dtype


def _set(specs: dict[str, TensorSpec], name: str, shape: tuple[int, ...], dtype: DataType) -> None:
    specs[name] = TensorSpec(name, shape, dtype)


_ELEMENTWISE_UNARY = {
    "Relu",
    "Sigmoid",
    "HardSigmoid",
    "HardSwish",
    "Silu",
    "Tanh",
    "Softmax",
    "Identity",
    "Clip",
    "Dropout",
    "Erf",
    "Sqrt",
    "Exp",
    "Neg",
    "LRN",
    "ZeroAdd",
}

_ELEMENTWISE_BINARY = {"Add", "Mul", "Sub", "Div"}


def _infer_node(node: Node, specs: dict[str, TensorSpec]) -> None:
    op = node.op_type
    if op in _EXTRA_RULES:
        _EXTRA_RULES[op](node, specs)
    elif op in _ELEMENTWISE_UNARY:
        shape = _shape_of(specs, node.inputs[0], node)
        _set(specs, node.outputs[0], shape, _dtype_of(specs, node.inputs[0]))
    elif op in _ELEMENTWISE_BINARY:
        a = _shape_of(specs, node.inputs[0], node)
        b = _shape_of(specs, node.inputs[1], node)
        _set(specs, node.outputs[0], _broadcast(a, b, node), _dtype_of(specs, node.inputs[0]))
    elif op == "Conv":
        _infer_conv(node, specs)
    elif op == "Gemm":
        _infer_gemm(node, specs)
    elif op == "MatMul":
        a = _shape_of(specs, node.inputs[0], node)
        b = _shape_of(specs, node.inputs[1], node)
        if a[-1] != b[-2 if len(b) > 1 else 0]:
            raise ShapeInferenceError(f"node {node.name!r}: MatMul inner dims {a} x {b}")
        _set(specs, node.outputs[0], a[:-1] + b[-1:], _dtype_of(specs, node.inputs[0]))
    elif op == "BatchNormalization":
        shape = _shape_of(specs, node.inputs[0], node)
        _set(specs, node.outputs[0], shape, _dtype_of(specs, node.inputs[0]))
    elif op in ("MaxPool", "AveragePool"):
        _infer_pool(node, specs)
    elif op == "GlobalAveragePool":
        shape = _shape_of(specs, node.inputs[0], node)
        _set(specs, node.outputs[0], shape[:2] + (1, 1), _dtype_of(specs, node.inputs[0]))
    elif op == "Concat":
        _infer_concat(node, specs)
    elif op == "Flatten":
        shape = _shape_of(specs, node.inputs[0], node)
        axis = int(node.attrs.get("axis", 1))
        lead = math.prod(shape[:axis]) if axis else 1
        _set(
            specs,
            node.outputs[0],
            (lead, math.prod(shape[axis:])),
            _dtype_of(specs, node.inputs[0]),
        )
    elif op == "Reshape":
        _infer_reshape(node, specs)
    elif op == "Pad":
        shape = _shape_of(specs, node.inputs[0], node)
        pads = [int(p) for p in node.attrs["pads"]]
        rank = len(shape)
        if len(pads) != 2 * rank:
            raise ShapeInferenceError(f"node {node.name!r}: Pad pads length must be 2*rank")
        out = tuple(shape[i] + pads[i] + pads[rank + i] for i in range(rank))
        _set(specs, node.outputs[0], out, _dtype_of(specs, node.inputs[0]))
    elif op == "ReduceMean":
        shape = _shape_of(specs, node.inputs[0], node)
        axes = sorted({int(a) % len(shape) for a in node.attrs.get("axes", range(len(shape)))})
        keepdims = bool(node.attrs.get("keepdims", 1))
        if keepdims:
            out = tuple(1 if i in axes else d for i, d in enumerate(shape))
        else:
            out = tuple(d for i, d in enumerate(shape) if i not in axes)
        _set(specs, node.outputs[0], out, _dtype_of(specs, node.inputs[0]))
    elif op == "Squeeze":
        shape = _shape_of(specs, node.inputs[0], node)
        axes = {a % len(shape) for a in node.attrs.get("axes", [])}
        if axes:
            out = tuple(d for i, d in enumerate(shape) if i not in axes)
        else:
            out = tuple(d for d in shape if d != 1)
        _set(specs, node.outputs[0], out, _dtype_of(specs, node.inputs[0]))
    elif op == "Unsqueeze":
        shape = list(_shape_of(specs, node.inputs[0], node))
        for axis in sorted(int(a) for a in node.attrs["axes"]):
            shape.insert(axis, 1)
        _set(specs, node.outputs[0], tuple(shape), _dtype_of(specs, node.inputs[0]))
    elif op == "Transpose":
        shape = _shape_of(specs, node.inputs[0], node)
        perm = node.attrs.get("perm") or list(range(len(shape)))[::-1]
        _set(
            specs,
            node.outputs[0],
            tuple(shape[int(p)] for p in perm),
            _dtype_of(specs, node.inputs[0]),
        )
    else:
        raise ShapeInferenceError(f"node {node.name!r}: no shape rule for op {op!r}")


def _infer_conv(node: Node, specs: dict[str, TensorSpec]) -> None:
    x = _shape_of(specs, node.inputs[0], node)
    w = _shape_of(specs, node.inputs[1], node)
    if len(x) != 4 or len(w) != 4:
        raise ShapeInferenceError(f"node {node.name!r}: Conv expects 4-D input and weight")
    group = int(node.attrs.get("group", 1))
    if x[1] != w[1] * group:
        raise ShapeInferenceError(
            f"node {node.name!r}: Conv channels {x[1]} != weight {w[1]} * group {group}"
        )
    strides = _pair(node.attrs.get("strides", [1, 1]), "strides")
    dilations = _pair(node.attrs.get("dilations", [1, 1]), "dilations")
    out_h, out_w = _conv_output_hw(
        x[2], x[3], (w[2], w[3]), strides, _node_pads(node), dilations
    )
    _set(specs, node.outputs[0], (x[0], w[0], out_h, out_w), _dtype_of(specs, node.inputs[0]))


def _infer_gemm(node: Node, specs: dict[str, TensorSpec]) -> None:
    a = _shape_of(specs, node.inputs[0], node)
    b = _shape_of(specs, node.inputs[1], node)
    if len(a) != 2 or len(b) != 2:
        raise ShapeInferenceError(f"node {node.name!r}: Gemm expects 2-D inputs")
    trans_a = bool(node.attrs.get("transA", 0))
    trans_b = bool(node.attrs.get("transB", 0))
    m, k = (a[1], a[0]) if trans_a else (a[0], a[1])
    kb, n = (b[1], b[0]) if trans_b else (b[0], b[1])
    if k != kb:
        raise ShapeInferenceError(f"node {node.name!r}: Gemm inner dims {k} != {kb}")
    _set(specs, node.outputs[0], (m, n), _dtype_of(specs, node.inputs[0]))


def _infer_pool(node: Node, specs: dict[str, TensorSpec]) -> None:
    x = _shape_of(specs, node.inputs[0], node)
    if len(x) != 4:
        raise ShapeInferenceError(f"node {node.name!r}: pooling expects 4-D input")
    kernel = _pair(node.attrs["kernel_shape"], "kernel_shape")
    strides = _pair(node.attrs.get("strides", kernel), "strides")
    ceil_mode = bool(node.attrs.get("ceil_mode", 0))
    out_h, out_w = _conv_output_hw(
        x[2], x[3], kernel, strides, _node_pads(node), (1, 1), ceil_mode=ceil_mode
    )
    _set(specs, node.outputs[0], (x[0], x[1], out_h, out_w), _dtype_of(specs, node.inputs[0]))


def _infer_concat(node: Node, specs: dict[str, TensorSpec]) -> None:
    shapes = [_shape_of(specs, inp, node) for inp in node.inputs]
    axis = int(node.attrs.get("axis", 1))
    base = list(shapes[0])
    axis %= len(base)
    for shape in shapes[1:]:
        if len(shape) != len(base) or any(
            i != axis and d != base[i] for i, d in enumerate(shape)
        ):
            raise ShapeInferenceError(
                f"node {node.name!r}: concat shapes {shapes} mismatch off axis {axis}"
            )
        base[axis] += shape[axis]
    _set(specs, node.outputs[0], tuple(base), _dtype_of(specs, node.inputs[0]))


def _infer_reshape(node: Node, specs: dict[str, TensorSpec]) -> None:
    shape = _shape_of(specs, node.inputs[0], node)
    target = [int(d) for d in node.attrs["shape"]]
    total = math.prod(shape)
    if target.count(-1) > 1:
        raise ShapeInferenceError(f"node {node.name!r}: multiple -1 dims in Reshape")
    if -1 in target:
        rest = math.prod(d for d in target if d != -1)
        if rest == 0 or total % rest:
            raise ShapeInferenceError(
                f"node {node.name!r}: cannot reshape {shape} -> {target}"
            )
        target[target.index(-1)] = total // rest
    if math.prod(target) != total:
        raise ShapeInferenceError(f"node {node.name!r}: reshape {shape} -> {target} size mismatch")
    _set(specs, node.outputs[0], tuple(target), _dtype_of(specs, node.inputs[0]))
