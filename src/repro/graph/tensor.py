"""Tensor value specifications (name, dtype, static shape)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.dtypes import DataType

__all__ = ["TensorSpec"]


@dataclass(frozen=True)
class TensorSpec:
    """A named tensor edge with a static shape.

    MVTEE inference is shape-static (batch size fixed per deployment, the
    paper uses batch 1 with 3x224x224 inputs), so shapes are concrete
    integer tuples throughout.
    """

    name: str
    shape: tuple[int, ...]
    dtype: DataType = DataType.FLOAT32

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        if any(d < 0 for d in self.shape):
            raise ValueError(f"tensor {self.name!r} has negative dimension: {self.shape}")

    @property
    def num_elements(self) -> int:
        """Total element count (1 for a scalar)."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Serialized payload size in bytes."""
        return self.num_elements * self.dtype.itemsize

    def to_json(self) -> dict:
        """JSON-serializable form."""
        return {"name": self.name, "shape": list(self.shape), "dtype": self.dtype.value}

    @classmethod
    def from_json(cls, data: dict) -> "TensorSpec":
        """Inverse of :meth:`to_json`."""
        return cls(name=data["name"], shape=tuple(data["shape"]), dtype=DataType(data["dtype"]))
