"""The MVTEE runtime: monitor, bootstrap protocol, schedulers.

Composition (§4.3):

- :mod:`repro.mvx.config` -- the runtime-provisioned MVX configuration
  (partition set + per-partition variant claims; selective MVX knobs).
- :mod:`repro.mvx.consistency` -- criteria-based consistency checks
  (cosine similarity, MSE, max-abs-diff, allclose with tolerances).
- :mod:`repro.mvx.voting` -- cross-process voting (unanimous default,
  majority/plurality available).
- :mod:`repro.mvx.binding` -- the append-only binding ledger.
- :mod:`repro.mvx.variant_host` -- a variant TEE process: init-variant
  stage, two-stage transition, inference serving, crash semantics.
- :mod:`repro.mvx.monitor` -- the monitor TEE: attestation, key
  distribution, checkpoint synchronization, voting, response.
- :mod:`repro.mvx.bootstrap` -- the Figure 6 initialization/update
  workflow binding model owner, orchestrator, monitor and variants.
- :mod:`repro.mvx.scheduler` -- the unified :func:`run` entry point
  (:class:`InferenceOptions`: sequential/pipelined scheduling, sync and
  asynchronous cross-validation, slow/fast path, tracer + metrics).
- :mod:`repro.mvx.system` -- the high-level facade tying it together.

Every stage execution, variant round trip, checkpoint evaluation,
detection and recovery action reports through
:mod:`repro.observability` (span trees + the metrics registry).
"""

from repro.mvx.config import MvxConfig, PartitionClaim
from repro.mvx.consistency import ConsistencyPolicy, ConsistencyReport
from repro.mvx.events import CrashEvent, DivergenceEvent, ResponseAction
from repro.mvx.monitor import Monitor, MonitorError
from repro.mvx.bootstrap import (
    CombinedAttestation,
    ModelOwner,
    Orchestrator,
    bootstrap_deployment,
    combined_attestation,
)
from repro.mvx.scheduler import (
    ExecutionMode,
    InferenceOptions,
    PathMode,
    SchedulingMode,
    run,
    validate_feeds,
)
from repro.mvx.service import InferenceService, RequestState, ServiceMetrics
from repro.mvx.system import MvteeSystem
from repro.mvx.adaptive import AdaptiveController, ScalingAction
from repro.mvx.transport import DirectTransport, FabricTransport
from repro.mvx.variant_host import VariantHost, VariantUnavailable
from repro.mvx.voting import VoteResult, vote

__all__ = [
    "AdaptiveController",
    "CombinedAttestation",
    "ConsistencyPolicy",
    "combined_attestation",
    "ScalingAction",
    "ConsistencyReport",
    "CrashEvent",
    "DirectTransport",
    "DivergenceEvent",
    "FabricTransport",
    "ExecutionMode",
    "InferenceOptions",
    "InferenceService",
    "Monitor",
    "RequestState",
    "ServiceMetrics",
    "MonitorError",
    "ModelOwner",
    "MvteeSystem",
    "MvxConfig",
    "Orchestrator",
    "PartitionClaim",
    "PathMode",
    "ResponseAction",
    "SchedulingMode",
    "VariantHost",
    "VariantUnavailable",
    "VoteResult",
    "bootstrap_deployment",
    "run",
    "validate_feeds",
    "vote",
]
