"""Adaptive selective-MVX control (§4.3).

"These [vertical and horizontal scaling] can be configured to adapt to
dynamic online environments, to meet varying security, Quality of
Service (QoS), or resource demands."  The controller watches the
monitor's event stream over a sliding window and adjusts the horizontal
scale of each partition:

- divergences or crashes on a partition raise its *threat score*; above
  ``scale_up_threshold`` the controller adds variants (up to
  ``max_variants``), widening the voting panel where attacks are
  actually landing;
- a long quiet period decays scores; below ``scale_down_threshold`` the
  controller retires surplus variants (down to ``min_variants``),
  returning resources -- the anti-"static full replication" knob.

The controller never drops a partition below the deployment's
configured protection floor: partitions the MVX plan marks as protected
keep at least 2 variants so the slow path stays active.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mvx.events import CrashEvent, DivergenceEvent
from repro.mvx.system import MvteeSystem
from repro.observability.metrics import MetricsRegistry, get_global_registry

__all__ = ["AdaptiveController", "ScalingAction"]


@dataclass(frozen=True)
class ScalingAction:
    """One decision taken by the controller."""

    partition_index: int
    action: str  # "scale-up" | "scale-down"
    variants_before: int
    variants_after: int
    threat_score: float


@dataclass
class AdaptiveController:
    """Event-driven horizontal scaling of a live deployment."""

    system: MvteeSystem
    scale_up_threshold: float = 1.0
    scale_down_threshold: float = 0.25
    decay: float = 0.5  # score multiplier applied per observation round
    max_variants: int = 5
    min_variants: int = 1
    #: Metrics sink for scaling decisions (None = process-wide registry).
    metrics: MetricsRegistry | None = None
    _scores: dict[int, float] = field(default_factory=dict)
    _events_seen: int = 0
    _spawn_seed: int = 1000
    actions: list[ScalingAction] = field(default_factory=list)

    def observe(self) -> list[ScalingAction]:
        """Ingest new monitor events, decay scores, act; returns actions."""
        events = self.system.monitor.events[self._events_seen :]
        self._events_seen = len(self.system.monitor.events)
        for index in list(self._scores):
            self._scores[index] *= self.decay
        for event in events:
            if isinstance(event, (DivergenceEvent, CrashEvent)):
                index = event.partition_index
                self._scores[index] = self._scores.get(index, 0.0) + 1.0
        taken: list[ScalingAction] = []
        for index in range(len(self.system.partition_set)):
            score = self._scores.get(index, 0.0)
            live = len(self.system.monitor.stage_connections(index))
            if score >= self.scale_up_threshold and live < self.max_variants:
                taken.append(self._scale_up(index, live, score))
            elif score <= self.scale_down_threshold and live > self._floor(index):
                taken.append(self._scale_down(index, live, score))
        self.actions.extend(taken)
        registry = self.metrics if self.metrics is not None else get_global_registry()
        threat = registry.gauge("mvtee_threat_score", "Per-partition threat score")
        for index in range(len(self.system.partition_set)):
            threat.set(self._scores.get(index, 0.0), partition=index)
        actions_total = registry.counter(
            "mvtee_scaling_actions_total", "Adaptive scaling decisions"
        )
        for action in taken:
            actions_total.inc(action=action.action)
        return taken

    def _floor(self, index: int) -> int:
        claim = self.system.config.claim(index)
        # Partitions the plan protects keep a working voting panel.
        return max(self.min_variants, 2 if claim.mvx_enabled else self.min_variants)

    def _scale_up(self, index: int, live: int, score: float) -> ScalingAction:
        self._spawn_seed += 1
        self.system.scale_up(index, 1, seed=self._spawn_seed)
        return ScalingAction(
            partition_index=index,
            action="scale-up",
            variants_before=live,
            variants_after=live + 1,
            threat_score=score,
        )

    def _scale_down(self, index: int, live: int, score: float) -> ScalingAction:
        victim = self.system.monitor.stage_connections(index)[-1]
        self.system.monitor.retire_variant(victim.variant_id)
        return ScalingAction(
            partition_index=index,
            action="scale-down",
            variants_before=live,
            variants_after=live - 1,
            threat_score=score,
        )
