"""The monitor's append-only variant binding ledger.

Figure 6 step 7: the monitor "verifies and binds each connection with
the respective variant and meta data"; updates append new bindings
"in an appending-only way for auditing purposes".  Each entry links a
variant id to its enclave measurement, channel and partition; entries
are hash-chained so silent mutation of history is detectable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["Binding", "BindingLedger", "LedgerError"]


class LedgerError(Exception):
    """Raised on ledger integrity violations."""


@dataclass(frozen=True)
class Binding:
    """One binding entry."""

    sequence: int
    variant_id: str
    partition_index: int
    enclave_id: str
    measurement: str
    channel_id: str
    event: str  # "init" | "update" | "retire"
    previous_hash: str

    def entry_hash(self) -> str:
        """Hash of this entry, chaining ``previous_hash``."""
        body = json.dumps(
            {
                "sequence": self.sequence,
                "variant_id": self.variant_id,
                "partition_index": self.partition_index,
                "enclave_id": self.enclave_id,
                "measurement": self.measurement,
                "channel_id": self.channel_id,
                "event": self.event,
                "previous_hash": self.previous_hash,
            },
            sort_keys=True,
        ).encode()
        return hashlib.sha256(body).hexdigest()


@dataclass
class BindingLedger:
    """Append-only, hash-chained log of variant bindings."""

    entries: list[Binding] = field(default_factory=list)

    def append(
        self,
        *,
        variant_id: str,
        partition_index: int,
        enclave_id: str,
        measurement: str,
        channel_id: str,
        event: str = "init",
    ) -> Binding:
        """Add a binding entry; returns it."""
        previous = self.entries[-1].entry_hash() if self.entries else "0" * 64
        binding = Binding(
            sequence=len(self.entries),
            variant_id=variant_id,
            partition_index=partition_index,
            enclave_id=enclave_id,
            measurement=measurement,
            channel_id=channel_id,
            event=event,
            previous_hash=previous,
        )
        self.entries.append(binding)
        return binding

    def verify_chain(self) -> None:
        """Check the hash chain; raises :class:`LedgerError` on tampering."""
        previous = "0" * 64
        for index, entry in enumerate(self.entries):
            if entry.sequence != index:
                raise LedgerError(f"ledger entry {index} has sequence {entry.sequence}")
            if entry.previous_hash != previous:
                raise LedgerError(f"ledger chain broken at entry {index}")
            previous = entry.entry_hash()

    def active_bindings(self) -> dict[str, Binding]:
        """Latest non-retired binding per variant id."""
        latest: dict[str, Binding] = {}
        for entry in self.entries:
            if entry.event == "retire":
                latest.pop(entry.variant_id, None)
            else:
                latest[entry.variant_id] = entry
        return latest
