"""The deployment bootstrap: model owner, orchestrator, protocol wiring.

Implements the Figure 6 workflow:

1. the (untrusted) orchestrator schedules the monitor TEE and the
   variant TEEs, each started from the public init-variant image;
2. the model owner attests the monitor via challenge-response;
3. the owner provisions the MVX configuration (nonce-protected);
4-7. the monitor selects variants from the pool, establishes RA-TLS
   channels, distributes keys, verifies installation evidence, binds;
8. the initialization result plus nonce returns to the owner.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.mvx.config import MvxConfig
from repro.mvx.monitor import Monitor, MonitorError
from repro.mvx.variant_host import VariantHost
from repro.tee.attestation import AttestationError, Verifier, fresh_nonce
from repro.tee.enclave import Enclave
from repro.tee.hardware import SimulatedCpu, TeeType
from repro.tee.manifest import Manifest
from repro.variants.pool import VariantPool

__all__ = ["ModelOwner", "Orchestrator", "bootstrap_deployment", "MONITOR_CODE"]

#: Canonical monitor "binary" -- publicly measurable, minimal TCB.
MONITOR_CODE = (
    b"#!mvtee-monitor v1\n"
    b"attest; provision-config; select-variants; ra-tls; distribute-keys;\n"
    b"bind; synchronize-checkpoints; vote; respond\n"
)


def monitor_manifest() -> Manifest:
    """The monitor TEE's manifest (integrity-protected, no encrypted state)."""
    return Manifest(
        entrypoint="/mvtee/monitor",
        trusted_files={"/mvtee/monitor": hashlib.sha256(MONITOR_CODE).hexdigest()},
        syscalls=frozenset(
            {"read", "write", "socket", "connect", "send", "recv",
             "clock_gettime", "exit", "exit_group", "futex"}
        ),
        extra={"role": "monitor"},
    )


@dataclass
class Orchestrator:
    """The untrusted resource manager (e.g. Kubernetes).

    Places TEEs and moves public/sealed files around; never sees variant
    plaintext or keys (two-stage bootstrap confidentiality).
    """

    cpus: list[SimulatedCpu]
    _next_cpu: int = 0

    def _pick_cpu(self) -> SimulatedCpu:
        cpu = self.cpus[self._next_cpu % len(self.cpus)]
        self._next_cpu += 1
        return cpu

    def place_monitor(self, *, tee_type: TeeType = TeeType.SGX1) -> Enclave:
        """Schedule the monitor TEE.

        §6.5: the monitor prefers a small integrity-enhanced TEE (SGX1)
        for hardware memory-integrity protection.
        """
        return Enclave.launch(
            self._pick_cpu(),
            tee_type,
            monitor_manifest(),
            {"/mvtee/monitor": MONITOR_CODE},
            enclave_id="monitor",
            epc_bytes=16 << 20,
        )

    def place_variants(
        self, pool: VariantPool, config: MvxConfig
    ) -> dict[str, VariantHost]:
        """Schedule one init-variant TEE per selected pool artifact."""
        hosts: dict[str, VariantHost] = {}
        for claim in config.claims:
            for artifact in pool.select(
                claim.partition_index, claim.num_variants, seed=claim.selection_seed
            ):
                hosts[artifact.variant_id] = VariantHost.place(artifact, self._pick_cpu())
        return hosts


@dataclass
class ModelOwner:
    """The remote party that owns the model and drives deployment."""

    verifier: Verifier
    provisioned: list[bytes] = field(default_factory=list)

    def attest_monitor(self, monitor: Monitor, nonce: bytes) -> None:
        """Challenge-response attestation of the monitor TEE (step 2)."""
        quote = monitor.quote(nonce)
        try:
            self.verifier.verify(quote, expected_report_data=nonce)
        except AttestationError as exc:
            raise MonitorError(f"monitor attestation failed: {exc}") from exc

    def deploy(
        self,
        monitor: Monitor,
        orchestrator: Orchestrator,
        config: MvxConfig,
    ) -> dict[str, VariantHost]:
        """Run the full initialization workflow; returns the placed hosts."""
        nonce = fresh_nonce()
        self.attest_monitor(monitor, nonce)
        echo = monitor.provision_config(config, nonce)
        hosts = orchestrator.place_variants(monitor.pool, config)
        monitor.initialize_variants(hosts)
        # Step 8: initialization results + nonce back to the owner.
        if echo != nonce:
            raise MonitorError("nonce echo mismatch: possible replayed session")
        self.provisioned.append(nonce)
        monitor.ledger.verify_chain()
        return hosts


@dataclass(frozen=True)
class CombinedAttestation:
    """The user-facing attestation of a whole deployment.

    §4.3: "users perform a combined attestation of all TEEs through the
    monitor".  The monitor's quote binds the challenge nonce *and* the
    head of its binding ledger, so the verified ledger enumerates every
    variant TEE (id, enclave, measurement) transitively attested by the
    monitor at bootstrap/update time.
    """

    monitor_measurement: str
    ledger_head: str
    variants: tuple[tuple[str, str, str], ...]  # (variant_id, enclave_id, measurement)

    def variant_ids(self) -> list[str]:
        """Ids of all currently-bound variants."""
        return [v[0] for v in self.variants]


def combined_attestation(
    monitor: Monitor, verifier: Verifier, nonce: bytes
) -> CombinedAttestation:
    """User-side combined attestation through the monitor.

    Verifies the monitor's quote over (nonce || ledger head), checks the
    ledger chain, and returns the attested variant inventory.  Raises
    :class:`MonitorError` on any mismatch.
    """
    ledger = monitor.ledger
    ledger.verify_chain()
    head = ledger.entries[-1].entry_hash() if ledger.entries else "0" * 64
    binding = nonce + bytes.fromhex(head)
    quote = monitor.quote(binding)
    try:
        report = verifier.verify(quote, expected_report_data=binding)
    except AttestationError as exc:
        raise MonitorError(f"combined attestation failed: {exc}") from exc
    active = ledger.active_bindings()
    return CombinedAttestation(
        monitor_measurement=report.measurement,
        ledger_head=head,
        variants=tuple(
            (vid, b.enclave_id, b.measurement) for vid, b in sorted(active.items())
        ),
    )


def bootstrap_deployment(
    pool: VariantPool,
    config: MvxConfig,
    *,
    num_platforms: int = 2,
    transport=None,
) -> tuple[ModelOwner, Monitor, Orchestrator, dict[str, VariantHost]]:
    """One-call deployment: platforms, orchestrator, monitor, variants.

    ``transport`` selects the record path (None = co-located direct
    handover; a :class:`repro.mvx.transport.FabricTransport` = records
    through the untrusted network).  Returns (owner, monitor,
    orchestrator, hosts) fully initialized and ready for
    :func:`repro.mvx.scheduler.run`.
    """
    cpus = [SimulatedCpu(f"platform-{i}") for i in range(num_platforms)]
    orchestrator = Orchestrator(cpus=cpus)
    monitor_enclave = orchestrator.place_monitor()

    verifier = Verifier()
    for cpu in cpus:
        verifier.register_platform(cpu)
    verifier.trust_measurement(monitor_enclave.measurement)

    monitor = Monitor(
        enclave=monitor_enclave, verifier=verifier, pool=pool, transport=transport
    )
    owner = ModelOwner(verifier=verifier)
    hosts = owner.deploy(monitor, orchestrator, config)
    return owner, monitor, orchestrator, hosts
