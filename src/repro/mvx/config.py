"""The MVX configuration provisioned to the monitor (Figure 6 step 3).

Specifies "the partition set (number and sizes of partitions) and the
variant claims (type and number of variants per partition)" plus the
selective-MVX, voting and execution-mode knobs of §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MvxConfig", "PartitionClaim"]


@dataclass(frozen=True)
class PartitionClaim:
    """Variant claim for one partition (horizontal scaling knob)."""

    partition_index: int
    num_variants: int = 1
    selection_seed: int | None = None  # None = deterministic pool order

    def __post_init__(self) -> None:
        if self.num_variants < 1:
            raise ValueError("num_variants must be >= 1")

    @property
    def mvx_enabled(self) -> bool:
        """Slow-path trigger: MVX is active when more than one variant runs."""
        return self.num_variants > 1

    def to_json(self) -> dict:
        """JSON form."""
        return {
            "partition_index": self.partition_index,
            "num_variants": self.num_variants,
            "selection_seed": self.selection_seed,
        }

    @classmethod
    def from_json(cls, data: dict) -> "PartitionClaim":
        """Inverse of :meth:`to_json`."""
        return cls(
            partition_index=int(data["partition_index"]),
            num_variants=int(data.get("num_variants", 1)),
            selection_seed=data.get("selection_seed"),
        )


@dataclass(frozen=True)
class MvxConfig:
    """The full runtime MVX plan maintained by the monitor."""

    claims: tuple[PartitionClaim, ...]
    voting: str = "unanimous"  # "unanimous" | "majority" | "plurality"
    execution_mode: str = "sync"  # "sync" | "async"
    path_mode: str = "hybrid"  # "fast" | "slow" | "hybrid"
    consistency: dict = field(default_factory=dict)  # ConsistencyPolicy kwargs

    def __post_init__(self) -> None:
        indices = [c.partition_index for c in self.claims]
        if sorted(indices) != list(range(len(indices))):
            raise ValueError(f"claims must cover partitions 0..n-1 exactly once, got {indices}")
        if self.voting not in ("unanimous", "majority", "plurality"):
            raise ValueError(f"unknown voting policy {self.voting!r}")
        if self.execution_mode not in ("sync", "async"):
            raise ValueError(f"unknown execution mode {self.execution_mode!r}")
        if self.path_mode not in ("fast", "slow", "hybrid"):
            raise ValueError(f"unknown path mode {self.path_mode!r}")

    @classmethod
    def uniform(
        cls,
        num_partitions: int,
        num_variants: int = 1,
        **kwargs,
    ) -> "MvxConfig":
        """Same claim on every partition (full MVX when num_variants > 1)."""
        return cls(
            claims=tuple(
                PartitionClaim(partition_index=i, num_variants=num_variants)
                for i in range(num_partitions)
            ),
            **kwargs,
        )

    @classmethod
    def selective(
        cls,
        num_partitions: int,
        mvx_partitions: dict[int, int],
        **kwargs,
    ) -> "MvxConfig":
        """Selective MVX: ``mvx_partitions`` maps index -> variant count."""
        return cls(
            claims=tuple(
                PartitionClaim(
                    partition_index=i, num_variants=mvx_partitions.get(i, 1)
                )
                for i in range(num_partitions)
            ),
            **kwargs,
        )

    def claim(self, index: int) -> PartitionClaim:
        """The claim for one partition."""
        return self.claims[index]

    def uses_slow_path(self, index: int) -> bool:
        """Hybrid-mode slow/fast decision for a partition (Figure 7)."""
        if self.path_mode == "slow":
            return True
        if self.path_mode == "fast":
            return False
        return self.claim(index).mvx_enabled

    def mvx_partition_indices(self) -> list[int]:
        """Partitions with MVX enabled (>= 2 variants)."""
        return [c.partition_index for c in self.claims if c.mvx_enabled]

    def total_variants(self) -> int:
        """Total variant TEEs the plan requires."""
        return sum(c.num_variants for c in self.claims)

    def to_json(self) -> dict:
        """JSON form (what the model owner provisions)."""
        return {
            "claims": [c.to_json() for c in self.claims],
            "voting": self.voting,
            "execution_mode": self.execution_mode,
            "path_mode": self.path_mode,
            "consistency": dict(self.consistency),
        }

    @classmethod
    def from_json(cls, data: dict) -> "MvxConfig":
        """Inverse of :meth:`to_json`."""
        return cls(
            claims=tuple(PartitionClaim.from_json(c) for c in data["claims"]),
            voting=data.get("voting", "unanimous"),
            execution_mode=data.get("execution_mode", "sync"),
            path_mode=data.get("path_mode", "hybrid"),
            consistency=dict(data.get("consistency", {})),
        )
