"""Criteria-based consistency checks between variant outputs (§5.2).

"We implement configurable checking based on criteria such as cosine
similarity, mean squared error, maximum absolute difference, and
np.testing.assert_allclose (with predefined absolute and relative
tolerances)" -- all four are here, combined by a :class:`ConsistencyPolicy`
whose thresholds can be tuned per deployment to "balance the precision
and recall of attack identification" against benign variant noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ConsistencyPolicy",
    "ConsistencyReport",
    "cosine_similarity",
    "max_abs_diff",
    "mean_squared_error",
]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two tensors, flattened; 1.0 = identical direction."""
    flat_a = a.astype(np.float64).reshape(-1)
    flat_b = b.astype(np.float64).reshape(-1)
    norm = float(np.linalg.norm(flat_a) * np.linalg.norm(flat_b))
    if norm == 0.0:
        return 1.0 if np.allclose(flat_a, flat_b) else 0.0
    return float(np.dot(flat_a, flat_b) / norm)


def mean_squared_error(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared difference of two tensors."""
    diff = a.astype(np.float64) - b.astype(np.float64)
    return float(np.mean(diff * diff))


def max_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Largest absolute elementwise difference."""
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


@dataclass(frozen=True)
class ConsistencyReport:
    """Per-tensor metrics and the verdict of one pairwise check."""

    consistent: bool
    tensor_name: str
    cosine: float
    mse: float
    max_abs: float
    allclose: bool
    reason: str = ""


@dataclass(frozen=True)
class ConsistencyPolicy:
    """Thresholded combination of the four §5.2 criteria.

    A pair of outputs is consistent when *all* enabled criteria pass.
    Defaults tolerate the numeric noise of diversified runtimes (different
    accumulation orders) while flagging bit-flip-scale corruption.
    """

    min_cosine: float = 0.999
    #: MSE and max-abs thresholds are *scale-relative*: the deviation is
    #: divided by max(1, max|a|, max|b|) before comparison, so benign
    #: runtime noise on large-magnitude activations does not false-alarm
    #: (the precision/recall balance §4.3 describes).
    max_mse: float = 1e-4
    max_abs: float = 1e-2
    rtol: float = 1e-2
    atol: float = 1e-3
    use_allclose: bool = True

    @classmethod
    def from_kwargs(cls, kwargs: dict) -> "ConsistencyPolicy":
        """Build from an MvxConfig's consistency dict."""
        return cls(**kwargs)

    def check_tensor(self, name: str, a: np.ndarray, b: np.ndarray) -> ConsistencyReport:
        """Compare one tensor pair under all criteria."""
        if a.shape != b.shape:
            return ConsistencyReport(
                consistent=False,
                tensor_name=name,
                cosine=0.0,
                mse=float("inf"),
                max_abs=float("inf"),
                allclose=False,
                reason=f"shape mismatch {a.shape} vs {b.shape}",
            )
        if not (np.all(np.isfinite(a)) and np.all(np.isfinite(b))):
            finite = bool(np.array_equal(np.isfinite(a), np.isfinite(b)))
            return ConsistencyReport(
                consistent=False,
                tensor_name=name,
                cosine=0.0,
                mse=float("inf"),
                max_abs=float("inf"),
                allclose=False,
                reason="non-finite values" + ("" if finite else " (mismatched positions)"),
            )
        cosine = cosine_similarity(a, b)
        mse = mean_squared_error(a, b)
        abs_diff = max_abs_diff(a, b)
        scale = max(1.0, float(np.max(np.abs(a))), float(np.max(np.abs(b))))
        # np.allclose's rtol term reads only its second argument, which
        # would make the verdict depend on comparison order; peer variants
        # have no privileged side, so take the elementwise max magnitude.
        wide_a = a.astype(np.float64)
        wide_b = b.astype(np.float64)
        tolerance = self.atol * scale + self.rtol * np.maximum(
            np.abs(wide_a), np.abs(wide_b)
        )
        close = bool(np.all(np.abs(wide_a - wide_b) <= tolerance))
        failures = []
        if cosine < self.min_cosine:
            failures.append(f"cosine {cosine:.6f} < {self.min_cosine}")
        if mse / scale**2 > self.max_mse:
            failures.append(f"relative mse {mse / scale**2:.3e} > {self.max_mse}")
        if abs_diff / scale > self.max_abs:
            failures.append(f"relative max_abs {abs_diff / scale:.3e} > {self.max_abs}")
        if self.use_allclose and not close:
            failures.append(f"allclose(rtol={self.rtol}, atol={self.atol}*scale) failed")
        return ConsistencyReport(
            consistent=not failures,
            tensor_name=name,
            cosine=cosine,
            mse=mse,
            max_abs=abs_diff,
            allclose=close,
            reason="; ".join(failures),
        )

    def check_outputs(
        self, a: dict[str, np.ndarray], b: dict[str, np.ndarray]
    ) -> list[ConsistencyReport]:
        """Compare two variant output dicts tensor by tensor."""
        if set(a) != set(b):
            return [
                ConsistencyReport(
                    consistent=False,
                    tensor_name="<keys>",
                    cosine=0.0,
                    mse=float("inf"),
                    max_abs=float("inf"),
                    allclose=False,
                    reason=f"output sets differ: {sorted(a)} vs {sorted(b)}",
                )
            ]
        return [self.check_tensor(name, a[name], b[name]) for name in sorted(a)]

    def consistent(self, a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
        """True when every tensor pair passes."""
        return all(r.consistent for r in self.check_outputs(a, b))
