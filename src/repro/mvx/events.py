"""Divergence/crash events and the monitor's response actions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.mvx.consistency import ConsistencyReport

__all__ = ["CrashEvent", "DivergenceEvent", "ResponseAction"]


class ResponseAction(enum.Enum):
    """Protective measures the monitor can take after a detection."""

    HALT = "halt"  # stop the inference pipeline entirely
    DROP_VARIANT = "drop-variant"  # terminate the dissenting variant, continue
    REPLACE_VARIANT = "replace-variant"  # partial update from the pool
    RESTART_BATCH = "restart-batch"  # re-run the batch on surviving variants


@dataclass(frozen=True)
class DivergenceEvent:
    """A checkpoint-level inconsistency between variants."""

    batch_id: int
    partition_index: int
    dissenting_variants: tuple[str, ...]
    agreeing_variants: tuple[str, ...]
    reports: tuple[ConsistencyReport, ...] = field(default=())
    detected_async: bool = False

    def summary(self) -> str:
        """One-line description for logs."""
        mode = "async cross-validation" if self.detected_async else "checkpoint"
        return (
            f"batch {self.batch_id}, partition {self.partition_index}: "
            f"{mode} divergence; dissent={list(self.dissenting_variants)}, "
            f"agree={list(self.agreeing_variants)}"
        )


@dataclass(frozen=True)
class CrashEvent:
    """A variant died (RuntimeCrash / missing response) during a stage."""

    batch_id: int
    partition_index: int
    variant_id: str
    error: str
