"""The MVTEE monitor: security manager of the deployment (§4.3).

The monitor runs in its own TEE (cross-process user-space design) and
owns: the provisioned MVX configuration, variant attestation and key
distribution, the binding ledger, input distribution, checkpoint
synchronization with voting, output replication, and the protective
response to divergences and crashes.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.crypto.keys import KeyManager
from repro.mvx.binding import BindingLedger
from repro.mvx.config import MvxConfig
from repro.mvx.consistency import ConsistencyPolicy
from repro.mvx.events import CrashEvent, DivergenceEvent, ResponseAction
from repro.mvx.variant_host import VariantHost, VariantUnavailable
from repro.mvx.voting import VariantOutput, VoteResult, vote
from repro.mvx.wire import decode_message, encode_message
from repro.observability.forensics import (
    IncidentReport,
    IncidentStore,
    build_incident_report,
)
from repro.observability.metrics import MetricsRegistry, get_global_registry
from repro.observability.recorder import (
    KIND_CHECKPOINT,
    KIND_CRASH,
    KIND_DIVERGENCE,
    KIND_RESPONSE,
    KIND_VARIANT_REPLACED,
    FlightRecorder,
)
from repro.observability.tracing import NullTracer, Tracer
from repro.partition.partition import PartitionSet
from repro.mvx.transport import Transport
from repro.tee.attestation import AttestationError, Verifier
from repro.tee.channel import ChannelError, SecureChannel, establish_channel
from repro.tee.enclave import Enclave
from repro.variants.pool import VariantPool

__all__ = ["Monitor", "MonitorError", "VariantConnection"]


class MonitorError(Exception):
    """Raised on protocol violations or unrecoverable detection outcomes."""


@dataclass
class VariantConnection:
    """A bound, attested variant: channel + transport route + metadata."""

    variant_id: str
    partition_index: int
    channel: SecureChannel
    host: VariantHost
    measurement: str
    transport: "Transport | None" = None
    #: Serializes round trips: the RA-TLS channel is strictly
    #: sequence-numbered, so protect -> exchange -> open must never
    #: interleave across threads (the serving engine overlaps batches,
    #: and two batches may target the same variant concurrently).
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def request(self, msg_type: str, meta: dict, tensors: dict | None = None) -> tuple[str, dict, dict]:
        """Round-trip one protected request to the variant."""
        with self._lock:
            record = self.channel.protect(encode_message(msg_type, meta, tensors))
            if self.transport is not None:
                response = self.transport.exchange(self.variant_id, record)
            else:
                response = self.host.handle_record(record)
            return decode_message(self.channel.open(response))


@dataclass
class Monitor:
    """The monitor TEE."""

    enclave: Enclave
    verifier: Verifier
    pool: VariantPool
    config: MvxConfig | None = None
    response_action: ResponseAction = ResponseAction.HALT
    #: Record transport; None means direct in-process handover.  A
    #: :class:`repro.mvx.transport.FabricTransport` models distributed
    #: deployment across an untrusted network.
    transport: "Transport | None" = None
    #: Dispatch slow-path variant requests concurrently (thread pool).
    #: Functionally identical to serial dispatch; numpy kernels release
    #: the GIL, so replicated variants of a stage genuinely overlap.
    parallel_dispatch: bool = False
    #: Pluggable replica dispatcher: an object with
    #: ``dispatch(monitor, connections, batch_id, feeds) -> list[VariantOutput]``
    #: (e.g. :class:`repro.serving.executor.ParallelStageExecutor`).
    #: Takes precedence over ``parallel_dispatch``; the scheduler
    #: installs a run's dispatcher for the duration of that run.
    dispatcher: object | None = None
    #: Observability sinks: the tracer receives ``variant`` and
    #: ``checkpoint`` spans (nested under the scheduler's ``stage``
    #: spans); detection/recovery counters go to ``metrics`` (None =
    #: the process-wide registry).  The scheduler installs a run's
    #: tracer/registry for the duration of that run.
    tracer: Tracer = field(default_factory=NullTracer)
    metrics: MetricsRegistry | None = None
    #: Tamper-evident audit log (None = not recording).  Installed
    #: deployment-wide by :meth:`MvteeSystem.deploy` or per run via
    #: :class:`~repro.mvx.scheduler.InferenceOptions`.
    recorder: FlightRecorder | None = None
    #: Forensic reports of the most recent detections (always on: the
    #: store is bounded and reports carry digests, not tensors).
    incident_store: IncidentStore = field(default_factory=IncidentStore)
    ledger: BindingLedger = field(default_factory=BindingLedger)
    connections: dict[int, list[VariantConnection]] = field(default_factory=dict)
    events: list[object] = field(default_factory=list)
    _policy: ConsistencyPolicy = field(default_factory=ConsistencyPolicy)
    _provision_nonces: set[bytes] = field(default_factory=set)
    #: Deferred async cross-validation checks: (batch, partition,
    #: accepted outputs, laggard connections, stage feeds).
    _deferred: list[tuple[int, int, dict, list[VariantConnection], dict]] = field(
        default_factory=list
    )
    #: Guards shared mutable detection state (events, deferred checks,
    #: connection lists) against concurrent replica dispatch threads.
    _state_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: Per-thread run-scoped dispatcher override.  The scheduler
    #: installs a run's dispatcher here (not on ``dispatcher``) so
    #: overlapping runs on different engine worker threads each see
    #: their own per-batch deadline view.
    _tls: threading.local = field(default_factory=threading.local, repr=False)
    #: Refcounted install/restore of run-scoped sinks (config, tracer,
    #: metrics, recorder): the first concurrent run installs, the last
    #: restores.  Managed by :func:`repro.mvx.scheduler.run`.
    _run_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _run_refs: int = field(default=0, repr=False)
    _run_saved: tuple | None = field(default=None, repr=False)

    @property
    def partition_set(self) -> PartitionSet:
        """The partition set underlying the pool."""
        return self.pool.partition_set

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The registry detection/recovery counters are recorded into."""
        return self.metrics if self.metrics is not None else get_global_registry()

    def incidents(self, kind: str | None = None) -> list[IncidentReport]:
        """Forensic reports of recent detections, oldest first."""
        return self.incident_store.incidents(kind)

    def _audit(self, kind: str, **data) -> None:
        """Append one event to the flight recorder, if one is installed."""
        if self.recorder is not None:
            self.recorder.record(kind, **data)

    def _capture_incident(self, report: IncidentReport) -> IncidentReport:
        """Store one incident and surface it in metrics + audit log."""
        self.incident_store.add(report)
        self.metrics_registry.counter(
            "mvtee_incidents_total", "Forensic incident reports captured"
        ).inc(kind=report.kind, partition=report.partition_index)
        self._audit(
            KIND_DIVERGENCE if report.kind == "divergence" else KIND_CRASH,
            incident_id=report.incident_id,
            batch=report.batch_id,
            partition=report.partition_index,
            suspected=list(report.suspected_culprits),
            agreeing=list(report.agreeing_variants),
            max_abs_error=report.max_abs_error,
            response=report.response_action,
            trace_id=report.trace_id,
            error=report.error,
        )
        return report

    # ------------------------------------------------------------------
    # Provisioning (Figure 6 step 3)
    # ------------------------------------------------------------------

    def provision_config(self, config: MvxConfig, nonce: bytes) -> bytes:
        """Accept an MVX configuration from the attested model owner.

        The nonce defends replay: re-provisioning with a seen nonce is
        rejected.  Returns the nonce echo the owner verifies in step 8.
        """
        if nonce in self._provision_nonces:
            raise MonitorError("replayed provisioning nonce rejected")
        if len(config.claims) != len(self.partition_set):
            raise MonitorError(
                f"config covers {len(config.claims)} partitions, "
                f"deployment has {len(self.partition_set)}"
            )
        self._provision_nonces.add(nonce)
        self.config = config
        self._install_policies(config)
        return nonce

    def _install_policies(self, config: MvxConfig) -> None:
        """Build the default + per-partition consistency policies.

        §4.3: thresholds are adjusted "based on variant noise levels to
        balance the precision and recall of attack identification" --
        a partition running heavily diversified (noisier) variants can
        carry looser thresholds than the rest.  The config's
        ``consistency`` dict takes the default kwargs plus an optional
        ``per_partition`` map of index -> kwarg overrides.
        """
        base = {k: v for k, v in config.consistency.items() if k != "per_partition"}
        self._policy = ConsistencyPolicy.from_kwargs(base)
        self._partition_policies = {}
        for index, overrides in config.consistency.get("per_partition", {}).items():
            merged = dict(base)
            merged.update(overrides)
            self._partition_policies[int(index)] = ConsistencyPolicy.from_kwargs(merged)

    def policy_for(self, index: int) -> ConsistencyPolicy:
        """The consistency policy governing one partition's checkpoint."""
        return getattr(self, "_partition_policies", {}).get(index, self._policy)

    # ------------------------------------------------------------------
    # Variant initialization (Figure 6 steps 4-7)
    # ------------------------------------------------------------------

    def initialize_variants(
        self, hosts: dict[str, VariantHost], *, event: str = "init"
    ) -> None:
        """Attest, key and bind every selected variant.

        ``hosts`` maps variant_id -> placed host (the orchestrator started
        them from the public init-variant images).  For each claim the
        monitor selects variants from the pool, establishes an RA-TLS
        channel, distributes the variant-specific key, and verifies the
        second-stage installation evidence before binding.
        """
        if self.config is None:
            raise MonitorError("no MVX configuration provisioned")
        for claim in self.config.claims:
            selected = self.pool.select(
                claim.partition_index, claim.num_variants, seed=claim.selection_seed
            )
            for artifact in selected:
                host = hosts.get(artifact.variant_id)
                if host is None:
                    raise MonitorError(
                        f"orchestrator did not place variant {artifact.variant_id!r}"
                    )
                self._bootstrap_variant(claim.partition_index, artifact, host, event)

    def _bootstrap_variant(self, partition_index, artifact, host, event) -> None:
        # Fork-attack prevention (§6.5): a variant identity may be bound
        # to at most one live TEE; a second instance of the same variant
        # is rejected before any key leaves the monitor.
        active = self.ledger.active_bindings()
        if artifact.variant_id in active:
            raise MonitorError(
                f"variant {artifact.variant_id!r} is already bound to enclave "
                f"{active[artifact.variant_id].enclave_id!r} (fork attack?)"
            )
        # The init-variant's measurement must be trusted before any key
        # leaves the monitor.
        self.verifier.trust_measurement(host.enclave.measurement)
        channel_id = f"mon-{artifact.variant_id}-{secrets.token_hex(3)}"
        try:
            monitor_end, variant_end = establish_channel(
                initiator_quote_fn=lambda rd: self.quote(rd),
                responder_quote_fn=host.quote,
                verifier=self.verifier,
                channel_id=channel_id,
            )
        except ChannelError as exc:
            raise MonitorError(f"RA-TLS with {artifact.variant_id} failed: {exc}") from exc
        host.attach_channel(variant_end)
        if self.transport is not None:
            self.transport.register(host)
        connection = VariantConnection(
            variant_id=artifact.variant_id,
            partition_index=partition_index,
            channel=monitor_end,
            host=host,
            measurement=host.enclave.measurement,
            transport=self.transport,
        )
        msg_type, meta, _ = connection.request(
            "install-key",
            {"key_id": artifact.key_record.key_id, "kdk": artifact.key_record.key.hex()},
        )
        if msg_type != "init-done":
            raise MonitorError(
                f"variant {artifact.variant_id} failed init: {meta.get('reason')}"
            )
        # Verify the installation evidence: a fresh quote whose report
        # data binds the post-exec extension register.
        from repro.tee.attestation import Quote

        evidence = Quote.from_bytes(bytes.fromhex(meta["evidence"]))
        try:
            report = self.verifier.verify(
                evidence,
                expected_report_data=meta["extension_register"].encode(),
                require_trusted_measurement=False,
            )
        except AttestationError as exc:
            raise MonitorError(
                f"variant {artifact.variant_id} installation evidence invalid: {exc}"
            ) from exc
        if report.enclave_id != host.enclave.enclave_id:
            raise MonitorError("installation evidence from wrong enclave")
        self.ledger.append(
            variant_id=artifact.variant_id,
            partition_index=partition_index,
            enclave_id=host.enclave.enclave_id,
            measurement=host.enclave.measurement,
            channel_id=channel_id,
            event=event,
        )
        self.connections.setdefault(partition_index, []).append(connection)
        if event != "init":
            # Replacements/scale-ups change the variant set mid-flight:
            # audit-worthy in a way initial provisioning is not.
            self._audit(
                KIND_VARIANT_REPLACED,
                variant=artifact.variant_id,
                partition=partition_index,
                enclave=host.enclave.enclave_id,
                event=event,
            )

    def bind_variant(
        self, partition_index: int, artifact, host: VariantHost, *, event: str = "restart"
    ) -> VariantConnection:
        """Attest, key and bind one replacement variant.

        The cluster supervisor's restart path: after a worker process
        dies, its variant slot is refilled by re-running the full
        Figure-6 bootstrap (fresh enclave, fresh RA-TLS channel, fresh
        installation evidence) for the *same* artifact.  The old binding
        must be retired first -- fork-attack prevention rejects a second
        live binding of one variant id.  Returns the new connection.
        """
        self._bootstrap_variant(partition_index, artifact, host, event)
        return self.connections[partition_index][-1]

    def report_worker_crash(
        self, variant_id: str, *, error: str, batch_id: int = -1
    ) -> None:
        """Record an out-of-band variant process death as a crash.

        The supervisor calls this when a worker dies *between* requests
        (heartbeat detection): no in-flight round trip will surface the
        failure, but the deployment still lost a TEE.  Marks the host
        crashed, emits the crash event/metric and captures the forensic
        incident (the error string carries the worker pid/exit code).
        ``batch_id=-1`` marks a detection outside any batch.
        """
        for index, connections in self.connections.items():
            for connection in connections:
                if connection.variant_id != variant_id:
                    continue
                if not connection.host.crashed:
                    connection.host.crash_reason = str(error)
                    connection.host.crashed = True
                    connection.host.enclave.terminate()
                self._record_crash(batch_id, index, connection, error)
                return
        # Variant already dropped from the connection table: keep the
        # forensic trail anyway.
        self._capture_incident(
            build_incident_report(
                incident_id=self.incident_store.new_id(),
                kind="crash",
                batch_id=batch_id,
                partition_index=-1,
                suspected_culprits=(variant_id,),
                agreeing_variants=(),
                response_action=self.response_action.value,
                trace_id=self.tracer.trace_id(),
                span_id=self.tracer.current_span_id(),
                error=str(error),
            )
        )

    def quote(self, report_data: bytes):
        """The monitor's own attestation (used by RA-TLS and the owner)."""
        from repro.tee.attestation import make_quote

        return make_quote(self.enclave, report_data)

    # ------------------------------------------------------------------
    # Checkpoint execution
    # ------------------------------------------------------------------

    def stage_connections(self, index: int) -> list[VariantConnection]:
        """Live connections of one partition."""
        return [c for c in self.connections.get(index, []) if not c.host.crashed]

    def execute_stage(
        self,
        batch_id: int,
        index: int,
        feeds: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Run one pipeline stage for one batch through its variants.

        Fast path: single variant, output falls through.  Slow path:
        replicate the input to all variants, synchronize at the
        checkpoint, evaluate consistency, vote, respond to dissent.
        Async mode: proceed on majority quorum, cross-validate laggards
        at the next checkpoint.
        """
        if self.config is None:
            raise MonitorError("no MVX configuration provisioned")
        self._resolve_deferred(upto_partition=index, batch_id=batch_id)
        connections = self.stage_connections(index)
        if not connections:
            raise MonitorError(f"no live variants remain for partition {index}")
        if not self.config.uses_slow_path(index) or len(connections) == 1:
            return self._fast_path(batch_id, index, connections, feeds)
        if self.config.execution_mode == "async" and len(connections) >= 3:
            return self._slow_path_async(batch_id, index, connections, feeds)
        return self._slow_path_sync(batch_id, index, connections, feeds)

    def _active_dispatcher(self):
        """The dispatcher in effect on this thread.

        A run-scoped dispatcher (installed thread-locally by the
        scheduler so overlapping runs carry independent deadlines)
        shadows the deployment-wide ``dispatcher`` field.
        """
        override = getattr(self._tls, "dispatcher", None)
        return override if override is not None else self.dispatcher

    def _fast_path(self, batch_id, index, connections, feeds):
        connection = connections[0]
        dispatcher = self._active_dispatcher()
        if dispatcher is not None:
            # Route single-replica stages through the installed
            # dispatcher too: its deadline enforcement and retry-once
            # semantics must cover the fast path, or a 1-replica stage
            # could run unbounded past the batch deadline.
            result = dispatcher.dispatch(self, [connection], batch_id, feeds)[0]
        else:
            result = self._request_inference(connection, batch_id, feeds)
        if result.outputs is None:
            self._record_crash(batch_id, index, connection, result.error)
            raise MonitorError(
                f"fast-path variant {connection.variant_id} failed: {result.error}"
            )
        return result.outputs

    def _slow_path_sync(self, batch_id, index, connections, feeds):
        outputs = self._dispatch(connections, batch_id, feeds)
        return self._evaluate_checkpoint(batch_id, index, connections, outputs, feeds)

    def _dispatch(self, connections, batch_id, feeds) -> list[VariantOutput]:
        """Send one request to every connection, optionally in parallel."""
        dispatcher = self._active_dispatcher()
        if dispatcher is not None:
            return dispatcher.dispatch(self, connections, batch_id, feeds)
        if self.parallel_dispatch and len(connections) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(connections)) as pool:
                return list(
                    pool.map(
                        lambda c: self._request_inference(c, batch_id, feeds),
                        connections,
                    )
                )
        return [self._request_inference(c, batch_id, feeds) for c in connections]

    def _slow_path_async(self, batch_id, index, connections, feeds):
        # Query in ascending simulated latency: the quorum of fastest
        # variants decides; laggards are validated at the next checkpoint.
        ordered = sorted(connections, key=lambda c: c.host.simulated_latency)
        quorum = len(connections) // 2 + 1
        quorum_conns = ordered[:quorum]
        laggards = ordered[quorum:]
        early = [self._request_inference(c, batch_id, feeds) for c in quorum_conns]
        with self.tracer.span(
            "checkpoint", partition=index, batch=batch_id, mode="async-quorum"
        ) as span:
            result = vote(early, policy=self.policy_for(index), strategy="majority")
            span.set_attribute("passed", result.passed)
        self.metrics_registry.counter(
            "mvtee_checkpoints_total", "Checkpoint consistency evaluations"
        ).inc(partition=index, mode="async-quorum")
        self._audit(
            KIND_CHECKPOINT,
            batch=batch_id,
            partition=index,
            mode="async-quorum",
            passed=result.passed,
            dissenting=list(result.dissenting),
            crashed=list(result.crashed),
        )
        if not result.passed:
            # No early consensus: fall back to full synchronization.
            late = [self._request_inference(c, batch_id, feeds) for c in laggards]
            return self._evaluate_checkpoint(
                batch_id, index, quorum_conns + laggards, early + late, feeds
            )
        self._handle_vote_outcome(
            batch_id, index, quorum_conns, result, async_stage=True, outputs=early
        )
        if laggards:
            with self._state_lock:
                self._deferred.append(
                    (batch_id, index, result.accepted, laggards, feeds)
                )
        return result.accepted

    def _resolve_deferred(self, *, upto_partition: int, batch_id: int) -> None:
        """Cross-validate laggard results before the pipeline advances.

        "When results from delayed variants are received, and if any
        dissent is noted, we react to the execution at the earliest next
        checkpoint."
        """
        if not self._deferred:
            return
        with self._state_lock:
            pending = self._deferred
            self._deferred = []
        for d_batch, d_index, accepted, laggards, feeds in pending:
            with self.tracer.span(
                "checkpoint",
                partition=d_index,
                batch=d_batch,
                mode="deferred",
                laggards=len(laggards),
            ):
                for connection in laggards:
                    result = self._request_inference(connection, d_batch, feeds)
                    if result.outputs is None:
                        self._record_crash(d_batch, d_index, connection, result.error)
                        self._respond(connection, d_batch, d_index)
                        continue
                    if not self.policy_for(d_index).consistent(accepted, result.outputs):
                        event = DivergenceEvent(
                            batch_id=d_batch,
                            partition_index=d_index,
                            dissenting_variants=(connection.variant_id,),
                            agreeing_variants=(),
                            detected_async=True,
                        )
                        with self._state_lock:
                            self.events.append(event)
                        self._record_divergence_metric(d_index)
                        self._capture_incident(
                            build_incident_report(
                                incident_id=self.incident_store.new_id(),
                                kind="divergence",
                                batch_id=d_batch,
                                partition_index=d_index,
                                suspected_culprits=(connection.variant_id,),
                                agreeing_variants=(),
                                outputs_by_variant={
                                    connection.variant_id: result.outputs
                                },
                                reference_outputs=accepted,
                                response_action=self.response_action.value,
                                detected_async=True,
                                trace_id=self.tracer.trace_id(),
                                span_id=self.tracer.current_span_id(),
                            )
                        )
                        self._respond(connection, d_batch, d_index)
            self.metrics_registry.counter(
                "mvtee_checkpoints_total", "Checkpoint consistency evaluations"
            ).inc(partition=d_index, mode="deferred")
            self._audit(
                KIND_CHECKPOINT,
                batch=d_batch,
                partition=d_index,
                mode="deferred",
                laggards=len(laggards),
            )

    def request_inference(
        self, connection: VariantConnection, batch_id: int, feeds: dict
    ) -> VariantOutput:
        """One monitor->variant round trip (spans + metrics included).

        The building block pluggable dispatchers compose: safe to call
        from worker threads -- the span, counter and detection-state
        paths it touches are lock- or GIL-protected.
        """
        return self._request_inference(connection, batch_id, feeds)

    def _request_inference(
        self, connection: VariantConnection, batch_id: int, feeds: dict
    ) -> VariantOutput:
        with self.tracer.span(
            "variant",
            variant=connection.variant_id,
            partition=connection.partition_index,
            batch=batch_id,
        ) as span:
            result = self._request_inference_unobserved(connection, batch_id, feeds)
            span.set_attribute("bytes_protected", connection.channel.bytes_protected)
            if result.outputs is None:
                span.record_error(result.error)
        self.metrics_registry.counter(
            "mvtee_variant_requests_total", "Monitor->variant inference round trips"
        ).inc(
            partition=connection.partition_index,
            outcome="ok" if result.outputs is not None else "error",
        )
        return result

    def _request_inference_unobserved(
        self, connection: VariantConnection, batch_id: int, feeds: dict
    ) -> VariantOutput:
        try:
            msg_type, meta, tensors = connection.request(
                "infer", {"batch_id": batch_id}, feeds
            )
        except (VariantUnavailable, ChannelError) as exc:
            return VariantOutput(
                variant_id=connection.variant_id, outputs=None, error=str(exc)
            )
        if msg_type != "result":
            return VariantOutput(
                variant_id=connection.variant_id,
                outputs=None,
                error=str(meta.get("reason", msg_type)),
            )
        return VariantOutput(variant_id=connection.variant_id, outputs=tensors)

    def _evaluate_checkpoint(self, batch_id, index, connections, outputs, feeds) -> dict:
        with self.tracer.span(
            "checkpoint",
            partition=index,
            batch=batch_id,
            mode="sync",
            voting=self.config.voting,
        ) as span:
            result = vote(outputs, policy=self.policy_for(index), strategy=self.config.voting)
            span.set_attribute("passed", result.passed)
            if result.dissenting:
                span.set_attribute("dissenting", list(result.dissenting))
        self.metrics_registry.counter(
            "mvtee_checkpoints_total", "Checkpoint consistency evaluations"
        ).inc(partition=index, mode="sync")
        self._audit(
            KIND_CHECKPOINT,
            batch=batch_id,
            partition=index,
            mode="sync",
            passed=result.passed,
            dissenting=list(result.dissenting),
            crashed=list(result.crashed),
        )
        self._handle_vote_outcome(
            batch_id, index, connections, result, async_stage=False, outputs=outputs
        )
        if result.accepted is not None:
            return result.accepted
        if self.response_action is ResponseAction.RESTART_BATCH and result.agreeing:
            # Re-execute the stage on the surviving variants and re-vote:
            # the paper's "restart from a saved state" response.  The
            # dissenters were dropped by _handle_vote_outcome above.
            survivors = self.stage_connections(index)
            if survivors:
                retries = [
                    self._request_inference(c, batch_id, feeds) for c in survivors
                ]
                retry = vote(retries, policy=self.policy_for(index), strategy=self.config.voting)
                if retry.accepted is not None:
                    return retry.accepted
        elif self.response_action is not ResponseAction.HALT and result.agreeing:
            # Dissenters/crashes were dropped (or scheduled for replacement);
            # the surviving agreement cluster's output stands.
            by_id = {o.variant_id: o for o in outputs}
            return by_id[result.agreeing[0]].outputs
        raise MonitorError(
            f"checkpoint vote failed at batch {batch_id}, partition {index}: "
            f"dissent={list(result.dissenting)}, crashed={list(result.crashed)}"
        )

    def _handle_vote_outcome(
        self,
        batch_id,
        index,
        connections,
        result: VoteResult,
        *,
        async_stage: bool,
        outputs: list[VariantOutput] | None = None,
    ) -> None:
        by_id = {c.variant_id: c for c in connections}
        for variant_id in result.crashed:
            connection = by_id[variant_id]
            self._record_crash(batch_id, index, connection, connection.host.crash_reason)
        if result.dissenting:
            event = DivergenceEvent(
                batch_id=batch_id,
                partition_index=index,
                dissenting_variants=result.dissenting,
                agreeing_variants=result.agreeing,
                reports=result.reports,
                detected_async=async_stage,
            )
            with self._state_lock:
                self.events.append(event)
            self._record_divergence_metric(index)
            self._capture_divergence_incident(
                batch_id, index, result, outputs, async_stage=async_stage
            )
            for variant_id in result.dissenting:
                self._respond(by_id[variant_id], batch_id, index)
        for variant_id in result.crashed:
            self._respond(by_id[variant_id], batch_id, index)

    def _capture_divergence_incident(
        self,
        batch_id,
        index,
        result: VoteResult,
        outputs: list[VariantOutput] | None,
        *,
        async_stage: bool,
    ) -> None:
        """Build the forensic report for one dissenting checkpoint vote."""
        outputs_by_variant = {
            o.variant_id: o.outputs for o in (outputs or []) if o.outputs is not None
        }
        reference = None
        if result.agreeing:
            reference = outputs_by_variant.get(result.agreeing[0])
        self._capture_incident(
            build_incident_report(
                incident_id=self.incident_store.new_id(),
                kind="divergence",
                batch_id=batch_id,
                partition_index=index,
                suspected_culprits=result.dissenting,
                agreeing_variants=result.agreeing,
                outputs_by_variant=outputs_by_variant,
                reference_outputs=reference,
                consistency_reports=result.reports,
                response_action=self.response_action.value,
                detected_async=async_stage,
                trace_id=self.tracer.trace_id(),
                span_id=self.tracer.current_span_id(),
            )
        )

    def _record_divergence_metric(self, index: int) -> None:
        self.metrics_registry.counter(
            "mvtee_divergences_total", "Divergence detections"
        ).inc(partition=index)

    def _record_crash(self, batch_id, index, connection, error) -> None:
        with self._state_lock:
            self.events.append(
                CrashEvent(
                    batch_id=batch_id,
                    partition_index=index,
                    variant_id=connection.variant_id,
                    error=str(error),
                )
            )
        self.metrics_registry.counter(
            "mvtee_crashes_total", "Variant crash detections"
        ).inc(partition=index)
        survivors = [
            c.variant_id
            for c in self.stage_connections(index)
            if c.variant_id != connection.variant_id
        ]
        self._capture_incident(
            build_incident_report(
                incident_id=self.incident_store.new_id(),
                kind="crash",
                batch_id=batch_id,
                partition_index=index,
                suspected_culprits=(connection.variant_id,),
                agreeing_variants=tuple(survivors),
                response_action=self.response_action.value,
                trace_id=self.tracer.trace_id(),
                span_id=self.tracer.current_span_id(),
                error=str(error),
            )
        )

    def _respond(self, connection: VariantConnection, batch_id: int, index: int) -> None:
        """Apply the configured protective measure to a bad variant."""
        self._audit(
            KIND_RESPONSE,
            action=self.response_action.value,
            variant=connection.variant_id,
            batch=batch_id,
            partition=index,
        )
        if self.response_action is ResponseAction.HALT:
            return  # the raised MonitorError at the vote halts execution
        if self.response_action in (
            ResponseAction.DROP_VARIANT,
            ResponseAction.RESTART_BATCH,
            ResponseAction.REPLACE_VARIANT,
        ):
            self.metrics_registry.counter(
                "mvtee_recovery_actions_total", "Protective responses applied"
            ).inc(action=self.response_action.value)
            if not connection.host.crashed:
                connection.host.terminate()
            self.ledger.append(
                variant_id=connection.variant_id,
                partition_index=index,
                enclave_id=connection.host.enclave.enclave_id,
                measurement=connection.measurement,
                channel_id=connection.channel.channel_id,
                event="retire",
            )
            with self._state_lock:
                self.connections[index] = [
                    c
                    for c in self.connections.get(index, [])
                    if c.variant_id != connection.variant_id
                ]

    def retire_variant(self, variant_id: str) -> None:
        """Terminate and unbind one variant (scale-down / operator action)."""
        for index, connections in self.connections.items():
            for connection in connections:
                if connection.variant_id != variant_id:
                    continue
                if not connection.host.crashed:
                    connection.host.terminate()
                self.ledger.append(
                    variant_id=variant_id,
                    partition_index=index,
                    enclave_id=connection.host.enclave.enclave_id,
                    measurement=connection.measurement,
                    channel_id=connection.channel.channel_id,
                    event="retire",
                )
                self.connections[index] = [
                    c for c in connections if c.variant_id != variant_id
                ]
                self._audit(
                    KIND_VARIANT_REPLACED,
                    variant=variant_id,
                    partition=index,
                    enclave=connection.host.enclave.enclave_id,
                    event="retire",
                )
                return
        raise MonitorError(f"no bound variant {variant_id!r} to retire")

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def divergence_events(self) -> list[DivergenceEvent]:
        """All recorded divergence detections."""
        with self._state_lock:
            events = list(self.events)
        return [e for e in events if isinstance(e, DivergenceEvent)]

    def crash_events(self) -> list[CrashEvent]:
        """All recorded variant crashes."""
        with self._state_lock:
            events = list(self.events)
        return [e for e in events if isinstance(e, CrashEvent)]
