"""Monitor state persistence and recovery.

The monitor is the deployment's trust anchor; if its TEE restarts (host
reboot, migration) the deployment must resume *without* weakening any
guarantee.  The monitor seals a snapshot of its security-relevant state
-- the provisioned MVX configuration, consumed provisioning nonces and
the full binding ledger -- into the protected filesystem, guarded by a
monotonic counter so the untrusted host cannot roll the monitor back to
a state with fewer retired variants (§6.5's rollback discussion applies
to the monitor itself).

Recovery re-attests every recorded live variant against its *recorded*
measurement before re-establishing channels: a variant swapped while
the monitor was down fails re-binding.  Keys are never re-distributed
(stage-2 TEEs refuse key installation anyway); only fresh RA-TLS
channels are built.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto.keys import KeyRecord
from repro.crypto.sealed import SealedBlob, seal_bytes, unseal_bytes
from repro.mvx.binding import Binding, BindingLedger
from repro.mvx.config import MvxConfig
from repro.mvx.monitor import Monitor, MonitorError, VariantConnection
from repro.mvx.variant_host import VariantHost
from repro.tee.attestation import AttestationError
from repro.tee.channel import ChannelError, establish_channel
from repro.tee.enclave import Enclave
from repro.tee.filesystem import MonotonicCounterService, RollbackError
from repro.variants.pool import VariantPool

__all__ = ["MonitorStateStore", "recover_monitor", "snapshot_monitor"]

STATE_PATH = "/mvtee/monitor/state.enc"


@dataclass
class MonitorStateStore:
    """Host-side persistence for the monitor's sealed snapshots."""

    key_record: KeyRecord
    counters: MonotonicCounterService
    host_store: dict[str, bytes] | None = None
    _version: int = 0

    def __post_init__(self) -> None:
        if self.host_store is None:
            self.host_store = {}

    def save(self, blob: bytes) -> None:
        """Seal and persist one snapshot, advancing the counter."""
        self._version += 1
        sealed = seal_bytes(self.key_record, STATE_PATH, blob, freshness=self._version)
        self.host_store[STATE_PATH] = sealed.to_bytes()
        self.counters.advance(f"monitor:{STATE_PATH}", self._version)

    def load(self) -> bytes:
        """Load, authenticate and freshness-check the latest snapshot."""
        raw = self.host_store.get(STATE_PATH)
        if raw is None:
            raise MonitorError("no monitor snapshot persisted")
        sealed = SealedBlob.from_bytes(raw)
        expected = self.counters.latest(f"monitor:{STATE_PATH}")
        if sealed.freshness != expected:
            raise RollbackError(
                f"monitor snapshot freshness {sealed.freshness} != counter {expected} "
                "(rollback attack on the monitor state)"
            )
        return unseal_bytes(self.key_record.key, self.key_record.key_id, sealed)


def snapshot_monitor(monitor: Monitor, store: MonitorStateStore) -> None:
    """Serialize and seal the monitor's security state."""
    if monitor.config is None:
        raise MonitorError("cannot snapshot an unprovisioned monitor")
    state = {
        "config": monitor.config.to_json(),
        "nonces": sorted(n.hex() for n in monitor._provision_nonces),
        "ledger": [
            {
                "sequence": e.sequence,
                "variant_id": e.variant_id,
                "partition_index": e.partition_index,
                "enclave_id": e.enclave_id,
                "measurement": e.measurement,
                "channel_id": e.channel_id,
                "event": e.event,
                "previous_hash": e.previous_hash,
            }
            for e in monitor.ledger.entries
        ],
    }
    store.save(json.dumps(state, sort_keys=True).encode())


def recover_monitor(
    *,
    enclave: Enclave,
    verifier,
    pool: VariantPool,
    store: MonitorStateStore,
    hosts: dict[str, VariantHost],
    transport=None,
) -> Monitor:
    """Rebuild a monitor from its sealed snapshot and re-bind live variants.

    ``hosts`` maps variant_id to the still-running variant TEEs.  Every
    live binding in the recovered ledger must re-attest with its recorded
    measurement; mismatches (or missing hosts) are retired rather than
    trusted.
    """
    state = json.loads(store.load())
    ledger = BindingLedger(
        entries=[Binding(**entry) for entry in state["ledger"]]
    )
    ledger.verify_chain()
    config = MvxConfig.from_json(state["config"])
    monitor = Monitor(
        enclave=enclave,
        verifier=verifier,
        pool=pool,
        config=config,
        ledger=ledger,
        transport=transport,
    )
    monitor._install_policies(config)
    monitor._provision_nonces = {bytes.fromhex(n) for n in state["nonces"]}

    for variant_id, binding in ledger.active_bindings().items():
        host = hosts.get(variant_id)
        if host is None or host.crashed:
            monitor.ledger.append(
                variant_id=variant_id,
                partition_index=binding.partition_index,
                enclave_id=binding.enclave_id,
                measurement=binding.measurement,
                channel_id=binding.channel_id,
                event="retire",
            )
            continue
        _rebind(monitor, binding, host)
    monitor.ledger.verify_chain()
    return monitor


def _rebind(monitor: Monitor, binding: Binding, host: VariantHost) -> None:
    if host.enclave.measurement != binding.measurement:
        raise MonitorError(
            f"variant {binding.variant_id!r}: measurement changed across monitor "
            "restart (expected "
            f"{binding.measurement[:12]}..., got {host.enclave.measurement[:12]}...)"
        )
    if host.enclave.enclave_id != binding.enclave_id:
        raise MonitorError(
            f"variant {binding.variant_id!r}: enclave identity changed across "
            "monitor restart (possible variant substitution)"
        )
    channel_id = f"{binding.channel_id}-rebind"
    try:
        monitor_end, variant_end = establish_channel(
            initiator_quote_fn=monitor.quote,
            responder_quote_fn=host.quote,
            verifier=monitor.verifier,
            channel_id=channel_id,
        )
    except ChannelError as exc:
        raise MonitorError(
            f"re-binding {binding.variant_id} failed: {exc}"
        ) from exc
    host.attach_channel(variant_end)
    if monitor.transport is not None:
        monitor.transport.register(host)
    monitor.connections.setdefault(binding.partition_index, []).append(
        VariantConnection(
            variant_id=binding.variant_id,
            partition_index=binding.partition_index,
            channel=monitor_end,
            host=host,
            measurement=binding.measurement,
            transport=monitor.transport,
        )
    )
    monitor.ledger.append(
        variant_id=binding.variant_id,
        partition_index=binding.partition_index,
        enclave_id=host.enclave.enclave_id,
        measurement=binding.measurement,
        channel_id=channel_id,
        event="update",
    )
