"""Execution scheduling: one unified entry point, sync and async.

The execution model of §4.3: variant TEEs form a DAG mirroring the
partition topology and process private user data "in a pipelined
manner".  Sequential execution completes all stages of a batch before
the next batch begins; pipelined execution keeps every stage busy with a
different batch.  This module drives the *functional* execution through
the monitor (correctness, detection); wall-clock performance of the two
modes is reproduced by :mod:`repro.simulation`.

The single entry point is :func:`run` with an :class:`InferenceOptions`
bundle (scheduling mode, checkpoint discipline, path mode and the
observability :class:`~repro.observability.sinks.Sinks`).  Every run
produces an ``infer -> batch -> stage`` span tree through the
configured tracer (the monitor adds ``variant`` and ``checkpoint``
leaves) and stage latency histograms in the metrics registry.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from dataclasses import dataclass, field

import numpy as np

from repro.mvx.monitor import Monitor
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import FlightRecorder
from repro.observability.sinks import Sinks, coerce_sinks
from repro.observability.tracing import Span, Tracer

__all__ = [
    "ExecutionMode",
    "InferenceOptions",
    "PathMode",
    "RunStats",
    "SchedulingMode",
    "run",
    "validate_feeds",
]


class ExecutionMode(enum.Enum):
    """Checkpoint synchronization discipline."""

    SYNC = "sync"
    ASYNC = "async"


class PathMode(enum.Enum):
    """Checkpoint evaluation path (Figure 7)."""

    FAST = "fast"
    SLOW = "slow"
    HYBRID = "hybrid"


class SchedulingMode(enum.Enum):
    """Batch admission discipline."""

    SEQUENTIAL = "sequential"
    PIPELINED = "pipelined"


@dataclass(frozen=True)
class InferenceOptions:
    """Everything one inference run needs beyond the batches themselves.

    ``mode`` / ``path_mode`` override the deployment's provisioned
    checkpoint discipline and Figure-7 path selection for the duration
    of the run; ``None`` keeps the provisioned value.  ``sinks``
    bundles the run's observability output (tracer, metrics registry,
    flight recorder); unset sinks fall back to the monitor's tracer,
    the process-wide registry and the deployment's recorder.  The
    individual ``tracer=`` / ``metrics=`` / ``recorder=`` kwargs are
    deprecated spellings of the same bundle.

    ``dispatcher`` installs a replica dispatcher on the monitor for the
    duration of the run -- an object with
    ``dispatch(monitor, connections, batch_id, feeds)`` such as
    :class:`repro.serving.executor.ParallelStageExecutor`, which runs
    the variant replicas of a stage concurrently.

    ``sinks.recorder`` installs a tamper-evident flight recorder on the
    monitor for the duration of the run; ``None`` keeps whatever
    recorder the deployment already has (possibly none).

    ``batch_id_base`` offsets the monitor-facing batch ids of the run:
    batch ``i`` of the stream is identified as ``batch_id_base + i`` in
    spans, recorder entries and detection events.  Concurrent runs over
    one deployment (the serving engine overlaps
    ``ServingPolicy.num_workers`` of them) must use disjoint bases so
    their batch ids never collide.
    """

    scheduling: SchedulingMode = SchedulingMode.SEQUENTIAL
    mode: ExecutionMode | None = None
    path_mode: PathMode | None = None
    sinks: Sinks | None = None
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None
    dispatcher: object | None = None
    recorder: FlightRecorder | None = None
    batch_id_base: int = 0

    def __post_init__(self):
        resolved = coerce_sinks(
            self.sinks,
            owner="InferenceOptions",
            tracer=self.tracer,
            metrics=self.metrics,
            recorder=self.recorder,
            stacklevel=4,
        )
        # The trio fields stay the canonical storage the scheduler and
        # monitor read; the frozen dataclass is normalized in place.
        object.__setattr__(self, "sinks", resolved)
        object.__setattr__(self, "tracer", resolved.tracer)
        object.__setattr__(self, "metrics", resolved.metrics)
        object.__setattr__(self, "recorder", resolved.recorder)


@dataclass
class RunStats:
    """Counters of one run.

    ``extra["stage_seconds"]`` (partition index -> cumulative seconds)
    is kept populated for one deprecation cycle; the canonical record
    is now the ``mvtee_stage_seconds`` histogram in the run's
    :class:`~repro.observability.metrics.MetricsRegistry`.
    """

    batches: int = 0
    stage_executions: int = 0
    checkpoints_evaluated: int = 0
    divergences: int = 0
    crashes: int = 0
    extra: dict = field(default_factory=dict)


def validate_feeds(monitor: Monitor, feeds: dict[str, np.ndarray]) -> None:
    """Reject malformed user inputs before they reach any variant TEE.

    The monitor "is also hardened against any untrusted inputs" (§6.5):
    missing tensors, wrong shapes and wrong dtypes are rejected at the
    trust boundary instead of propagating into variant kernels.
    """
    expected = {spec.name: spec for spec in monitor.partition_set.model.inputs}
    missing = set(expected) - set(feeds)
    if missing:
        raise ValueError(f"missing input tensors: {sorted(missing)}")
    unexpected = set(feeds) - set(expected)
    if unexpected:
        raise ValueError(f"unexpected input tensors: {sorted(unexpected)}")
    for name, spec in expected.items():
        value = feeds[name]
        if not isinstance(value, np.ndarray):
            raise ValueError(f"input {name!r} is not an ndarray")
        if tuple(value.shape) != spec.shape:
            raise ValueError(
                f"input {name!r} has shape {tuple(value.shape)}, expected {spec.shape}"
            )
        if value.dtype != spec.dtype.numpy:
            raise ValueError(
                f"input {name!r} has dtype {value.dtype}, expected {spec.dtype.value}"
            )


def _stage_once(
    monitor: Monitor,
    env: dict,
    batch_id: int,
    index: int,
    stats: RunStats,
    tracer: Tracer,
    registry: MetricsRegistry,
    batch_span: Span | None,
) -> None:
    partition_set = monitor.partition_set
    feeds = partition_set.stage_feeds(index, env)
    with tracer.span(
        "stage", parent=batch_span, partition=index, batch=batch_id
    ) as span:
        start = time.perf_counter()
        outputs = monitor.execute_stage(batch_id, index, feeds)
        elapsed = time.perf_counter() - start
    env.update(outputs)
    stats.stage_executions += 1
    registry.histogram(
        "mvtee_stage_seconds", "Wall-clock seconds per stage execution"
    ).observe(elapsed, partition=index)
    registry.counter(
        "mvtee_stage_executions_total", "Stage executions"
    ).inc(partition=index)
    # Deprecated: superseded by the mvtee_stage_seconds histogram.
    timings = stats.extra.setdefault("stage_seconds", {})
    timings[index] = timings.get(index, 0.0) + elapsed
    if monitor.config is not None and monitor.config.uses_slow_path(index):
        stats.checkpoints_evaluated += 1
        span.set_attribute("slow_path", True)


def _finalize(monitor: Monitor, env: dict) -> dict[str, np.ndarray]:
    return {spec.name: env[spec.name] for spec in monitor.partition_set.model.outputs}


def _install_run_options(
    monitor: Monitor,
    options: InferenceOptions,
    tracer: Tracer,
    registry: MetricsRegistry,
):
    """Install run-scoped options on the monitor; returns restore state.

    The dispatcher goes into the monitor's *thread-local* slot: each
    overlapping run executes on its own thread and carries its own
    per-batch deadline view, so the deployment-wide ``dispatcher``
    field must not be clobbered.  The shared sinks (config overrides,
    tracer, metrics, recorder) are refcounted -- the first concurrent
    run installs them, the last restores the provisioned values.
    Overlapping runs are expected to pass identical sink options (the
    serving engine does); a run that joins with *different* sinks keeps
    the first run's installation until the monitor goes idle.
    """
    prev_dispatcher = getattr(monitor._tls, "dispatcher", None)
    if options.dispatcher is not None:
        monitor._tls.dispatcher = options.dispatcher
    with monitor._run_lock:
        monitor._run_refs += 1
        if monitor._run_refs == 1:
            monitor._run_saved = (
                monitor.config,
                monitor.tracer,
                monitor.metrics,
                monitor.recorder,
            )
            overrides = {}
            if options.mode is not None:
                overrides["execution_mode"] = options.mode.value
            if options.path_mode is not None:
                overrides["path_mode"] = options.path_mode.value
            if overrides and monitor.config is not None:
                monitor.config = dataclasses.replace(monitor.config, **overrides)
            monitor.tracer, monitor.metrics = tracer, registry
            if options.recorder is not None:
                monitor.recorder = options.recorder
    return prev_dispatcher


def _restore_run_options(
    monitor: Monitor, options: InferenceOptions, prev_dispatcher
) -> None:
    if options.dispatcher is not None:
        monitor._tls.dispatcher = prev_dispatcher
    with monitor._run_lock:
        monitor._run_refs -= 1
        if monitor._run_refs == 0:
            (
                monitor.config,
                monitor.tracer,
                monitor.metrics,
                monitor.recorder,
            ) = monitor._run_saved
            monitor._run_saved = None


def run(
    monitor: Monitor,
    batches: list[dict[str, np.ndarray]],
    options: InferenceOptions | None = None,
) -> tuple[list[dict[str, np.ndarray]], RunStats]:
    """Process a batch stream through the deployment.

    The unified entry point behind :meth:`MvteeSystem.infer_batches`:
    validates every batch at the trust boundary, applies the options'
    execution/path overrides to the provisioned config for the duration
    of the run, and emits the full span tree and stage metrics.

    Safe to call concurrently from several threads against one monitor
    (the serving engine overlaps batches this way): the dispatcher is
    installed per thread, the remaining option sinks via refcounted
    install/restore, and ``options.batch_id_base`` keeps monitor-facing
    batch ids disjoint across overlapping runs.
    """
    options = options or InferenceOptions()
    for feeds in batches:
        validate_feeds(monitor, feeds)
    tracer = options.tracer if options.tracer is not None else monitor.tracer
    registry = (
        options.metrics if options.metrics is not None else monitor.metrics_registry
    )
    prev_dispatcher = _install_run_options(monitor, options, tracer, registry)
    try:
        stats = RunStats()
        config = monitor.config
        with tracer.span(
            "infer",
            scheduling=options.scheduling.value,
            execution_mode=config.execution_mode if config else None,
            path_mode=config.path_mode if config else None,
            num_batches=len(batches),
        ) as root:
            if options.scheduling is SchedulingMode.PIPELINED:
                results = _run_pipelined(
                    monitor, batches, stats, tracer, registry, root,
                    options.batch_id_base,
                )
            else:
                results = _run_sequential(
                    monitor, batches, stats, tracer, registry, root,
                    options.batch_id_base,
                )
        stats.divergences = len(monitor.divergence_events())
        stats.crashes = len(monitor.crash_events())
        return results, stats
    finally:
        _restore_run_options(monitor, options, prev_dispatcher)


def _run_sequential(
    monitor: Monitor,
    batches: list[dict[str, np.ndarray]],
    stats: RunStats,
    tracer: Tracer,
    registry: MetricsRegistry,
    root: Span,
    base: int = 0,
) -> list[dict[str, np.ndarray]]:
    results = []
    num_stages = len(monitor.partition_set)
    batch_counter = registry.counter("mvtee_batches_total", "Batches completed")
    for local_id, feeds in enumerate(batches):
        batch_id = base + local_id
        env = dict(feeds)
        with tracer.span("batch", parent=root, batch=batch_id) as batch_span:
            for index in range(num_stages):
                _stage_once(
                    monitor, env, batch_id, index, stats, tracer, registry, batch_span
                )
        results.append(_finalize(monitor, env))
        stats.batches += 1
        batch_counter.inc(scheduling="sequential")
    return results


def _run_pipelined(
    monitor: Monitor,
    batches: list[dict[str, np.ndarray]],
    stats: RunStats,
    tracer: Tracer,
    registry: MetricsRegistry,
    root: Span,
    base: int = 0,
) -> list[dict[str, np.ndarray]]:
    """Overlapping pipeline: at tick ``t``, stage ``i`` handles batch ``t-i``.

    The functional outcome matches sequential execution, but checkpoint
    evaluation interleaves across batches -- which is exactly the regime
    in which asynchronous cross-validation defers laggard checks across
    stage boundaries.  Batch spans stay open across ticks and collect
    the stage spans executed on the batch's behalf.
    """
    num_stages = len(monitor.partition_set)
    batch_counter = registry.counter("mvtee_batches_total", "Batches completed")
    envs: dict[int, dict] = {}
    spans: dict[int, Span] = {}
    results: dict[int, dict] = {}
    total_ticks = len(batches) + num_stages - 1
    for tick in range(total_ticks):
        # Later stages first within a tick: drain the pipe end before
        # admitting new work, as a hardware pipeline would.
        for index in reversed(range(num_stages)):
            local_id = tick - index
            if not 0 <= local_id < len(batches):
                continue
            batch_id = base + local_id
            if index == 0:
                envs[local_id] = dict(batches[local_id])
                spans[local_id] = tracer.start_span(
                    "batch", parent=root, batch=batch_id
                )
            env = envs[local_id]
            _stage_once(
                monitor, env, batch_id, index, stats, tracer, registry, spans[local_id]
            )
            if index == num_stages - 1:
                results[local_id] = _finalize(monitor, env)
                del envs[local_id]
                tracer.end_span(spans.pop(local_id))
                stats.batches += 1
                batch_counter.inc(scheduling="pipelined")
    return [results[i] for i in range(len(batches))]
