"""Execution scheduling: sequential and pipelined, sync and async.

The execution model of §4.3: variant TEEs form a DAG mirroring the
partition topology and process private user data "in a pipelined
manner".  Sequential execution completes all stages of a batch before
the next batch begins; pipelined execution keeps every stage busy with a
different batch.  This module drives the *functional* execution through
the monitor (correctness, detection); wall-clock performance of the two
modes is reproduced by :mod:`repro.simulation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.mvx.monitor import Monitor

__all__ = ["ExecutionMode", "PathMode", "RunStats", "run_pipelined", "run_sequential"]


class ExecutionMode(enum.Enum):
    """Checkpoint synchronization discipline."""

    SYNC = "sync"
    ASYNC = "async"


class PathMode(enum.Enum):
    """Checkpoint evaluation path (Figure 7)."""

    FAST = "fast"
    SLOW = "slow"
    HYBRID = "hybrid"


@dataclass
class RunStats:
    """Counters of one run."""

    batches: int = 0
    stage_executions: int = 0
    checkpoints_evaluated: int = 0
    divergences: int = 0
    crashes: int = 0
    extra: dict = field(default_factory=dict)


def validate_feeds(monitor: Monitor, feeds: dict[str, np.ndarray]) -> None:
    """Reject malformed user inputs before they reach any variant TEE.

    The monitor "is also hardened against any untrusted inputs" (§6.5):
    missing tensors, wrong shapes and wrong dtypes are rejected at the
    trust boundary instead of propagating into variant kernels.
    """
    expected = {spec.name: spec for spec in monitor.partition_set.model.inputs}
    missing = set(expected) - set(feeds)
    if missing:
        raise ValueError(f"missing input tensors: {sorted(missing)}")
    unexpected = set(feeds) - set(expected)
    if unexpected:
        raise ValueError(f"unexpected input tensors: {sorted(unexpected)}")
    for name, spec in expected.items():
        value = feeds[name]
        if not isinstance(value, np.ndarray):
            raise ValueError(f"input {name!r} is not an ndarray")
        if tuple(value.shape) != spec.shape:
            raise ValueError(
                f"input {name!r} has shape {tuple(value.shape)}, expected {spec.shape}"
            )
        if value.dtype != spec.dtype.numpy:
            raise ValueError(
                f"input {name!r} has dtype {value.dtype}, expected {spec.dtype.value}"
            )


def _stage_once(monitor: Monitor, env: dict, batch_id: int, index: int, stats: RunStats) -> None:
    import time

    partition_set = monitor.partition_set
    feeds = partition_set.stage_feeds(index, env)
    start = time.perf_counter()
    outputs = monitor.execute_stage(batch_id, index, feeds)
    elapsed = time.perf_counter() - start
    env.update(outputs)
    stats.stage_executions += 1
    timings = stats.extra.setdefault("stage_seconds", {})
    timings[index] = timings.get(index, 0.0) + elapsed
    if monitor.config is not None and monitor.config.uses_slow_path(index):
        stats.checkpoints_evaluated += 1


def _finalize(monitor: Monitor, env: dict) -> dict[str, np.ndarray]:
    return {spec.name: env[spec.name] for spec in monitor.partition_set.model.outputs}


def run_sequential(
    monitor: Monitor, batches: list[dict[str, np.ndarray]]
) -> tuple[list[dict[str, np.ndarray]], RunStats]:
    """Process batches one after another through all stages."""
    stats = RunStats()
    results = []
    num_stages = len(monitor.partition_set)
    for feeds in batches:
        validate_feeds(monitor, feeds)
    for batch_id, feeds in enumerate(batches):
        env = dict(feeds)
        for index in range(num_stages):
            _stage_once(monitor, env, batch_id, index, stats)
        results.append(_finalize(monitor, env))
        stats.batches += 1
    stats.divergences = len(monitor.divergence_events())
    stats.crashes = len(monitor.crash_events())
    return results, stats


def run_pipelined(
    monitor: Monitor, batches: list[dict[str, np.ndarray]]
) -> tuple[list[dict[str, np.ndarray]], RunStats]:
    """Process a batch stream with overlapping pipeline stages.

    At pipeline tick ``t``, stage ``i`` handles batch ``t - i``; the
    functional outcome matches sequential execution, but checkpoint
    evaluation interleaves across batches -- which is exactly the regime
    in which asynchronous cross-validation defers laggard checks across
    stage boundaries.
    """
    stats = RunStats()
    num_stages = len(monitor.partition_set)
    for feeds in batches:
        validate_feeds(monitor, feeds)
    envs: dict[int, dict] = {}
    results: dict[int, dict] = {}
    total_ticks = len(batches) + num_stages - 1
    for tick in range(total_ticks):
        # Later stages first within a tick: drain the pipe end before
        # admitting new work, as a hardware pipeline would.
        for index in reversed(range(num_stages)):
            batch_id = tick - index
            if not 0 <= batch_id < len(batches):
                continue
            if index == 0:
                envs[batch_id] = dict(batches[batch_id])
            env = envs[batch_id]
            _stage_once(monitor, env, batch_id, index, stats)
            if index == num_stages - 1:
                results[batch_id] = _finalize(monitor, env)
                del envs[batch_id]
                stats.batches += 1
    stats.divergences = len(monitor.divergence_events())
    stats.crashes = len(monitor.crash_events())
    return [results[i] for i in range(len(batches))], stats
