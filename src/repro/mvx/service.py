"""A streaming inference service on top of a deployment.

The paper motivates pipelined execution with "mainstream managed cloud
inference platforms ... provide built-in support for streaming inference
targeting real-time scenarios and continuous large-volume data
analysis" (§6.4).  :class:`InferenceService` is that serving surface:
requests are queued, executed through the pipeline in arrival order,
optionally supervised by the adaptive controller, with per-request
status, deployment metrics and graceful degradation on detections.

Serving counters live in the service's
:class:`~repro.observability.metrics.MetricsRegistry`;
:meth:`InferenceService.metrics` is a read-through snapshot over that
registry plus the monitor's live state, and
:meth:`InferenceService.render_prometheus` exposes the full registry
(stage-latency histograms, detection counters, serving totals) for
scraping.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.mvx.monitor import MonitorError
from repro.mvx.scheduler import InferenceOptions, SchedulingMode
from repro.mvx.system import MvteeSystem
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer

if TYPE_CHECKING:
    from repro.mvx.adaptive import AdaptiveController

__all__ = ["InferenceService", "RequestState", "ServiceMetrics"]


class RequestState(enum.Enum):
    """Lifecycle of one submitted request."""

    QUEUED = "queued"
    DONE = "done"
    FAILED = "failed"


@dataclass
class _Request:
    request_id: int
    feeds: dict[str, np.ndarray]
    state: RequestState = RequestState.QUEUED
    result: dict[str, np.ndarray] | None = None
    error: str = ""


@dataclass(frozen=True)
class ServiceMetrics:
    """Aggregated deployment health counters.

    A read-through snapshot: the scalar counters come from the
    service's metrics registry, the live-variant gauge from the
    monitor.  :meth:`to_prometheus` keeps the historical byte-stable
    exposition of exactly these fields; the registry's own
    ``render_prometheus`` carries the full instrument set.
    """

    requests_served: int
    requests_failed: int
    batches_executed: int
    checkpoints_evaluated: int
    divergences_detected: int
    crashes_detected: int
    live_variants: dict[int, int]
    bytes_protected: int
    scaling_actions: int

    def to_prometheus(self, *, prefix: str = "mvtee") -> str:
        """Prometheus text-exposition rendering of the counters."""
        lines = []
        scalars = {
            "requests_served_total": self.requests_served,
            "requests_failed_total": self.requests_failed,
            "batches_executed_total": self.batches_executed,
            "checkpoints_evaluated_total": self.checkpoints_evaluated,
            "divergences_detected_total": self.divergences_detected,
            "crashes_detected_total": self.crashes_detected,
            "bytes_protected_total": self.bytes_protected,
            "scaling_actions_total": self.scaling_actions,
        }
        for name, value in scalars.items():
            lines.append(f"# TYPE {prefix}_{name} counter")
            lines.append(f"{prefix}_{name} {value}")
        lines.append(f"# TYPE {prefix}_live_variants gauge")
        for index, count in sorted(self.live_variants.items()):
            lines.append(f'{prefix}_live_variants{{partition="{index}"}} {count}')
        return "\n".join(lines) + "\n"


class InferenceService:
    """Queue-and-drain serving over a deployed :class:`MvteeSystem`."""

    def __init__(
        self,
        system: MvteeSystem,
        *,
        pipelined: bool = True,
        controller: "AdaptiveController | None" = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.system = system
        self.pipelined = pipelined
        self.controller = controller
        #: Per-service registry: two services over one deployment keep
        #: independent serving counters (stage/detection metrics still
        #: aggregate here because drains run with this registry).
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self._queue: OrderedDict[int, _Request] = OrderedDict()
        self._done: dict[int, _Request] = {}
        self._next_id = 0

    def _counter(self, name: str, help: str):
        return self.registry.counter(name, help)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(self, feeds: dict[str, np.ndarray]) -> int:
        """Enqueue one request; returns its id."""
        request = _Request(request_id=self._next_id, feeds=dict(feeds))
        self._next_id += 1
        self._queue[request.request_id] = request
        return request.request_id

    def status(self, request_id: int) -> RequestState:
        """State of a submitted request."""
        request = self._queue.get(request_id) or self._done.get(request_id)
        if request is None:
            raise KeyError(f"unknown request {request_id}")
        return request.state

    def result(self, request_id: int) -> dict[str, np.ndarray]:
        """Result of a DONE request; raises for queued/failed ones."""
        request = self._done.get(request_id)
        if request is None:
            raise KeyError(f"request {request_id} is not finished")
        if request.state is RequestState.FAILED:
            raise MonitorError(f"request {request_id} failed: {request.error}")
        assert request.result is not None
        return request.result

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------

    def drain(self, *, max_batch: int | None = None) -> int:
        """Run queued requests through the pipeline; returns #completed.

        On a detection that halts the pipeline (HALT response policy) the
        in-flight requests are marked FAILED and the queue keeps the
        rest; the operator decides how to proceed.
        """
        pending = list(self._queue.values())[: max_batch or None]
        if not pending:
            return 0
        options = InferenceOptions(
            scheduling=SchedulingMode.PIPELINED
            if self.pipelined
            else SchedulingMode.SEQUENTIAL,
            tracer=self.tracer,
            metrics=self.registry,
        )
        batches = [r.feeds for r in pending]
        try:
            results = self.system.infer_batches(batches, options)
        except MonitorError as exc:
            for request in pending:
                request.state = RequestState.FAILED
                request.error = str(exc)
                self._done[request.request_id] = request
                self._queue.pop(request.request_id, None)
            self._counter(
                "mvtee_requests_failed_total", "Requests failed by a detection"
            ).inc(len(pending))
            if self.controller is not None:
                self.controller.observe()
            return 0
        stats = self.system.last_stats
        self._counter(
            "mvtee_service_batches_total", "Batches executed by the service"
        ).inc(stats.batches)
        self._counter(
            "mvtee_service_checkpoints_total", "Checkpoints evaluated while serving"
        ).inc(stats.checkpoints_evaluated)
        for request, result in zip(pending, results):
            request.state = RequestState.DONE
            request.result = result
            self._done[request.request_id] = request
            self._queue.pop(request.request_id, None)
        self._counter(
            "mvtee_requests_served_total", "Requests served to completion"
        ).inc(len(pending))
        if self.controller is not None:
            self.controller.observe()
        return len(pending)

    # ------------------------------------------------------------------
    # Operations surface
    # ------------------------------------------------------------------

    def metrics(self) -> ServiceMetrics:
        """Current deployment health snapshot (read-through)."""
        monitor = self.system.monitor
        bytes_protected = sum(
            connection.channel.bytes_protected
            for connections in monitor.connections.values()
            for connection in connections
        )
        return ServiceMetrics(
            requests_served=int(
                self.registry.counter("mvtee_requests_served_total").total()
            ),
            requests_failed=int(
                self.registry.counter("mvtee_requests_failed_total").total()
            ),
            batches_executed=int(
                self.registry.counter("mvtee_service_batches_total").total()
            ),
            checkpoints_evaluated=int(
                self.registry.counter("mvtee_service_checkpoints_total").total()
            ),
            divergences_detected=len(monitor.divergence_events()),
            crashes_detected=len(monitor.crash_events()),
            live_variants={
                index: len(monitor.stage_connections(index))
                for index in range(len(self.system.partition_set))
            },
            bytes_protected=bytes_protected,
            scaling_actions=len(self.controller.actions) if self.controller else 0,
        )

    def render_prometheus(self) -> str:
        """Full registry exposition (histograms + counters) for scraping."""
        return self.registry.render_prometheus()
