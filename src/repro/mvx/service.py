"""A streaming inference service on top of a deployment.

The paper motivates pipelined execution with "mainstream managed cloud
inference platforms ... provide built-in support for streaming inference
targeting real-time scenarios and continuous large-volume data
analysis" (§6.4).  :class:`InferenceService` is that serving surface:
requests are queued, executed through the pipeline in arrival order,
optionally supervised by the adaptive controller, with per-request
status, deployment metrics and graceful degradation on detections.

Two execution paths share the request table: the synchronous
:meth:`InferenceService.drain` loop, and the concurrent
:meth:`InferenceService.serve` mode backed by
:class:`repro.serving.ServingEngine` (bounded admission queue with load
shedding, dynamic micro-batching, parallel variant execution).  The
service is thread-safe: it can be driven from user threads and from the
engine's worker at once.

Serving counters live in the service's
:class:`~repro.observability.metrics.MetricsRegistry`;
:meth:`InferenceService.metrics` is a read-through snapshot over that
registry plus the monitor's live state, and
:meth:`InferenceService.render_prometheus` exposes the full registry
(stage-latency histograms, detection counters, serving totals) for
scraping.
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.mvx.monitor import MonitorError
from repro.mvx.scheduler import InferenceOptions, SchedulingMode
from repro.mvx.system import MvteeSystem
from repro.observability.health import HealthMonitor, HealthReport
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import FlightRecorder
from repro.observability.sinks import Sinks
from repro.observability.tracing import Tracer

if TYPE_CHECKING:
    from repro.mvx.adaptive import AdaptiveController

__all__ = ["InferenceService", "RequestState", "ServiceMetrics"]


class RequestState(enum.Enum):
    """Lifecycle of one submitted request."""

    QUEUED = "queued"
    DONE = "done"
    FAILED = "failed"


@dataclass
class _Request:
    request_id: int
    feeds: dict[str, np.ndarray]
    state: RequestState = RequestState.QUEUED
    result: dict[str, np.ndarray] | None = None
    error: str = ""
    #: The serving-engine ticket backing this request while serve() is
    #: active (None on the synchronous drain() path).
    ticket: object | None = field(default=None, repr=False)


@dataclass(frozen=True)
class ServiceMetrics:
    """Aggregated deployment health counters.

    A read-through snapshot: the scalar counters come from the
    service's metrics registry, the live-variant gauge from the
    monitor.  :meth:`to_prometheus` keeps the historical byte-stable
    exposition of exactly these fields; the registry's own
    ``render_prometheus`` carries the full instrument set.
    """

    requests_served: int
    requests_failed: int
    batches_executed: int
    checkpoints_evaluated: int
    divergences_detected: int
    crashes_detected: int
    live_variants: dict[int, int]
    bytes_protected: int
    scaling_actions: int

    def to_prometheus(self, *, prefix: str = "mvtee") -> str:
        """Prometheus text-exposition rendering of the counters."""
        lines = []
        scalars = {
            "requests_served_total": self.requests_served,
            "requests_failed_total": self.requests_failed,
            "batches_executed_total": self.batches_executed,
            "checkpoints_evaluated_total": self.checkpoints_evaluated,
            "divergences_detected_total": self.divergences_detected,
            "crashes_detected_total": self.crashes_detected,
            "bytes_protected_total": self.bytes_protected,
            "scaling_actions_total": self.scaling_actions,
        }
        for name, value in scalars.items():
            lines.append(f"# TYPE {prefix}_{name} counter")
            lines.append(f"{prefix}_{name} {value}")
        lines.append(f"# TYPE {prefix}_live_variants gauge")
        for index, count in sorted(self.live_variants.items()):
            lines.append(f'{prefix}_live_variants{{partition="{index}"}} {count}')
        return "\n".join(lines) + "\n"


class InferenceService:
    """Queue-and-drain serving over a deployed :class:`MvteeSystem`."""

    def __init__(
        self,
        system: MvteeSystem,
        *,
        pipelined: bool = True,
        controller: "AdaptiveController | None" = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
        health: HealthMonitor | None = None,
    ):
        self.system = system
        self.pipelined = pipelined
        self.controller = controller
        #: Per-service registry: two services over one deployment keep
        #: independent serving counters (stage/detection metrics still
        #: aggregate here because drains run with this registry).
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        #: Flight recorder threaded through both serving paths; defaults
        #: to the deployment's recorder.
        self.recorder = (
            recorder if recorder is not None else system.monitor.recorder
        )
        #: Health watchdog over this service's registry; built lazily on
        #: the first :meth:`healthz` unless one is injected (tests pass
        #: their own rules/clock).
        self._health = health
        self._queue: OrderedDict[int, _Request] = OrderedDict()
        self._done: dict[int, _Request] = {}
        self._next_id = 0
        #: Guards _queue/_done/_next_id: the service is driven from user
        #: threads and from the concurrent serving engine at once.
        self._lock = threading.Lock()
        self._engine = None

    def _counter(self, name: str, help: str):
        return self.registry.counter(name, help)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(self, feeds: dict[str, np.ndarray]) -> int:
        """Enqueue one request; returns its id.

        While :meth:`serve` is active the request is handed straight to
        the serving engine (and its backpressure applies: an
        over-capacity submission raises
        :class:`~repro.serving.errors.Overloaded` without leaving a
        request behind).
        """
        with self._lock:
            request = _Request(request_id=self._next_id, feeds=dict(feeds))
            self._next_id += 1
            self._queue[request.request_id] = request
            engine = self._engine
        if engine is not None:
            try:
                ticket = engine.submit(request.feeds)
            except Exception:
                with self._lock:
                    self._queue.pop(request.request_id, None)
                raise
            request.ticket = ticket
            ticket.add_done_callback(
                lambda t, request=request: self._finish_from_ticket(request, t)
            )
        return request.request_id

    def status(self, request_id: int) -> RequestState:
        """State of a submitted request."""
        with self._lock:
            request = self._queue.get(request_id) or self._done.get(request_id)
        if request is None:
            raise KeyError(f"unknown request {request_id}")
        return request.state

    def result(self, request_id: int) -> dict[str, np.ndarray]:
        """Result of a DONE request; raises for queued/failed ones."""
        with self._lock:
            request = self._done.get(request_id)
        if request is None:
            raise KeyError(f"request {request_id} is not finished")
        if request.state is not RequestState.DONE:
            raise MonitorError(f"request {request_id} failed: {request.error}")
        assert request.result is not None
        return request.result

    def wait(self, request_id: int, timeout: float | None = None) -> RequestState:
        """Block until a request finishes (serve() path); returns its state.

        On the synchronous path (no engine ticket) the current state is
        returned immediately -- :meth:`drain` is the blocking step there.
        """
        with self._lock:
            request = self._queue.get(request_id) or self._done.get(request_id)
        if request is None:
            raise KeyError(f"unknown request {request_id}")
        if request.ticket is not None:
            request.ticket.exception(timeout)
        return self.status(request_id)

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------

    def drain(self, *, max_batch: int | None = None) -> int:
        """Run queued requests through the pipeline synchronously.

        Returns the number of requests *transitioned* out of the queue
        -- completed ones on success, FAILED ones when a detection
        halted the pipeline (HALT response policy); the queue keeps the
        rest and the operator decides how to proceed.  ``max_batch=0``
        means "do nothing" (not "unlimited"); ``None`` drains everything.
        """
        if self._engine is not None:
            raise RuntimeError(
                "drain() is unavailable while serve() is active; the engine "
                "is processing the queue"
            )
        if max_batch is not None and max_batch <= 0:
            return 0
        with self._lock:
            pending = list(self._queue.values())[:max_batch]
        if not pending:
            return 0
        options = InferenceOptions(
            scheduling=SchedulingMode.PIPELINED
            if self.pipelined
            else SchedulingMode.SEQUENTIAL,
            sinks=Sinks(
                tracer=self.tracer,
                metrics=self.registry,
                recorder=self.recorder,
            ),
        )
        batches = [r.feeds for r in pending]
        try:
            results = self.system.infer_batches(batches, options)
        except MonitorError as exc:
            with self._lock:
                for request in pending:
                    request.state = RequestState.FAILED
                    request.error = str(exc)
                    self._done[request.request_id] = request
                    self._queue.pop(request.request_id, None)
            self._counter(
                "mvtee_requests_failed_total", "Requests failed by a detection"
            ).inc(len(pending))
            if self.controller is not None:
                self.controller.observe()
            return len(pending)
        stats = self.system.last_stats
        self._counter(
            "mvtee_service_batches_total", "Batches executed by the service"
        ).inc(stats.batches)
        self._counter(
            "mvtee_service_checkpoints_total", "Checkpoints evaluated while serving"
        ).inc(stats.checkpoints_evaluated)
        with self._lock:
            for request, result in zip(pending, results):
                request.state = RequestState.DONE
                request.result = result
                self._done[request.request_id] = request
                self._queue.pop(request.request_id, None)
        self._counter(
            "mvtee_requests_served_total", "Requests served to completion"
        ).inc(len(pending))
        if self.controller is not None:
            self.controller.observe()
        return len(pending)

    # ------------------------------------------------------------------
    # Concurrent serving mode
    # ------------------------------------------------------------------

    @contextmanager
    def serve(
        self,
        *,
        capacity: int = 64,
        max_batch_size: int = 8,
        max_wait_s: float = 0.002,
        deadline_s: float | None = None,
        parallel_variants: bool = True,
        max_workers: int = 8,
    ):
        """Serve concurrently through a :class:`repro.serving.ServingEngine`.

        While the context is active, :meth:`submit` routes requests into
        the engine (admission control, micro-batching, parallel variant
        execution) and completions land back in this service's request
        table; :meth:`wait` blocks on individual requests.  The engine
        records into this service's registry, so :meth:`metrics` and
        :meth:`render_prometheus` cover both serving paths.  Requests
        queued *before* entering remain for a later :meth:`drain`.
        """
        from repro.serving.engine import ServingEngine, ServingPolicy

        if self._engine is not None:
            raise RuntimeError("serve() is already active")
        engine = ServingEngine(
            self.system,
            policy=ServingPolicy(
                capacity=capacity,
                max_batch_size=max_batch_size,
                max_wait_s=max_wait_s,
                default_deadline_s=deadline_s,
                parallel_variants=parallel_variants,
                max_workers=max_workers,
            ),
            sinks=Sinks(
                tracer=self.tracer,
                metrics=self.registry,
                recorder=self.recorder,
            ),
        )
        engine.start()
        self._engine = engine
        try:
            yield engine
        finally:
            self._engine = None
            engine.stop()
            if self.controller is not None:
                self.controller.observe()

    def _finish_from_ticket(self, request: _Request, ticket) -> None:
        """Engine completion callback: move the request into _done."""
        from repro.serving.engine import TicketState

        with self._lock:
            if ticket.state is TicketState.DONE:
                request.state = RequestState.DONE
                request.result = ticket.result(timeout=0)
            else:
                request.state = RequestState.FAILED
                error = ticket.exception(timeout=0)
                request.error = str(error) if error is not None else ""
            self._done[request.request_id] = request
            self._queue.pop(request.request_id, None)

    # ------------------------------------------------------------------
    # Operations surface
    # ------------------------------------------------------------------

    def healthz(self) -> HealthReport:
        """Evaluate the health watchdog (the readiness-probe endpoint).

        Grades the rolling-window SLO rules over this service's registry
        and returns the combined OK/WARN/CRIT report; the verdict also
        lands in the ``mvtee_health_status`` gauge and, on transitions,
        in the flight recorder.
        """
        if self._health is None:
            self._health = HealthMonitor(self.registry, recorder=self.recorder)
        return self._health.evaluate()

    def incidents(self, kind: str | None = None):
        """Forensic incident reports captured by the monitor."""
        return self.system.monitor.incidents(kind)

    def metrics(self) -> ServiceMetrics:
        """Current deployment health snapshot (read-through)."""
        monitor = self.system.monitor
        bytes_protected = sum(
            connection.channel.bytes_protected
            for connections in monitor.connections.values()
            for connection in connections
        )
        return ServiceMetrics(
            requests_served=int(
                self.registry.counter("mvtee_requests_served_total").total()
            ),
            requests_failed=int(
                self.registry.counter("mvtee_requests_failed_total").total()
            ),
            batches_executed=int(
                self.registry.counter("mvtee_service_batches_total").total()
            ),
            checkpoints_evaluated=int(
                self.registry.counter("mvtee_service_checkpoints_total").total()
            ),
            divergences_detected=len(monitor.divergence_events()),
            crashes_detected=len(monitor.crash_events()),
            live_variants={
                index: len(monitor.stage_connections(index))
                for index in range(len(self.system.partition_set))
            },
            bytes_protected=bytes_protected,
            scaling_actions=len(self.controller.actions) if self.controller else 0,
        )

    def render_prometheus(self) -> str:
        """Full registry exposition (histograms + counters) for scraping."""
        return self.registry.render_prometheus()
