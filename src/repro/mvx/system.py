"""High-level facade: offline tooling + online deployment in one object.

:class:`MvteeSystem` is the API a downstream user starts from::

    system = MvteeSystem.deploy(model, num_partitions=5,
                                mvx_partitions={2: 3})
    outputs = system.infer({"input": x})
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.keys import KeyManager
from repro.graph.model import ModelGraph
from repro.mvx.bootstrap import ModelOwner, Orchestrator, bootstrap_deployment
from repro.mvx.config import MvxConfig
from repro.mvx.monitor import Monitor
from repro.mvx.scheduler import InferenceOptions, RunStats, run
from repro.mvx.updates import partial_update, scale_partition
from repro.mvx.variant_host import VariantHost
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import FlightRecorder
from repro.observability.sinks import Sinks, coerce_sinks
from repro.observability.tracing import Tracer
from repro.partition.balance import find_balanced_partition
from repro.partition.partition import PartitionSet
from repro.partition.verify import verify_partition_set
from repro.variants.pool import VariantPool, build_pool, diversified_specs

__all__ = ["MvteeSystem"]


@dataclass
class MvteeSystem:
    """A deployed MVTEE instance."""

    model: ModelGraph
    partition_set: PartitionSet
    pool: VariantPool
    config: MvxConfig
    owner: ModelOwner
    monitor: Monitor
    orchestrator: Orchestrator
    hosts: dict[str, VariantHost]
    key_manager: KeyManager
    last_stats: RunStats | None = field(default=None)
    #: Process-mode deployments only: the supervisor owning the
    #: per-variant worker processes (None for in-process execution).
    cluster: "object | None" = field(default=None)

    @classmethod
    def deploy(
        cls,
        model: ModelGraph,
        *,
        num_partitions: int = 5,
        mvx_partitions: dict[int, int] | None = None,
        pool_variants_per_partition: int | None = None,
        config: MvxConfig | None = None,
        seed: int = 0,
        partition_restarts: int = 4,
        verify_partitions: bool = True,
        verify_variants: bool = True,
        num_platforms: int = 2,
        transport=None,
        sinks: Sinks | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        execution: str = "inprocess",
        restart_policy=None,
    ) -> "MvteeSystem":
        """Run the offline phase and bootstrap the online deployment.

        ``mvx_partitions`` maps partition index -> variant count
        (selective MVX); omitted partitions run a single variant (fast
        path).  A full explicit :class:`MvxConfig` overrides it.

        ``sinks`` installs deployment-wide observability sinks on the
        monitor: every inference run reports through its tracer and
        metrics registry unless a run's :class:`InferenceOptions`
        overrides either, and its flight recorder receives checkpoints,
        detections, responses and variant replacements in one hash
        chain.  The individual ``tracer=`` / ``metrics=`` /
        ``recorder=`` kwargs are deprecated spellings of the same
        bundle.

        ``execution`` selects where variant runtimes live: the default
        ``"inprocess"`` keeps them in this process; ``"process"`` forks
        each variant host into its own supervised worker process after
        bootstrap (crash-grade fault isolation -- see
        :mod:`repro.cluster`), with ``restart_policy`` (a
        :class:`repro.cluster.RestartPolicy`) governing how dead workers
        are restarted.  Call :meth:`shutdown` (or rely on the atexit
        sweep) to tear the worker fleet down.
        """
        sinks = coerce_sinks(
            sinks,
            owner="MvteeSystem.deploy",
            tracer=tracer,
            metrics=metrics,
            recorder=recorder,
        )
        tracer, metrics, recorder = sinks.tracer, sinks.metrics, sinks.recorder
        if execution not in ("inprocess", "process"):
            raise ValueError(
                f"execution must be 'inprocess' or 'process', got {execution!r}"
            )
        if execution == "process":
            if transport is not None:
                raise ValueError(
                    "execution='process' builds its own ProcessTransport; "
                    "an explicit transport cannot be combined with it"
                )
            from repro.cluster import ProcessTransport

            transport = ProcessTransport(metrics=metrics)
        partition_set = find_balanced_partition(
            model, num_partitions, restarts=partition_restarts, seed=seed
        )
        if verify_partitions:
            verify_partition_set(partition_set)
        if config is None:
            config = MvxConfig.selective(len(partition_set), mvx_partitions or {})
        key_manager = KeyManager()
        specs = [
            spec
            for claim in config.claims
            for spec in diversified_specs(
                claim.partition_index,
                # An explicit pool size is honored verbatim (a too-small
                # pool fails loudly at selection); otherwise size the pool
                # to each partition's claim.
                pool_variants_per_partition
                if pool_variants_per_partition is not None
                else claim.num_variants,
                seed=seed,
            )
        ]
        pool = build_pool(
            partition_set, specs, key_manager=key_manager, verify=verify_variants
        )
        owner, monitor, orchestrator, hosts = bootstrap_deployment(
            pool, config, num_platforms=num_platforms, transport=transport
        )
        if tracer is not None:
            monitor.tracer = tracer
        if metrics is not None:
            monitor.metrics = metrics
        if recorder is not None:
            monitor.recorder = recorder
        cluster = None
        if execution == "process":
            from repro.cluster import ClusterSupervisor

            cluster = ClusterSupervisor(
                monitor,
                orchestrator,
                transport,
                hosts=hosts,
                policy=restart_policy,
                registry=metrics,
                recorder=monitor.recorder,
            ).start()
        return cls(
            model=model,
            partition_set=partition_set,
            pool=pool,
            config=config,
            owner=owner,
            monitor=monitor,
            orchestrator=orchestrator,
            hosts=hosts,
            key_manager=key_manager,
            cluster=cluster,
        )

    def shutdown(self) -> None:
        """Tear down process-mode workers (no-op for in-process mode)."""
        if self.cluster is not None:
            self.cluster.shutdown()
            self.cluster = None

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def infer(
        self,
        feeds: dict[str, np.ndarray],
        options: InferenceOptions | None = None,
    ) -> dict[str, np.ndarray]:
        """One protected inference (sequential by default)."""
        return self.infer_batches([feeds], options)[0]

    def infer_batches(
        self,
        batches: list[dict[str, np.ndarray]],
        options: InferenceOptions | None = None,
    ) -> list[dict[str, np.ndarray]]:
        """Protected inference over a batch stream.

        The unified entry point: :class:`InferenceOptions` bundles the
        scheduling mode, checkpoint discipline and path-mode overrides,
        and the observability sinks.
        """
        results, stats = run(self.monitor, batches, options)
        self.last_stats = stats
        return results

    def serving_engine(
        self,
        *,
        policy=None,
        sinks: Sinks | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ):
        """A (not yet started) :class:`repro.serving.ServingEngine`.

        The concurrent serving surface over this deployment: bounded
        admission with load shedding, dynamic micro-batching, parallel
        variant execution.  Call ``start()``/``stop()`` or use it as a
        context manager; :meth:`InferenceService.serve` wraps the same
        engine behind the request-id surface.  ``sinks`` carries the
        engine's observability bundle; the individual ``registry=`` /
        ``tracer=`` / ``recorder=`` kwargs are deprecated.
        """
        from repro.serving.engine import ServingEngine

        sinks = coerce_sinks(
            sinks,
            owner="MvteeSystem.serving_engine",
            tracer=tracer,
            metrics=registry,
            recorder=recorder,
        )
        return ServingEngine(self, policy=policy, sinks=sinks)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update_partition(self, partition_index: int, *, seed: int = 1) -> None:
        """Partial update: replace one partition's variants with fresh ones."""
        claim = self.config.claim(partition_index)
        specs = diversified_specs(
            partition_index,
            claim.num_variants,
            seed=seed,
            prefix=f"p{partition_index}u{seed}",
        )
        fresh_pool = build_pool(
            self.partition_set, specs, key_manager=self.key_manager, verify=False
        )
        artifacts = fresh_pool.for_partition(partition_index)
        for artifact in artifacts:
            self.pool.add(artifact)
        new_hosts = partial_update(
            self.monitor, self.orchestrator, partition_index, artifacts
        )
        for host in new_hosts:
            self.hosts[host.variant_id] = host

    def scale_up(self, partition_index: int, extra: int, *, seed: int = 2) -> None:
        """Horizontal scaling: add ``extra`` variants to one partition."""
        specs = diversified_specs(
            partition_index, extra, seed=seed, prefix=f"p{partition_index}s{seed}"
        )
        fresh_pool = build_pool(
            self.partition_set, specs, key_manager=self.key_manager, verify=False
        )
        artifacts = fresh_pool.for_partition(partition_index)
        for artifact in artifacts:
            self.pool.add(artifact)
        new_hosts = scale_partition(
            self.monitor, self.orchestrator, partition_index, artifacts
        )
        for host in new_hosts:
            self.hosts[host.variant_id] = host

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_variants(self) -> dict[int, list[str]]:
        """Variant ids currently serving, per partition."""
        return {
            index: [c.variant_id for c in self.monitor.stage_connections(index)]
            for index in range(len(self.partition_set))
        }
