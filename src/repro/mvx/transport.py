"""Monitor <-> variant record transports.

The CP/US architecture "naturally supports execution in a distributed
setting" (§4.3): the monitor and variant TEEs may be co-located (records
handed over in memory) or distributed (records cross an untrusted
network).  Both transports move the *same protected records* -- the
security of the exchange comes from the RA-TLS channel layer, so a
tampering network adversary causes a detected :class:`ChannelError`,
never silent corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.mvx.variant_host import VariantHost, VariantUnavailable
from repro.observability.metrics import MetricsRegistry, get_global_registry
from repro.tee.network import Fabric, NetworkError

__all__ = ["DirectTransport", "FabricTransport", "Transport", "record_exchange"]

MONITOR_ENDPOINT = "mvtee-monitor"


def record_exchange(
    registry: MetricsRegistry | None,
    transport: str,
    request: bytes,
    response: bytes | None,
    *,
    outcome: str = "ok",
) -> None:
    """Count one monitor<->variant record exchange and its volume."""
    registry = registry if registry is not None else get_global_registry()
    registry.counter(
        "mvtee_transport_exchanges_total", "Protected record round trips"
    ).inc(transport=transport, outcome=outcome)
    volume = registry.counter(
        "mvtee_transport_bytes_total", "Protected record bytes moved"
    )
    volume.inc(len(request), transport=transport, direction="request")
    if response is not None:
        volume.inc(len(response), transport=transport, direction="response")


class Transport(Protocol):
    """Moves one protected request record and returns the response record."""

    def exchange(self, variant_id: str, record: bytes) -> bytes: ...

    def register(self, host: VariantHost) -> None: ...


@dataclass
class DirectTransport:
    """Co-located deployment: records handed to the variant in-process."""

    hosts: dict[str, VariantHost] = field(default_factory=dict)
    metrics: MetricsRegistry | None = None

    def register(self, host: VariantHost) -> None:
        """Attach a placed variant host."""
        self.hosts[host.variant_id] = host

    def exchange(self, variant_id: str, record: bytes) -> bytes:
        host = self.hosts.get(variant_id)
        if host is None:
            raise VariantUnavailable(f"no transport route to variant {variant_id!r}")
        try:
            response = host.handle_record(record)
        except VariantUnavailable:
            record_exchange(self.metrics, "direct", record, None, outcome="error")
            raise
        record_exchange(self.metrics, "direct", record, response)
        return response


@dataclass
class FabricTransport:
    """Distributed deployment: records cross the (untrusted) fabric.

    Each exchange is one request/response round trip through per-variant
    endpoints; the fabric's adversary hook can tamper with, drop or
    duplicate records in either direction.
    """

    fabric: Fabric = field(default_factory=Fabric)
    hosts: dict[str, VariantHost] = field(default_factory=dict)
    metrics: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        self.fabric.register(MONITOR_ENDPOINT)

    def register(self, host: VariantHost) -> None:
        """Attach a placed variant host behind its own endpoint."""
        self.hosts[host.variant_id] = host
        self.fabric.register(self._endpoint(host.variant_id))

    @staticmethod
    def _endpoint(variant_id: str) -> str:
        return f"mvtee-variant-{variant_id}"

    def exchange(self, variant_id: str, record: bytes) -> bytes:
        host = self.hosts.get(variant_id)
        if host is None:
            raise VariantUnavailable(f"no transport route to variant {variant_id!r}")
        endpoint = self._endpoint(variant_id)
        try:
            self.fabric.send(MONITOR_ENDPOINT, endpoint, record)
            try:
                delivered = self.fabric.recv(MONITOR_ENDPOINT, endpoint)
            except NetworkError as exc:
                # The adversary dropped the request: to the monitor this
                # is a missing response.
                raise VariantUnavailable(
                    f"variant {variant_id}: request lost in transit ({exc})"
                ) from exc
            response = host.handle_record(delivered)
            self.fabric.send(endpoint, MONITOR_ENDPOINT, response)
            try:
                delivered_response = self.fabric.recv(endpoint, MONITOR_ENDPOINT)
            except NetworkError as exc:
                raise VariantUnavailable(
                    f"variant {variant_id}: response lost in transit ({exc})"
                ) from exc
        except VariantUnavailable:
            record_exchange(self.metrics, "fabric", record, None, outcome="error")
            raise
        record_exchange(self.metrics, "fabric", record, delivered_response)
        return delivered_response
