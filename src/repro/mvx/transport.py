"""Monitor <-> variant record transports.

The CP/US architecture "naturally supports execution in a distributed
setting" (§4.3): the monitor and variant TEEs may be co-located (records
handed over in memory) or distributed (records cross an untrusted
network).  Both transports move the *same protected records* -- the
security of the exchange comes from the RA-TLS channel layer, so a
tampering network adversary causes a detected :class:`ChannelError`,
never silent corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.mvx.variant_host import VariantHost, VariantUnavailable
from repro.tee.network import Fabric, NetworkError

__all__ = ["DirectTransport", "FabricTransport", "Transport"]

MONITOR_ENDPOINT = "mvtee-monitor"


class Transport(Protocol):
    """Moves one protected request record and returns the response record."""

    def exchange(self, variant_id: str, record: bytes) -> bytes: ...

    def register(self, host: VariantHost) -> None: ...


@dataclass
class DirectTransport:
    """Co-located deployment: records handed to the variant in-process."""

    hosts: dict[str, VariantHost] = field(default_factory=dict)

    def register(self, host: VariantHost) -> None:
        """Attach a placed variant host."""
        self.hosts[host.variant_id] = host

    def exchange(self, variant_id: str, record: bytes) -> bytes:
        host = self.hosts.get(variant_id)
        if host is None:
            raise VariantUnavailable(f"no transport route to variant {variant_id!r}")
        return host.handle_record(record)


@dataclass
class FabricTransport:
    """Distributed deployment: records cross the (untrusted) fabric.

    Each exchange is one request/response round trip through per-variant
    endpoints; the fabric's adversary hook can tamper with, drop or
    duplicate records in either direction.
    """

    fabric: Fabric = field(default_factory=Fabric)
    hosts: dict[str, VariantHost] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.fabric.register(MONITOR_ENDPOINT)

    def register(self, host: VariantHost) -> None:
        """Attach a placed variant host behind its own endpoint."""
        self.hosts[host.variant_id] = host
        self.fabric.register(self._endpoint(host.variant_id))

    @staticmethod
    def _endpoint(variant_id: str) -> str:
        return f"mvtee-variant-{variant_id}"

    def exchange(self, variant_id: str, record: bytes) -> bytes:
        host = self.hosts.get(variant_id)
        if host is None:
            raise VariantUnavailable(f"no transport route to variant {variant_id!r}")
        endpoint = self._endpoint(variant_id)
        self.fabric.send(MONITOR_ENDPOINT, endpoint, record)
        try:
            delivered = self.fabric.recv(MONITOR_ENDPOINT, endpoint)
        except NetworkError as exc:
            # The adversary dropped the request: to the monitor this is a
            # missing response.
            raise VariantUnavailable(
                f"variant {variant_id}: request lost in transit ({exc})"
            ) from exc
        response = host.handle_record(delivered)
        self.fabric.send(endpoint, MONITOR_ENDPOINT, response)
        try:
            return self.fabric.recv(endpoint, MONITOR_ENDPOINT)
        except NetworkError as exc:
            raise VariantUnavailable(
                f"variant {variant_id}: response lost in transit ({exc})"
            ) from exc
