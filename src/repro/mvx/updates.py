"""Runtime variant updates (Figure 6, "Updates" flow).

Full updates reshuffle the partition set and rebuild every binding;
partial updates replace or scale the variants of selected partitions,
appending to the binding ledger for auditability.  TEEs are never
reused: old enclaves are terminated and fresh ones placed (§4.3 argues
software-level cleanup is unsound and loading costs are unavoidable
anyway).
"""

from __future__ import annotations

from repro.mvx.bootstrap import Orchestrator
from repro.mvx.monitor import Monitor, MonitorError
from repro.mvx.variant_host import VariantHost
from repro.variants.pool import VariantArtifact

__all__ = ["partial_update", "scale_partition"]


def partial_update(
    monitor: Monitor,
    orchestrator: Orchestrator,
    partition_index: int,
    new_artifacts: list[VariantArtifact],
) -> list[VariantHost]:
    """Replace the variants of one partition with fresh pool artifacts.

    Old variant TEEs are retired (terminated + ledger "retire" entries);
    new ones go through the full attestation/key/bind flow with ledger
    event "update".
    """
    if monitor.config is None:
        raise MonitorError("cannot update an unprovisioned deployment")
    for artifact in new_artifacts:
        if artifact.spec.partition_index != partition_index:
            raise MonitorError(
                f"artifact {artifact.variant_id} targets partition "
                f"{artifact.spec.partition_index}, not {partition_index}"
            )
    old_connections = list(monitor.connections.get(partition_index, ()))
    new_hosts = []
    for artifact in new_artifacts:
        host = VariantHost.place(artifact, orchestrator._pick_cpu())
        monitor._bootstrap_variant(partition_index, artifact, host, event="update")
        new_hosts.append(host)
    for connection in old_connections:
        connection.host.terminate()
        monitor.ledger.append(
            variant_id=connection.variant_id,
            partition_index=partition_index,
            enclave_id=connection.host.enclave.enclave_id,
            measurement=connection.measurement,
            channel_id=connection.channel.channel_id,
            event="retire",
        )
    monitor.connections[partition_index] = [
        c
        for c in monitor.connections.get(partition_index, [])
        if not c.host.crashed
    ]
    monitor.ledger.verify_chain()
    return new_hosts


def scale_partition(
    monitor: Monitor,
    orchestrator: Orchestrator,
    partition_index: int,
    extra_artifacts: list[VariantArtifact],
) -> list[VariantHost]:
    """Horizontal scaling: add variants to a partition without retiring."""
    if monitor.config is None:
        raise MonitorError("cannot scale an unprovisioned deployment")
    new_hosts = []
    for artifact in extra_artifacts:
        if artifact.spec.partition_index != partition_index:
            raise MonitorError(
                f"artifact {artifact.variant_id} targets partition "
                f"{artifact.spec.partition_index}, not {partition_index}"
            )
        host = VariantHost.place(artifact, orchestrator._pick_cpu())
        monitor._bootstrap_variant(partition_index, artifact, host, event="update")
        new_hosts.append(host)
    monitor.ledger.verify_chain()
    return new_hosts
