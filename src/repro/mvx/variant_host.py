"""A variant TEE process (host side of the monitor<->variant protocol).

One :class:`VariantHost` is one enclave running, in sequence:

1. the *init-variant* (stage 1): attest, receive the variant-specific
   key over the secure channel, install it into the TEE OS, fetch and
   install the sealed second-stage manifest, then ``exec()``;
2. the *main variant* (stage 2): load the sealed model partition and
   runtime config through the encrypted filesystem, instantiate the
   diversified runtime, and serve inference requests.

A :class:`RuntimeCrash` inside the runtime marks the host dead -- the
monitor sees a missing checkpoint response, exactly like a crashed TEE.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.model import ModelGraph
from repro.mvx.wire import decode_message, encode_message
from repro.observability.metrics import MetricsRegistry, get_global_registry
from repro.runtime import create_runtime
from repro.runtime.base import InferenceRuntime, RuntimeCrash
from repro.tee.attestation import Quote, make_quote
from repro.tee.channel import SecureChannel
from repro.tee.enclave import Enclave
from repro.tee.gramine import GramineError
from repro.tee.hardware import SimulatedCpu
from repro.variants.pool import VariantArtifact
from repro.variants.spec import VariantSpec

__all__ = ["VariantHost", "VariantUnavailable"]


class VariantUnavailable(Exception):
    """The variant TEE crashed or was terminated; no response will come."""


@dataclass
class VariantHost:
    """One variant TEE and its application state machine."""

    artifact: VariantArtifact
    enclave: Enclave
    channel: SecureChannel | None = None
    runtime: InferenceRuntime | None = None
    crashed: bool = False
    crash_reason: str = ""
    #: Simulated extra execution latency (seconds-equivalent units); the
    #: async scheduler and the DES use this to model slow variants (e.g.
    #: a heavily diversified TVM variant, §6.4).
    simulated_latency: float = 0.0
    #: Apply ``simulated_latency`` as real wall-clock sleep before each
    #: inference.  The sleep releases the GIL like the numpy kernels do,
    #: so the serving benchmarks can model heavy diversified variants
    #: whose replicas genuinely overlap under parallel dispatch.
    realtime_latency: bool = False
    #: Metrics sink for serving counters (None = process-wide registry).
    metrics: MetricsRegistry | None = None
    _served: int = field(default=0)

    @property
    def variant_id(self) -> str:
        """The hosted variant's identifier."""
        return self.artifact.variant_id

    @classmethod
    def place(
        cls,
        artifact: VariantArtifact,
        cpu: SimulatedCpu,
        *,
        enclave_id: str | None = None,
    ) -> "VariantHost":
        """Orchestrator action: start the variant TEE with its init-variant.

        Only public files (init binary, public manifest) and sealed blobs
        are involved -- the orchestrator never sees variant specifics
        (two-stage bootstrap design, Figure 5).
        """
        enclave = Enclave.launch(
            cpu,
            artifact.spec.tee_type,
            artifact.init_manifest,
            dict(artifact.host_files),
            enclave_id=enclave_id or f"tee-{artifact.variant_id}",
        )
        return cls(artifact=artifact, enclave=enclave)

    # ------------------------------------------------------------------
    # Stage 1: init-variant
    # ------------------------------------------------------------------

    def quote(self, report_data: bytes) -> Quote:
        """Attestation on behalf of the running enclave."""
        return make_quote(self.enclave, report_data)

    def attach_channel(self, channel: SecureChannel) -> None:
        """Bind the RA-TLS channel established with the monitor."""
        self.channel = channel

    def handle_record(self, record: bytes) -> bytes:
        """Process one protected request record; returns the response record.

        Raises :class:`VariantUnavailable` if the variant is dead (a real
        crashed process simply never responds).
        """
        if self.crashed:
            raise VariantUnavailable(
                f"variant {self.variant_id} crashed: {self.crash_reason}"
            )
        if self.channel is None:
            raise VariantUnavailable(f"variant {self.variant_id} has no channel")
        msg_type, meta, tensors = decode_message(self.channel.open(record))
        if msg_type == "install-key":
            response = self._handle_install_key(meta)
        elif msg_type == "infer":
            response = self._handle_infer(meta, tensors)
        elif msg_type == "terminate":
            self.terminate()
            response = encode_message("terminated", {"variant_id": self.variant_id})
        else:
            response = encode_message("error", {"reason": f"unknown message {msg_type!r}"})
        return self.channel.protect(response)

    def _handle_install_key(self, meta: dict) -> bytes:
        os_ = self.enclave.os
        try:
            os_.install_key(meta["key_id"], bytes.fromhex(meta["kdk"]))
            manifest_bytes = os_.read_file(self.artifact.paths["stage2_manifest"])
            os_.install_second_stage_manifest(manifest_bytes)
            os_.exec(self.artifact.paths["main"])
            self._enter_stage2()
        except GramineError as exc:
            return encode_message("init-failed", {"reason": str(exc)})
        evidence = self.quote(self.enclave.extension_register.encode())
        return encode_message(
            "init-done",
            {
                "variant_id": self.variant_id,
                "extension_register": self.enclave.extension_register,
                "evidence": evidence.to_bytes().hex(),
            },
        )

    def _enter_stage2(self) -> None:
        os_ = self.enclave.os
        model = ModelGraph.from_bytes(os_.read_file(self.artifact.paths["model"]))
        spec = VariantSpec.from_json(
            json.loads(os_.read_file(self.artifact.paths["config"]))
        )
        self.runtime = create_runtime(spec.runtime)
        self.runtime.prepare(model)

    # ------------------------------------------------------------------
    # Stage 2: inference serving
    # ------------------------------------------------------------------

    def _handle_infer(self, meta: dict, tensors: dict[str, np.ndarray]) -> bytes:
        if self.runtime is None:
            return encode_message("error", {"reason": "variant not initialized"})
        registry = self.metrics if self.metrics is not None else get_global_registry()
        if self.realtime_latency and self.simulated_latency > 0:
            time.sleep(self.simulated_latency)
        start = time.perf_counter()
        try:
            outputs = self.runtime.run(tensors)
        except RuntimeCrash as exc:
            # The TEE process dies; mark dead *before* raising so every
            # later request also fails (no response semantics).
            self.crashed = True
            self.crash_reason = str(exc)
            self.enclave.terminate()
            raise VariantUnavailable(
                f"variant {self.variant_id} crashed during inference: {exc}"
            ) from exc
        registry.histogram(
            "mvtee_variant_runtime_seconds", "In-enclave runtime seconds per request"
        ).observe(time.perf_counter() - start, variant=self.variant_id)
        registry.counter(
            "mvtee_variant_inferences_total", "Successful variant inferences"
        ).inc(variant=self.variant_id)
        self._served += 1
        return encode_message(
            "result",
            {"variant_id": self.variant_id, "batch_id": meta.get("batch_id", -1)},
            outputs,
        )

    @property
    def inferences_served(self) -> int:
        """Number of successful inference responses."""
        return self._served

    def terminate(self) -> None:
        """Tear the variant TEE down (monitor response or update retire)."""
        self.crashed = True
        self.crash_reason = self.crash_reason or "terminated by monitor"
        self.enclave.terminate()
