"""Cross-process voting over variant checkpoint outputs.

Variants' outputs are clustered by pairwise consistency (a variant joins
the first cluster whose representative it agrees with); the configured
policy then decides whether a cluster wins:

- ``unanimous`` (default, security-first): every live variant must agree;
- ``majority``: a strict majority of live variants suffices;
- ``plurality``: the largest cluster wins ties broken by variant order.

Crashed variants never join a cluster; under unanimity a crash alone
constitutes dissent (the paper: variants "will either crash or yield
inconsistent execution results").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mvx.consistency import ConsistencyPolicy, ConsistencyReport

__all__ = ["VariantOutput", "VoteResult", "vote"]


@dataclass
class VariantOutput:
    """One variant's contribution at a checkpoint."""

    variant_id: str
    outputs: dict[str, np.ndarray] | None  # None = crashed / no response
    error: str = ""

    @property
    def alive(self) -> bool:
        """Whether the variant produced outputs."""
        return self.outputs is not None


@dataclass
class VoteResult:
    """Outcome of one checkpoint vote."""

    accepted: dict[str, np.ndarray] | None
    agreeing: tuple[str, ...]
    dissenting: tuple[str, ...]
    crashed: tuple[str, ...]
    unanimous: bool
    reports: tuple[ConsistencyReport, ...] = field(default=())

    @property
    def passed(self) -> bool:
        """True when some output was accepted."""
        return self.accepted is not None


def _cluster(
    outputs: list[VariantOutput], policy: ConsistencyPolicy
) -> tuple[list[list[VariantOutput]], list[ConsistencyReport]]:
    clusters: list[list[VariantOutput]] = []
    reports: list[ConsistencyReport] = []
    for item in outputs:
        placed = False
        for cluster in clusters:
            pair_reports = policy.check_outputs(cluster[0].outputs, item.outputs)
            reports.extend(r for r in pair_reports if not r.consistent)
            if all(r.consistent for r in pair_reports):
                cluster.append(item)
                placed = True
                break
        if not placed:
            clusters.append([item])
    return clusters, reports


def vote(
    outputs: list[VariantOutput],
    *,
    policy: ConsistencyPolicy | None = None,
    strategy: str = "unanimous",
) -> VoteResult:
    """Run one checkpoint vote and return the decision."""
    policy = policy or ConsistencyPolicy()
    crashed = tuple(o.variant_id for o in outputs if not o.alive)
    live = [o for o in outputs if o.alive]
    if not live:
        return VoteResult(
            accepted=None,
            agreeing=(),
            dissenting=(),
            crashed=crashed,
            unanimous=False,
        )
    clusters, fail_reports = _cluster(live, policy)
    clusters.sort(key=len, reverse=True)
    winner = clusters[0]
    losers = [o for cluster in clusters[1:] for o in cluster]
    unanimous = len(clusters) == 1 and not crashed
    accepted: dict[str, np.ndarray] | None = None
    if strategy == "unanimous":
        if unanimous:
            accepted = winner[0].outputs
    elif strategy == "majority":
        if len(winner) * 2 > len(outputs):
            accepted = winner[0].outputs
    elif strategy == "plurality":
        if len(clusters) == 1 or len(winner) > len(clusters[1]):
            accepted = winner[0].outputs
    else:
        raise ValueError(f"unknown voting strategy {strategy!r}")
    return VoteResult(
        accepted=accepted,
        agreeing=tuple(o.variant_id for o in winner),
        dissenting=tuple(o.variant_id for o in losers),
        crashed=crashed,
        unanimous=unanimous,
        reports=tuple(fail_reports),
    )
