"""Wire format for monitor <-> variant messages.

Every message is a JSON envelope (type + metadata) followed by an
optional npz tensor payload; the whole message travels inside one AEAD
record on a secure channel, so confidentiality/integrity/freshness come
from the channel layer.
"""

from __future__ import annotations

import io
import json

import numpy as np

__all__ = ["decode_message", "encode_message"]


def encode_message(msg_type: str, meta: dict | None = None, tensors: dict | None = None) -> bytes:
    """Serialize one protocol message.

    Tensors are forced contiguous before serialization: checkpoint
    feeds are often views (slices of a batch, transposed weights) and
    the framed payload must carry the *logical* array so it round-trips
    identically across a process or network boundary.
    """
    envelope = json.dumps({"type": msg_type, "meta": meta or {}}, sort_keys=True).encode()
    if tensors:
        buffer = io.BytesIO()
        np.savez(buffer, **{name: np.ascontiguousarray(t) for name, t in tensors.items()})
        payload = buffer.getvalue()
    else:
        payload = b""
    return len(envelope).to_bytes(4, "big") + envelope + payload


def decode_message(data: bytes) -> tuple[str, dict, dict]:
    """Parse a message into (type, meta, tensors)."""
    env_len = int.from_bytes(data[:4], "big")
    envelope = json.loads(data[4 : 4 + env_len])
    payload = data[4 + env_len :]
    tensors: dict[str, np.ndarray] = {}
    if payload:
        with np.load(io.BytesIO(payload)) as archive:
            tensors = {name: archive[name] for name in archive.files}
    return envelope["type"], envelope["meta"], tensors
