"""Observability: tracing, metrics, forensics, audit log and health.

The substrate every perf/robustness PR builds on: the scheduler, the
monitor, the transports, the variant hosts and the serving surface all
report through here instead of ad-hoc counters.

- :mod:`repro.observability.tracing` -- :class:`Tracer` producing
  ``infer -> batch -> stage -> variant / checkpoint`` span trees with
  pluggable exporters (in-memory ring buffer, JSONL file sink).
- :mod:`repro.observability.metrics` -- :class:`MetricsRegistry` of
  named counters/gauges/histograms with Prometheus text and JSON
  exposition and bucket-based quantile estimation.
- :mod:`repro.observability.recorder` -- :class:`FlightRecorder`, the
  tamper-evident (hash-chained) audit log of security-relevant events
  with JSONL export and verified replay.
- :mod:`repro.observability.forensics` -- :class:`IncidentReport` /
  :class:`IncidentStore`: per-detection forensics (tensor digests,
  elementwise mismatch analysis, culprit attribution, trace
  correlation).
- :mod:`repro.observability.health` -- :class:`HealthMonitor`
  evaluating rolling-window SLO rules (divergence/crash/shed/timeout
  rates, latency quantiles) to an OK/WARN/CRIT verdict.
- :mod:`repro.observability.sinks` -- :class:`Sinks`, the
  tracer/metrics/recorder bundle every serving surface accepts as
  ``sinks=`` (the individual kwargs are deprecated).
"""

from repro.observability.forensics import (
    IncidentReport,
    IncidentStore,
    MismatchAnalysis,
    TensorSummary,
    analyze_mismatch,
    build_incident_report,
    summarize_tensor,
)
from repro.observability.health import (
    HealthMonitor,
    HealthReport,
    HealthStatus,
    QuantileRule,
    RatioRule,
    RuleResult,
    default_rules,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_global_registry,
    quantile_from_buckets,
    set_global_registry,
)
from repro.observability.recorder import (
    AuditChainError,
    AuditEvent,
    FlightRecorder,
)
from repro.observability.sinks import Sinks
from repro.observability.tracing import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    NullTracer,
    Span,
    SpanExporter,
    Tracer,
    format_span_tree,
)

__all__ = [
    "AuditChainError",
    "AuditEvent",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "HealthReport",
    "HealthStatus",
    "Histogram",
    "IncidentReport",
    "IncidentStore",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "MetricsRegistry",
    "MismatchAnalysis",
    "NullTracer",
    "QuantileRule",
    "RatioRule",
    "RuleResult",
    "Sinks",
    "Span",
    "SpanExporter",
    "TensorSummary",
    "Tracer",
    "analyze_mismatch",
    "build_incident_report",
    "default_rules",
    "format_span_tree",
    "get_global_registry",
    "quantile_from_buckets",
    "set_global_registry",
    "summarize_tensor",
]
