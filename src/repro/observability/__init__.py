"""Observability: hierarchical tracing + a process-wide metrics registry.

The substrate every perf/robustness PR builds on: the scheduler, the
monitor, the transports, the variant hosts and the serving surface all
report through here instead of ad-hoc counters.

- :mod:`repro.observability.tracing` -- :class:`Tracer` producing
  ``infer -> batch -> stage -> variant / checkpoint`` span trees with
  pluggable exporters (in-memory ring buffer, JSONL file sink).
- :mod:`repro.observability.metrics` -- :class:`MetricsRegistry` of
  named counters/gauges/histograms with Prometheus text and JSON
  exposition.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_global_registry,
    set_global_registry,
)
from repro.observability.tracing import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    NullTracer,
    Span,
    SpanExporter,
    Tracer,
    format_span_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "SpanExporter",
    "Tracer",
    "format_span_tree",
    "get_global_registry",
    "set_global_registry",
]
