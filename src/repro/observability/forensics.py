"""Divergence forensics: from a detection event to an incident report.

A divergence surfaces in the monitor as a counter bump and (under HALT)
an exception -- enough to *stop*, not enough to *answer*: which variant
lied, on which tensor, by how much, and what did the system do about
it?  This module captures that answer at detection time, while the
per-variant outputs are still in hand:

- :func:`summarize_tensor` -- digest + summary stats of one output
  tensor (what each variant claimed, without retaining the tensor);
- :func:`analyze_mismatch` -- elementwise comparison of a suspect
  output against the agreed reference (mismatch count, max abs/rel
  error, first mismatching index);
- :class:`IncidentReport` -- the full record: culprit attribution from
  the agree/dissent sets, the consistency reports that tripped the
  checkpoint, correlated trace/span ids and the protective response
  taken; renderable as JSON and human-readable text;
- :class:`IncidentStore` -- a bounded, thread-safe store of the last N
  reports, surfaced via ``Monitor.incidents()`` and the service layer.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "IncidentReport",
    "IncidentStore",
    "MismatchAnalysis",
    "TensorSummary",
    "analyze_mismatch",
    "summarize_tensor",
]


@dataclass(frozen=True)
class TensorSummary:
    """What one variant claimed for one tensor, without the tensor."""

    tensor_name: str
    shape: tuple[int, ...]
    dtype: str
    digest: str  # sha256 of the raw bytes: equal digests == equal claims
    min: float
    max: float
    mean: float
    nan_count: int

    def to_json(self) -> dict:
        return {
            "tensor_name": self.tensor_name,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "digest": self.digest,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "nan_count": self.nan_count,
        }


def summarize_tensor(name: str, array: np.ndarray) -> TensorSummary:
    """Digest + summary statistics of one output tensor."""
    contiguous = np.ascontiguousarray(array)
    finite = contiguous[np.isfinite(contiguous)] if contiguous.size else contiguous
    has_finite = finite.size > 0
    return TensorSummary(
        tensor_name=name,
        shape=tuple(int(d) for d in contiguous.shape),
        dtype=str(contiguous.dtype),
        digest=hashlib.sha256(contiguous.tobytes()).hexdigest(),
        min=float(finite.min()) if has_finite else float("nan"),
        max=float(finite.max()) if has_finite else float("nan"),
        mean=float(finite.mean()) if has_finite else float("nan"),
        nan_count=int(np.count_nonzero(np.isnan(contiguous))),
    )


@dataclass(frozen=True)
class MismatchAnalysis:
    """Elementwise comparison of a suspect output against the reference."""

    tensor_name: str
    total_elements: int
    mismatch_count: int
    max_abs_error: float
    max_rel_error: float
    #: Flat index of the first mismatching element (None when equal).
    first_mismatch_index: int | None
    #: The same position as multi-dimensional coordinates.
    first_mismatch_coords: tuple[int, ...] | None
    reference_value: float | None = None
    suspect_value: float | None = None

    @property
    def mismatched(self) -> bool:
        return self.mismatch_count > 0

    def to_json(self) -> dict:
        return {
            "tensor_name": self.tensor_name,
            "total_elements": self.total_elements,
            "mismatch_count": self.mismatch_count,
            "max_abs_error": self.max_abs_error,
            "max_rel_error": self.max_rel_error,
            "first_mismatch_index": self.first_mismatch_index,
            "first_mismatch_coords": (
                list(self.first_mismatch_coords)
                if self.first_mismatch_coords is not None
                else None
            ),
            "reference_value": self.reference_value,
            "suspect_value": self.suspect_value,
        }


def analyze_mismatch(
    name: str, reference: np.ndarray, suspect: np.ndarray
) -> MismatchAnalysis:
    """Elementwise forensic diff of one tensor pair.

    Exact comparison (any bit-level difference counts): the consistency
    policy already decided the pair diverges; forensics wants the raw
    extent of the disagreement, not a second tolerance judgment.  NaNs
    mismatch everything, including a NaN at the same position.
    """
    if reference.shape != suspect.shape:
        return MismatchAnalysis(
            tensor_name=name,
            total_elements=int(reference.size),
            mismatch_count=int(max(reference.size, suspect.size)),
            max_abs_error=float("inf"),
            max_rel_error=float("inf"),
            first_mismatch_index=0 if max(reference.size, suspect.size) else None,
            first_mismatch_coords=None,
        )
    ref = reference.astype(np.float64, copy=False)
    sus = suspect.astype(np.float64, copy=False)
    # != is True whenever either side is NaN, so NaN positions always
    # count as mismatches (a NaN is never a valid agreement).
    mismatch = ref != sus
    count = int(np.count_nonzero(mismatch))
    if count == 0:
        return MismatchAnalysis(
            tensor_name=name,
            total_elements=int(ref.size),
            mismatch_count=0,
            max_abs_error=0.0,
            max_rel_error=0.0,
            first_mismatch_index=None,
            first_mismatch_coords=None,
        )
    with np.errstate(invalid="ignore", divide="ignore"):
        abs_err = np.abs(ref - sus)
        rel_err = abs_err / np.maximum(np.abs(ref), np.finfo(np.float64).tiny)
    abs_err = np.where(np.isnan(abs_err), np.inf, abs_err)
    rel_err = np.where(np.isnan(rel_err), np.inf, rel_err)
    flat_index = int(np.flatnonzero(mismatch.reshape(-1))[0])
    coords = tuple(int(c) for c in np.unravel_index(flat_index, ref.shape))
    return MismatchAnalysis(
        tensor_name=name,
        total_elements=int(ref.size),
        mismatch_count=count,
        max_abs_error=float(abs_err.max()),
        max_rel_error=float(rel_err.max()),
        first_mismatch_index=flat_index,
        first_mismatch_coords=coords,
        reference_value=float(ref.reshape(-1)[flat_index]),
        suspect_value=float(sus.reshape(-1)[flat_index]),
    )


@dataclass(frozen=True)
class IncidentReport:
    """The full forensic record of one detection."""

    incident_id: str
    kind: str  # "divergence" | "crash"
    batch_id: int
    partition_index: int
    #: Attribution from the agree/dissent sets: the variants the vote
    #: isolated (dissenters, or the crashed variant).
    suspected_culprits: tuple[str, ...]
    agreeing_variants: tuple[str, ...]
    #: Whether the agree set outnumbers the dissent set -- when it does
    #: not, every variant is suspect and the attribution is tentative.
    attribution_confident: bool
    #: What each variant claimed, per tensor (sorted by tensor name).
    variant_summaries: dict[str, tuple[TensorSummary, ...]]
    #: Per-dissenter elementwise diffs against the agreed reference.
    mismatches: dict[str, tuple[MismatchAnalysis, ...]]
    #: The consistency reports that tripped the checkpoint.
    consistency_reports: tuple = ()
    response_action: str = "halt"
    detected_async: bool = False
    trace_id: str | None = None
    span_id: str | None = None
    error: str = ""  # crash reason (crash incidents)
    timestamp: float = field(default_factory=time.time)

    @property
    def max_abs_error(self) -> float:
        """Largest elementwise error any dissenter showed (0 if none)."""
        errors = [
            analysis.max_abs_error
            for analyses in self.mismatches.values()
            for analysis in analyses
        ]
        return max(errors) if errors else 0.0

    def to_json(self) -> dict:
        """Machine-readable rendering."""
        return {
            "incident_id": self.incident_id,
            "kind": self.kind,
            "batch_id": self.batch_id,
            "partition_index": self.partition_index,
            "suspected_culprits": list(self.suspected_culprits),
            "agreeing_variants": list(self.agreeing_variants),
            "attribution_confident": self.attribution_confident,
            "variant_summaries": {
                variant: [s.to_json() for s in summaries]
                for variant, summaries in sorted(self.variant_summaries.items())
            },
            "mismatches": {
                variant: [m.to_json() for m in analyses]
                for variant, analyses in sorted(self.mismatches.items())
            },
            "consistency_reports": [
                {
                    "tensor_name": r.tensor_name,
                    "consistent": r.consistent,
                    "cosine": r.cosine,
                    "mse": r.mse,
                    "max_abs": r.max_abs,
                    "reason": r.reason,
                }
                for r in self.consistency_reports
            ],
            "response_action": self.response_action,
            "detected_async": self.detected_async,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "error": self.error,
            "timestamp": self.timestamp,
        }

    def to_text(self) -> str:
        """Human-readable rendering for operator consoles."""
        lines = [
            f"incident {self.incident_id} [{self.kind}] "
            f"batch={self.batch_id} partition={self.partition_index}",
            f"  response: {self.response_action}"
            + ("  (detected via async cross-validation)" if self.detected_async else ""),
            f"  suspected culprit(s): {list(self.suspected_culprits)}"
            + ("" if self.attribution_confident else "  [attribution tentative: no clear majority]"),
            f"  agreeing variants:    {list(self.agreeing_variants)}",
        ]
        if self.trace_id:
            lines.append(f"  trace: {self.trace_id}  span: {self.span_id}")
        if self.error:
            lines.append(f"  error: {self.error}")
        for variant, analyses in sorted(self.mismatches.items()):
            for m in analyses:
                if not m.mismatched:
                    continue
                where = f"first at flat index {m.first_mismatch_index}"
                if m.first_mismatch_coords is not None:
                    where += f" {m.first_mismatch_coords}"
                if m.reference_value is not None and m.suspect_value is not None:
                    where += f" (ref={m.reference_value:.6g}, got={m.suspect_value:.6g})"
                lines.append(
                    f"  {variant} vs reference on {m.tensor_name!r}: "
                    f"{m.mismatch_count}/{m.total_elements} elements differ, "
                    f"max_abs={m.max_abs_error:.6g}, max_rel={m.max_rel_error:.6g}, "
                    + where
                )
        for variant, summaries in sorted(self.variant_summaries.items()):
            for s in summaries:
                lines.append(
                    f"  {variant} {s.tensor_name!r}: digest={s.digest[:12]}... "
                    f"min={s.min:.6g} max={s.max:.6g} mean={s.mean:.6g} "
                    f"nan={s.nan_count}"
                )
        for r in self.consistency_reports:
            if not r.consistent:
                lines.append(f"  checkpoint criterion failed: {r.reason}")
        return "\n".join(lines)


def build_incident_report(
    *,
    incident_id: str,
    kind: str,
    batch_id: int,
    partition_index: int,
    suspected_culprits: tuple[str, ...],
    agreeing_variants: tuple[str, ...],
    outputs_by_variant: dict[str, dict[str, np.ndarray]] | None = None,
    reference_outputs: dict[str, np.ndarray] | None = None,
    consistency_reports: tuple = (),
    response_action: str = "halt",
    detected_async: bool = False,
    trace_id: str | None = None,
    span_id: str | None = None,
    error: str = "",
) -> IncidentReport:
    """Capture one incident while the per-variant outputs are in hand."""
    outputs_by_variant = outputs_by_variant or {}
    variant_summaries = {
        variant: tuple(
            summarize_tensor(name, outputs[name]) for name in sorted(outputs)
        )
        for variant, outputs in outputs_by_variant.items()
    }
    mismatches: dict[str, tuple[MismatchAnalysis, ...]] = {}
    if reference_outputs is not None:
        for variant in suspected_culprits:
            outputs = outputs_by_variant.get(variant)
            if outputs is None:
                continue
            mismatches[variant] = tuple(
                analyze_mismatch(name, reference_outputs[name], outputs[name])
                for name in sorted(reference_outputs)
                if name in outputs
            )
    return IncidentReport(
        incident_id=incident_id,
        kind=kind,
        batch_id=batch_id,
        partition_index=partition_index,
        suspected_culprits=tuple(suspected_culprits),
        agreeing_variants=tuple(agreeing_variants),
        attribution_confident=len(agreeing_variants) > len(suspected_culprits),
        variant_summaries=variant_summaries,
        mismatches=mismatches,
        consistency_reports=tuple(consistency_reports),
        response_action=response_action,
        detected_async=detected_async,
        trace_id=trace_id,
        span_id=span_id,
        error=error,
    )


class IncidentStore:
    """Bounded, thread-safe store of the most recent incident reports."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._incidents: list[IncidentReport] = []
        self._counter = 0
        self._lock = threading.Lock()

    def new_id(self) -> str:
        """Mint the next incident id (monotonic per store)."""
        with self._lock:
            self._counter += 1
            return f"inc-{self._counter:04d}"

    def add(self, report: IncidentReport) -> IncidentReport:
        """Retain one report, evicting the oldest past capacity."""
        with self._lock:
            self._incidents.append(report)
            if len(self._incidents) > self.capacity:
                del self._incidents[0]
        return report

    def incidents(self, kind: str | None = None) -> list[IncidentReport]:
        """Retained reports, oldest first; optionally one kind only."""
        with self._lock:
            incidents = list(self._incidents)
        if kind is not None:
            incidents = [i for i in incidents if i.kind == kind]
        return incidents

    def latest(self) -> IncidentReport | None:
        """The most recent retained report."""
        with self._lock:
            return self._incidents[-1] if self._incidents else None

    def clear(self) -> None:
        """Drop every retained report (ids keep counting)."""
        with self._lock:
            self._incidents.clear()

    def __len__(self) -> int:
        return len(self._incidents)

    def to_json(self) -> list[dict]:
        """JSON rendering of the retained window."""
        return [report.to_json() for report in self.incidents()]
