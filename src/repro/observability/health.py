"""Health/SLO watchdog over the metrics registry.

A deployment's counters say what happened since boot; an operator (and
an orchestrator's readiness probe) wants to know how it is doing *now*.
:class:`HealthMonitor` snapshots the registry on every evaluation,
keeps a rolling window of snapshots, and evaluates alert rules over the
windowed *deltas*:

- :class:`RatioRule` -- windowed numerator/denominator counter ratios
  (divergence rate per checkpoint, crash rate, shed/timeout rate per
  request);
- :class:`QuantileRule` -- windowed quantiles estimated from histogram
  bucket deltas (p95 stage latency).

Each rule yields OK/WARN/CRIT with a reason; the worst rule wins.  The
verdict is mirrored into the ``mvtee_health_status`` gauge (0/1/2) and
status *transitions* are appended to the flight recorder, so the audit
trail shows when the deployment degraded and when it recovered.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.observability.recorder import KIND_HEALTH, FlightRecorder

__all__ = [
    "HealthMonitor",
    "HealthReport",
    "HealthStatus",
    "QuantileRule",
    "RatioRule",
    "RuleResult",
    "default_rules",
]


class HealthStatus(enum.Enum):
    """Traffic-light verdict of one evaluation."""

    OK = "ok"
    WARN = "warn"
    CRIT = "crit"

    @property
    def severity(self) -> int:
        """0 for OK, 1 for WARN, 2 for CRIT (gauge encoding)."""
        return {"ok": 0, "warn": 1, "crit": 2}[self.value]


@dataclass(frozen=True)
class RuleResult:
    """One rule's verdict with the value that produced it."""

    rule: str
    status: HealthStatus
    value: float
    reason: str


@dataclass(frozen=True)
class HealthReport:
    """The combined verdict of one evaluation."""

    status: HealthStatus
    results: tuple[RuleResult, ...]
    window_s: float
    timestamp: float

    @property
    def reasons(self) -> list[str]:
        """Reasons of every non-OK rule."""
        return [r.reason for r in self.results if r.status is not HealthStatus.OK]

    def to_json(self) -> dict:
        return {
            "status": self.status.value,
            "window_s": self.window_s,
            "timestamp": self.timestamp,
            "rules": [
                {
                    "rule": r.rule,
                    "status": r.status.value,
                    "value": r.value,
                    "reason": r.reason,
                }
                for r in self.results
            ],
        }


class _Window:
    """Windowed deltas between the oldest and newest registry snapshot."""

    def __init__(self, oldest: dict, newest: dict, elapsed: float):
        self._oldest = oldest
        self._newest = newest
        self.elapsed = elapsed

    def counter_delta(self, name: str) -> float:
        """Increase of a counter total across the window."""
        return self._newest.get(name, (0.0,))[0] - self._oldest.get(name, (0.0,))[0]

    def histogram_delta(self, name: str):
        """(bounds, windowed cumulative counts, windowed count) or None."""
        new = self._newest.get(name)
        if new is None or len(new) != 3:
            return None
        bounds, new_counts, new_count = new
        old = self._oldest.get(name)
        if old is None or len(old) != 3 or old[0] != bounds:
            old_counts, old_count = [0] * len(new_counts), 0
        else:
            _, old_counts, old_count = old
        counts = [n - o for n, o in zip(new_counts, old_counts)]
        return bounds, counts, new_count - old_count


class HealthRule(Protocol):
    """Evaluates one SLO over a window of metric deltas."""

    name: str

    def evaluate(self, window: _Window) -> RuleResult: ...


def _grade(
    name: str, value: float, warn: float, crit: float, describe: str
) -> RuleResult:
    if value >= crit:
        status = HealthStatus.CRIT
    elif value >= warn:
        status = HealthStatus.WARN
    else:
        status = HealthStatus.OK
    reason = f"{describe} = {value:.4g}"
    if status is not HealthStatus.OK:
        threshold = crit if status is HealthStatus.CRIT else warn
        reason += f" >= {status.value} threshold {threshold:g}"
    return RuleResult(rule=name, status=status, value=value, reason=reason)


@dataclass(frozen=True)
class RatioRule:
    """Windowed counter ratio (e.g. divergences per checkpoint).

    ``denominators`` may list several counters whose deltas are summed
    (e.g. shed rate over served + shed).  A quiet window (denominator
    delta 0) is healthy by definition.
    """

    name: str
    numerator: str
    denominators: tuple[str, ...]
    warn: float
    crit: float

    def evaluate(self, window: _Window) -> RuleResult:
        num = window.counter_delta(self.numerator)
        den = sum(window.counter_delta(d) for d in self.denominators)
        value = num / den if den > 0 else 0.0
        return _grade(self.name, value, self.warn, self.crit, f"{self.name} ratio")


@dataclass(frozen=True)
class QuantileRule:
    """Windowed histogram quantile (e.g. p95 stage latency, seconds)."""

    name: str
    histogram: str
    q: float
    warn: float
    crit: float

    def evaluate(self, window: _Window) -> RuleResult:
        delta = window.histogram_delta(self.histogram)
        describe = f"{self.name} p{int(self.q * 100)}"
        if delta is None:
            return RuleResult(
                rule=self.name,
                status=HealthStatus.OK,
                value=0.0,
                reason=f"{describe}: no data",
            )
        bounds, counts, count = delta
        if count <= 0:
            return RuleResult(
                rule=self.name,
                status=HealthStatus.OK,
                value=0.0,
                reason=f"{describe}: no observations in window",
            )
        value = quantile_from_buckets(bounds, counts, count, self.q)
        return _grade(self.name, value, self.warn, self.crit, describe)


def default_rules() -> tuple:
    """The stock SLO rule set.

    Ratios are per-window: divergences and crashes per checkpoint
    evaluated, sheds and timeouts per request that reached a terminal
    state.  The latency bound is deliberately loose -- the simulated
    stages run in milliseconds; deployments with real latency targets
    pass their own rules.
    """
    return (
        RatioRule(
            "divergence-rate",
            numerator="mvtee_divergences_total",
            denominators=("mvtee_checkpoints_total",),
            warn=0.02,
            crit=0.2,
        ),
        RatioRule(
            "crash-rate",
            numerator="mvtee_crashes_total",
            denominators=("mvtee_checkpoints_total",),
            warn=0.02,
            crit=0.2,
        ),
        RatioRule(
            "shed-rate",
            numerator="mvtee_requests_shed_total",
            denominators=(
                "mvtee_requests_served_total",
                "mvtee_requests_shed_total",
            ),
            warn=0.05,
            crit=0.5,
        ),
        RatioRule(
            "timeout-rate",
            numerator="mvtee_requests_timeout_total",
            denominators=(
                "mvtee_requests_served_total",
                "mvtee_requests_timeout_total",
            ),
            warn=0.05,
            crit=0.5,
        ),
        QuantileRule(
            "stage-latency",
            histogram="mvtee_stage_seconds",
            q=0.95,
            warn=1.0,
            crit=5.0,
        ),
    )


class HealthMonitor:
    """Rolling-window SLO evaluation over one metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        rules: tuple | None = None,
        *,
        window_s: float = 60.0,
        recorder: FlightRecorder | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self.registry = registry
        self.rules = tuple(rules) if rules is not None else default_rules()
        self.window_s = window_s
        self.recorder = recorder
        self._clock = clock
        #: (timestamp, snapshot) pairs inside the window, oldest first.
        self._samples: list[tuple[float, dict]] = []
        self._last_status: HealthStatus | None = None

    def _snapshot(self) -> dict:
        """Counter totals and histogram bucket aggregates, per metric.

        Counters collapse to their total across label sets; histograms
        to per-bucket cumulative counts summed across label sets --
        rates and quantiles here are deployment-wide SLOs, not
        per-partition ones.
        """
        snapshot: dict = {}
        for name in self.registry.names():
            instrument = self.registry.get(name)
            if isinstance(instrument, Counter):
                snapshot[name] = (instrument.total(),)
            elif isinstance(instrument, Histogram):
                snapshot[name] = instrument.aggregate()
        return snapshot

    def evaluate(self) -> HealthReport:
        """Take a snapshot, slide the window, grade every rule."""
        now = float(self._clock())
        self._samples = [
            (t, snap) for t, snap in self._samples if t >= now - self.window_s
        ]
        current = self._snapshot()
        self._samples.append((now, current))
        oldest_t, oldest = self._samples[0]
        window = _Window(oldest, current, max(0.0, now - oldest_t))
        results = tuple(rule.evaluate(window) for rule in self.rules)
        status = max(
            (r.status for r in results),
            key=lambda s: s.severity,
            default=HealthStatus.OK,
        )
        report = HealthReport(
            status=status, results=results, window_s=self.window_s, timestamp=now
        )
        self.registry.gauge(
            "mvtee_health_status", "Deployment health (0=ok, 1=warn, 2=crit)"
        ).set(status.severity)
        if status is not self._last_status:
            if self.recorder is not None:
                self.recorder.record(
                    KIND_HEALTH,
                    previous=self._last_status.value if self._last_status else None,
                    status=status.value,
                    reasons=report.reasons,
                )
            self._last_status = status
        return report

    @property
    def status(self) -> HealthStatus | None:
        """The last evaluated status (None before the first evaluation)."""
        return self._last_status
