"""A process-wide registry of named counters, gauges and histograms.

Every component on the MVTEE hot path (scheduler, monitor, transports,
variant hosts, the adaptive controller, the serving surface) records
into a :class:`MetricsRegistry` instead of hand-rolled dict entries.
The registry renders both the Prometheus text exposition format and a
JSON document, so the same numbers back operator scraping and offline
experiment analysis.

A module-level default registry (:func:`get_global_registry`) serves
components that are not handed an explicit one; tests and services that
need isolation construct their own.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "get_global_registry",
    "quantile_from_buckets",
    "set_global_registry",
]

#: Latency-oriented default buckets (seconds), Prometheus-style.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Power-of-two count buckets for size-like observations (batch sizes,
#: queue depths) where the latency buckets make no sense.
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _labelkey(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline must be rendered as ``\\\\``,
    ``\\"`` and ``\\n`` inside the quoted label value (backslash first,
    so the escapes themselves are not re-escaped).
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labelstr(key: tuple) -> str:
    if not key:
        return ""
    return (
        "{"
        + ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in key)
        + "}"
    )


class _Instrument:
    """Shared naming/label plumbing of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def samples(self) -> Iterable[tuple[str, str, float]]:
        """(sample name, rendered labels, value) triples."""
        raise NotImplementedError

    def to_json(self):
        """JSON value for the registry's JSON exposition."""
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to one label set's series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _labelkey(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of one label set (0 if never incremented)."""
        with self._lock:
            return self._values.get(_labelkey(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._values.values())

    def samples(self):
        # Snapshot under the lock, yield outside it: a concurrent inc()
        # may add a series mid-iteration otherwise.
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield self.name, _labelstr(key), value

    def to_json(self):
        with self._lock:
            items = sorted(self._values.items())
        return {_labelstr(key) or "": value for key, value in items}


class Gauge(_Instrument):
    """A value that can go up and down, optionally per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        """Overwrite one label set's value."""
        with self._lock:
            self._values[_labelkey(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Adjust one label set's value by ``amount``."""
        key = _labelkey(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Adjust one label set's value by ``-amount``."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current value of one label set (0 if never set)."""
        with self._lock:
            return self._values.get(_labelkey(labels), 0.0)

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield self.name, _labelstr(key), value

    def to_json(self):
        with self._lock:
            items = sorted(self._values.items())
        return {_labelstr(key) or "": value for key, value in items}


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int):
        self.bucket_counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Cumulative-bucket histogram of observations, per label set."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        self._series: dict[tuple, _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into one label set's series."""
        key = _labelkey(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
            series.sum += value
            series.count += 1

    def sum(self, **labels) -> float:
        """Sum of observations in one label set."""
        with self._lock:
            series = self._series.get(_labelkey(labels))
            return series.sum if series else 0.0

    def count(self, **labels) -> int:
        """Number of observations in one label set."""
        with self._lock:
            series = self._series.get(_labelkey(labels))
            return series.count if series else 0

    def label_sets(self) -> list[dict]:
        """The label sets that have received observations."""
        with self._lock:
            keys = sorted(self._series)
        return [dict(key) for key in keys]

    def aggregate(self) -> tuple[tuple, list, int]:
        """(bounds, cumulative counts, count) summed over all label sets.

        The deployment-wide view the health watchdog snapshots: one
        bucket vector regardless of how the observations were labelled.
        """
        with self._lock:
            totals = [0] * len(self.buckets)
            count = 0
            for series in self._series.values():
                for i, c in enumerate(series.bucket_counts):
                    totals[i] += c
                count += series.count
        return self.buckets, totals, count

    def quantile(self, q: float, **labels) -> float:
        """Estimate the ``q``-quantile of one label set from the buckets.

        Linear interpolation within the containing bucket (Prometheus
        ``histogram_quantile`` style); observations beyond the largest
        finite bound (the implicit +Inf bucket) clamp to that bound.
        Returns ``nan`` when the label set has no observations.
        """
        with self._lock:
            series = self._series.get(_labelkey(labels))
            if series is None or series.count == 0:
                return float("nan")
            counts = list(series.bucket_counts)
            count = series.count
        return quantile_from_buckets(self.buckets, counts, count, q)

    def _snapshot(self) -> list[tuple[tuple, list, float, int]]:
        """(key, bucket counts, sum, count) per series, lock-consistent.

        Series objects mutate in place under ``observe``, so render
        paths copy them under the lock instead of iterating live state.
        """
        with self._lock:
            return [
                (key, list(series.bucket_counts), series.sum, series.count)
                for key, series in sorted(self._series.items())
            ]

    def samples(self):
        for key, bucket_counts, total, count in self._snapshot():
            # observe() increments every bucket whose bound admits the
            # value, so the stored counts are already cumulative.
            for bound, cumulative in zip(self.buckets, bucket_counts):
                labels = key + (("le", _format_float(bound)),)
                yield f"{self.name}_bucket", _labelstr(tuple(sorted(labels))), cumulative
            labels = key + (("le", "+Inf"),)
            yield f"{self.name}_bucket", _labelstr(tuple(sorted(labels))), count
            yield f"{self.name}_sum", _labelstr(key), total
            yield f"{self.name}_count", _labelstr(key), count

    def to_json(self):
        out = {}
        for key, bucket_counts, total, count in self._snapshot():
            out[_labelstr(key) or ""] = {
                "buckets": {
                    _format_float(b): c for b, c in zip(self.buckets, bucket_counts)
                },
                "sum": total,
                "count": count,
            }
        return out


def quantile_from_buckets(
    bounds: tuple, cumulative_counts: list, total: int, q: float
) -> float:
    """Quantile estimate from cumulative bucket counts.

    ``bounds`` are the finite upper bounds, ``cumulative_counts`` the
    cumulative count at each bound, ``total`` the overall observation
    count (the +Inf bucket).  The rank ``q * total`` is located in its
    bucket and linearly interpolated between the bucket's edges; ranks
    past the last finite bound clamp to that bound (the +Inf bucket has
    no upper edge to interpolate toward).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if total <= 0:
        return float("nan")
    rank = q * total
    lower_bound = 0.0
    lower_count = 0
    for bound, cumulative in zip(bounds, cumulative_counts):
        if cumulative >= rank:
            in_bucket = cumulative - lower_count
            if in_bucket <= 0:
                return float(bound)
            fraction = (rank - lower_count) / in_bucket
            return float(lower_bound + (bound - lower_bound) * fraction)
        lower_bound = bound
        lower_count = cumulative
    # Rank falls in the +Inf bucket: clamp to the largest finite bound.
    return float(bounds[-1]) if bounds else float("nan")


def _format_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    formatted = repr(float(value))
    return formatted[:-2] if formatted.endswith(".0") else formatted


class MetricsRegistry:
    """Get-or-create registry of named instruments with exposition."""

    def __init__(self):
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, help, **kwargs)
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        """Look an instrument up without creating it."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._instruments.clear()

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines = []
        for name, instrument in instruments:
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for sample_name, labels, value in instrument.samples():
                lines.append(f"{sample_name}{labels} {_render_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> dict:
        """JSON exposition: name -> {kind, help, values}."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {
            name: {
                "kind": instrument.kind,
                "help": instrument.help,
                "values": instrument.to_json(),
            }
            for name, instrument in instruments
        }


def _render_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


_GLOBAL_REGISTRY = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous
