"""A tamper-evident flight recorder for security-relevant events.

The monitor's whole purpose is *detection*, and detections are
diagnosed post-hoc: an operator reconstructing an incident needs an
ordered, trustworthy record of what the deployment saw and did.  The
:class:`FlightRecorder` is that record -- a bounded, thread-safe ring
buffer of structured :class:`AuditEvent` entries (checkpoints compared,
divergences, crashes, protective responses, variant replacements,
request sheds/timeouts, health transitions).

Each entry is hash-chained: its digest is an HMAC-SHA256 (reusing
:mod:`repro.crypto`'s primitives) keyed by the previous entry's digest
over the entry's canonical JSON body.  Like the monitor's binding
ledger, the chain makes silent mutation of history *detectable* --
:meth:`FlightRecorder.verify_chain` recomputes every digest and link --
while JSONL export/replay moves the log out of the TEE for offline
forensics.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.crypto.kdf import hmac_sha256

__all__ = [
    "AuditChainError",
    "AuditEvent",
    "FlightRecorder",
    "GENESIS_DIGEST",
    "KIND_CHAOS_INJECTED",
    "KIND_CHAOS_RESTORED",
    "KIND_CHECKPOINT",
    "KIND_CRASH",
    "KIND_DIVERGENCE",
    "KIND_ENGINE_ERROR",
    "KIND_HEALTH",
    "KIND_REQUEST_SHED",
    "KIND_REQUEST_TIMEOUT",
    "KIND_RESPONSE",
    "KIND_ROLLING_UPDATE",
    "KIND_VARIANT_REPLACED",
    "KIND_WORKER_EXITED",
    "KIND_WORKER_RESTARTED",
    "KIND_WORKER_STARTED",
]

#: Chain anchor of the very first entry.
GENESIS_DIGEST = "0" * 64

#: The event vocabulary components record.  Plain strings so operators
#: can add deployment-specific kinds without touching this module.
KIND_CHECKPOINT = "checkpoint"
KIND_DIVERGENCE = "divergence"
KIND_CRASH = "crash"
KIND_RESPONSE = "response"
KIND_VARIANT_REPLACED = "variant-replaced"
KIND_REQUEST_SHED = "request-shed"
KIND_REQUEST_TIMEOUT = "request-timeout"
KIND_ROLLING_UPDATE = "rolling-update"
KIND_HEALTH = "health-transition"
KIND_ENGINE_ERROR = "engine-error"
KIND_WORKER_STARTED = "worker-started"
KIND_WORKER_EXITED = "worker-exited"
KIND_WORKER_RESTARTED = "worker-restarted"
KIND_CHAOS_INJECTED = "chaos-injected"
KIND_CHAOS_RESTORED = "chaos-restored"


class AuditChainError(Exception):
    """Raised when the audit chain fails verification (tampering)."""


def _canonical(value):
    """Coerce event data to a canonical JSON-stable form.

    Tuples become lists, numpy scalars become Python numbers, and
    anything else non-JSON falls back to ``str`` -- the digest must be
    reproducible from the serialized form alone.
    """
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return _canonical(item())
    return str(value)


def _canonical_body(sequence: int, kind: str, timestamp: float, data: dict) -> bytes:
    return json.dumps(
        {"sequence": sequence, "kind": kind, "timestamp": timestamp, "data": data},
        sort_keys=True,
        separators=(",", ":"),
    ).encode()


@dataclass(frozen=True)
class AuditEvent:
    """One entry of the flight recorder's hash chain."""

    sequence: int
    kind: str
    timestamp: float
    data: dict
    previous_digest: str
    digest: str

    @staticmethod
    def compute_digest(
        sequence: int, kind: str, timestamp: float, data: dict, previous_digest: str
    ) -> str:
        """HMAC-SHA256 of the canonical body, keyed by the previous digest."""
        body = _canonical_body(sequence, kind, timestamp, data)
        return hmac_sha256(bytes.fromhex(previous_digest), body).hex()

    def recompute_digest(self) -> str:
        """The digest this entry *should* carry given its fields."""
        return self.compute_digest(
            self.sequence, self.kind, self.timestamp, self.data, self.previous_digest
        )

    def to_json(self) -> dict:
        """Flat JSON form (one JSONL line on export)."""
        return {
            "sequence": self.sequence,
            "kind": self.kind,
            "timestamp": self.timestamp,
            "data": self.data,
            "previous_digest": self.previous_digest,
            "digest": self.digest,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "AuditEvent":
        """Rebuild one entry from its JSONL form."""
        return cls(
            sequence=int(doc["sequence"]),
            kind=str(doc["kind"]),
            timestamp=float(doc["timestamp"]),
            data=dict(doc["data"]),
            previous_digest=str(doc["previous_digest"]),
            digest=str(doc["digest"]),
        )


class FlightRecorder:
    """Bounded, thread-safe, hash-chained audit log.

    The buffer keeps the most recent ``capacity`` events; the chain
    digest continues across evictions, so a retained window still
    verifies and still binds to everything that came before it.
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        clock: Callable[[], float] = time.time,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._events: list[AuditEvent] = []
        self._sequence = 0
        self._last_digest = GENESIS_DIGEST
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, kind: str, **data) -> AuditEvent:
        """Append one event; returns the chained entry."""
        payload = _canonical(data)
        with self._lock:
            timestamp = float(self._clock())
            digest = AuditEvent.compute_digest(
                self._sequence, kind, timestamp, payload, self._last_digest
            )
            event = AuditEvent(
                sequence=self._sequence,
                kind=kind,
                timestamp=timestamp,
                data=payload,
                previous_digest=self._last_digest,
                digest=digest,
            )
            self._events.append(event)
            if len(self._events) > self.capacity:
                del self._events[0]
            self._sequence += 1
            self._last_digest = digest
            return event

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[AuditEvent]:
        """Retained events, oldest first; optionally one kind only."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        return events

    def last(self) -> AuditEvent | None:
        """The most recent retained event."""
        with self._lock:
            return self._events[-1] if self._events else None

    def __len__(self) -> int:
        return len(self._events)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (>= retained once the buffer wraps)."""
        return self._sequence

    # ------------------------------------------------------------------
    # Chain verification
    # ------------------------------------------------------------------

    def verify_chain(self) -> int:
        """Verify the retained window; returns the number of entries checked.

        Raises :class:`AuditChainError` if any entry's digest does not
        recompute or any link is broken -- i.e. if the log was mutated
        after the fact.
        """
        return self.verify_events(self.events())

    @staticmethod
    def verify_events(events: Iterable[AuditEvent]) -> int:
        """Verify an event sequence (e.g. a loaded JSONL export).

        The first entry anchors the chain (its ``previous_digest`` is
        taken as given -- a retained window need not start at genesis);
        every entry's digest must recompute and every adjacent pair must
        link.  Returns the number of entries verified.
        """
        previous: AuditEvent | None = None
        checked = 0
        for event in events:
            if event.recompute_digest() != event.digest:
                raise AuditChainError(
                    f"audit entry {event.sequence} digest mismatch (entry mutated)"
                )
            if previous is not None:
                if event.sequence != previous.sequence + 1:
                    raise AuditChainError(
                        f"audit chain gap: entry {previous.sequence} -> {event.sequence}"
                    )
                if event.previous_digest != previous.digest:
                    raise AuditChainError(
                        f"audit chain broken at entry {event.sequence}"
                    )
            previous = event
            checked += 1
        return checked

    # ------------------------------------------------------------------
    # Export / replay
    # ------------------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write the retained window as JSONL; returns entries written."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.to_json(), sort_keys=True) + "\n")
        return len(events)

    @staticmethod
    def load_jsonl(path) -> list[AuditEvent]:
        """Load a JSONL export (no verification -- see :meth:`replay`)."""
        events = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(AuditEvent.from_json(json.loads(line)))
        return events

    @classmethod
    def replay(cls, path) -> list[AuditEvent]:
        """Load *and verify* a JSONL export; the forensic entry point.

        Raises :class:`AuditChainError` if the file was tampered with.
        """
        events = cls.load_jsonl(path)
        cls.verify_events(events)
        return events
