"""The observability sink bundle shared by every serving surface.

Deployments, serving engines and per-run options all accept the same
trio of observability sinks -- a span tracer, a metrics registry and a
tamper-evident flight recorder.  :class:`Sinks` bundles the trio so the
APIs take one ``sinks=`` argument instead of repeating three kwargs;
the individual ``tracer=`` / ``metrics=`` / ``recorder=`` spellings are
kept for one deprecation cycle (``registry=`` on the serving engine is
the same sink under its historical name).

``None`` fields mean "use the surface's default": the process-wide
registry, the deployment's recorder, no tracer.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.recorder import FlightRecorder
    from repro.observability.tracing import Tracer

__all__ = ["Sinks", "coerce_sinks"]


@dataclass(frozen=True)
class Sinks:
    """One bundle of observability sinks: tracer + metrics + recorder."""

    tracer: "Tracer | None" = None
    metrics: "MetricsRegistry | None" = None
    recorder: "FlightRecorder | None" = None

    def merged_over(self, other: "Sinks | None") -> "Sinks":
        """This bundle with ``other`` filling any ``None`` fields."""
        if other is None:
            return self
        return Sinks(
            tracer=self.tracer if self.tracer is not None else other.tracer,
            metrics=self.metrics if self.metrics is not None else other.metrics,
            recorder=(
                self.recorder if self.recorder is not None else other.recorder
            ),
        )

    def with_metrics(self, metrics: "MetricsRegistry | None") -> "Sinks":
        """A copy with the metrics registry replaced."""
        return replace(self, metrics=metrics)


def coerce_sinks(
    sinks: Sinks | None,
    *,
    owner: str,
    tracer=None,
    metrics=None,
    recorder=None,
    stacklevel: int = 3,
) -> Sinks:
    """Resolve a ``sinks=`` bundle against deprecated individual kwargs.

    The legacy kwargs still work for one deprecation cycle but emit a
    single :class:`DeprecationWarning` per call regardless of how many
    of them are passed; combining them with an explicit ``sinks=``
    bundle is ambiguous and raises ``ValueError``.
    """
    legacy = {
        name: value
        for name, value in (
            ("tracer", tracer),
            ("metrics", metrics),
            ("recorder", recorder),
        )
        if value is not None
    }
    if legacy:
        if sinks is not None:
            raise ValueError(
                f"{owner}: pass sinks=Sinks(...) or the individual "
                f"{sorted(legacy)} kwargs, not both"
            )
        warnings.warn(
            f"{owner}: the {sorted(legacy)} kwargs are deprecated; pass "
            f"sinks=Sinks({', '.join(f'{k}=...' for k in sorted(legacy))})",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return Sinks(**legacy)
    return sinks if sinks is not None else Sinks()
