"""Hierarchical tracing for the MVTEE hot path.

The paper's evaluation (§6, Figures 9-14) is entirely about *where time
goes*: per-partition stage latency, checkpoint overhead, the cost of
sync vs. async cross-validation.  A :class:`Tracer` produces the span
tree that answers those questions for one deployment::

    infer                       one scheduler run
    └── batch                   one batch through the pipeline
        └── stage               one partition execution
            ├── variant         one monitor<->variant round trip
            └── checkpoint      one consistency vote

Spans carry wall-clock timings plus structured attributes (partition
index, variant id, path mode, bytes protected), and completed root
spans flow to pluggable :class:`SpanExporter` sinks -- an in-memory
ring buffer for tests/operators and a JSONL file sink for offline
analysis.
"""

from __future__ import annotations

import json
import secrets
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Protocol

__all__ = [
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "NullTracer",
    "Span",
    "SpanExporter",
    "Tracer",
    "format_span_tree",
]


@dataclass(eq=False)
class Span:
    """One timed operation in the trace hierarchy."""

    name: str
    attributes: dict = field(default_factory=dict)
    start_time: float = field(default_factory=time.perf_counter)
    end_time: float | None = None
    status: str = "ok"
    children: list["Span"] = field(default_factory=list)
    _span_id: str | None = field(default=None, repr=False)

    @property
    def span_id(self) -> str:
        """Stable random identifier, minted on first access.

        Lazy so the untraced hot path (``NullTracer`` creates a span per
        variant round trip) never pays for id generation.
        """
        if self._span_id is None:
            self._span_id = secrets.token_hex(8)
        return self._span_id

    def set_attribute(self, key: str, value) -> None:
        """Attach one structured attribute."""
        self.attributes[key] = value

    def record_error(self, error: str) -> None:
        """Mark the span failed and remember why."""
        self.status = "error"
        self.attributes["error"] = error

    def end(self) -> None:
        """Close the span (idempotent)."""
        if self.end_time is None:
            self.end_time = time.perf_counter()

    @property
    def ended(self) -> bool:
        """Whether the span has been closed."""
        return self.end_time is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now for a still-open span)."""
        end = self.end_time if self.end_time is not None else time.perf_counter()
        return end - self.start_time

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def to_json(self) -> dict:
        """Nested JSON form (what the JSONL sink writes)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "duration_s": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.to_json() for child in self.children],
        }


class SpanExporter(Protocol):
    """Receives each completed *root* span (the full tree under it)."""

    def export(self, span: Span) -> None: ...


class InMemorySpanExporter:
    """Ring buffer of the most recent completed root spans."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)

    def export(self, span: Span) -> None:
        """Keep the finished tree, evicting the oldest past capacity."""
        self._spans.append(span)

    @property
    def spans(self) -> list[Span]:
        """Retained root spans, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        """Drop every retained span."""
        self._spans.clear()


class JsonlSpanExporter:
    """Appends one JSON document per completed root span to a file."""

    def __init__(self, path):
        self.path = path
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        """Serialize the finished tree as one JSONL line."""
        line = json.dumps(span.to_json()) + "\n"
        # Concurrent engine workers export roots concurrently; one
        # writer at a time keeps every JSONL line intact.
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)


class Tracer:
    """Builds span trees; nesting follows an explicit or implicit parent.

    ``span()`` is a context manager: without an explicit ``parent`` the
    new span nests under the innermost open ``span()`` block; with one
    (needed by the pipelined scheduler, where batches interleave across
    ticks) it attaches there while still acting as the implicit parent
    for spans opened inside the block.  ``start_span``/``Span.end`` is
    the manual variant for spans that stay open across control flow.
    """

    def __init__(self, exporters: list[SpanExporter] | None = None):
        self.exporters: list[SpanExporter] = list(exporters or [])
        self.roots: list[Span] = []
        self._tls = threading.local()

    @property
    def _stack(self) -> list[Span]:
        """The open-span stack of the *calling* thread.

        Per thread so concurrent runs (engine workers overlapping
        batches on one tracer) each build their own span tree instead
        of nesting under whichever span another thread happens to have
        open.
        """
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open context-manager span, if any."""
        return self._stack[-1] if self._stack else None

    def trace_id(self) -> str | None:
        """Id of the outermost open span (the trace this code runs in).

        ``None`` outside any ``span()`` block -- forensics callers use
        this to correlate an incident with the span tree it occurred in.
        """
        return self._stack[0].span_id if self._stack else None

    def current_span_id(self) -> str | None:
        """Id of the innermost open span, or ``None`` outside one."""
        current = self.current()
        return current.span_id if current is not None else None

    def start_span(self, name: str, *, parent: Span | None = None, **attributes) -> Span:
        """Open a span without entering it (caller ends it explicitly)."""
        span = Span(name=name, attributes=dict(attributes))
        anchor = parent if parent is not None else self.current()
        if anchor is not None:
            anchor.children.append(span)
        else:
            self.roots.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close a manually started span, exporting if it is a root."""
        span.end()
        if span in self.roots:
            self._export(span)

    @contextmanager
    def span(self, name: str, *, parent: Span | None = None, **attributes):
        """Open a span for the duration of the ``with`` block."""
        span = self.start_span(name, parent=parent, **attributes)
        self._stack.append(span)
        try:
            yield span
        except Exception as exc:
            span.record_error(str(exc))
            raise
        finally:
            self._stack.pop()
            span.end()
            if span in self.roots:
                self._export(span)

    def _export(self, span: Span) -> None:
        for exporter in self.exporters:
            exporter.export(span)

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name, across every root."""
        return [span for root in self.roots for span in root.find(name)]

    def clear(self) -> None:
        """Forget every recorded root (open context spans keep working)."""
        self.roots.clear()

    def format_tree(self) -> str:
        """Human-readable rendering of every recorded root span."""
        return "\n".join(format_span_tree(root) for root in self.roots)


class NullTracer(Tracer):
    """A tracer that records nothing: the default for untraced runs.

    Spans are still created and timed (callers may read ``duration``),
    but nothing is retained or exported, so the hot path stays
    allocation-light when observability is switched off.
    """

    def start_span(self, name: str, *, parent: Span | None = None, **attributes) -> Span:
        return Span(name=name, attributes=dict(attributes))

    def end_span(self, span: Span) -> None:
        span.end()

    @contextmanager
    def span(self, name: str, *, parent: Span | None = None, **attributes):
        span = Span(name=name, attributes=dict(attributes))
        try:
            yield span
        finally:
            span.end()


def format_span_tree(span: Span, *, indent: int = 0) -> str:
    """Render one span tree as an indented outline."""
    attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
    line = "  " * indent + f"{span.name} ({span.duration * 1000:.2f} ms)"
    if attrs:
        line += f" [{attrs}]"
    if span.status != "ok":
        line += " !error"
    lines = [line]
    for child in span.children:
        lines.append(format_span_tree(child, indent=indent + 1))
    return "\n".join(lines)
