"""The offline ML MVX tool (Figure 2, §5.1).

Streamlines model inspection, partitioning and variant construction:

- :mod:`repro.offline.inspect` -- the model inspection module;
- :mod:`repro.offline.tool` -- the end-to-end tool driving partitioning
  (manual or automatic mode) and variant-pool construction from JSON
  configuration;
- :mod:`repro.offline.images` -- monitor/variant "container image"
  packaging (Gramine TEE OS + public executables and manifests).
"""

from repro.offline.inspect import ModelReport, inspect_model
from repro.offline.images import ContainerImage, build_monitor_image, build_variant_image
from repro.offline.tool import OfflineTool, ToolConfig

__all__ = [
    "ContainerImage",
    "ModelReport",
    "OfflineTool",
    "ToolConfig",
    "build_monitor_image",
    "build_variant_image",
    "inspect_model",
]
