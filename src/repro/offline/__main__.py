"""``python -m repro.offline`` runs the offline tool CLI."""

from repro.offline.cli import main

raise SystemExit(main())
