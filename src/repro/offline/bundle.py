"""Persistent offline bundles: build once, deploy anywhere.

The offline phase runs on the model owner's premises; deployment may
happen later and elsewhere.  A *bundle* is the on-disk form of a
:class:`~repro.offline.tool.ToolOutput`:

- ``model.bin`` + ``partitions.json`` -- the partitioned model;
- ``report.json`` -- the inspection report;
- ``variants/<id>/`` -- each variant's spec, public init files and
  sealed private files (safe to hand to the orchestrator);
- ``keys.json`` -- the variant key-derivation keys.  OWNER SECRET: this
  file never leaves the owner's trust domain; it is what the monitor
  distributes over attested channels at bootstrap.

``load_bundle`` restores a fully functional ToolOutput (the plaintext
variant models are recovered by unsealing with the owner's keys), so
``bootstrap_deployment`` works on a loaded bundle unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.crypto.keys import KeyManager, KeyRecord
from repro.crypto.sealed import SealedBlob, unseal_bytes
from repro.graph.model import ModelGraph
from repro.offline.images import build_monitor_image, build_variant_image
from repro.offline.inspect import inspect_model
from repro.offline.tool import ToolOutput
from repro.partition.partition import Partition, PartitionSet
from repro.variants.manifests import variant_paths
from repro.variants.pool import VariantArtifact, VariantPool
from repro.variants.spec import VariantSpec

__all__ = ["load_bundle", "save_bundle"]

_FILE_KEYS = ("init", "stage2_manifest", "model", "config", "main")


def save_bundle(output: ToolOutput, directory: str | Path) -> Path:
    """Write a ToolOutput to disk; returns the bundle directory."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    (root / "model.bin").write_bytes(output.partition_set.model.to_bytes())
    (root / "report.json").write_text(json.dumps(output.report.to_json(), indent=2))
    (root / "partitions.json").write_text(
        json.dumps(
            [list(p.node_names) for p in output.partition_set.partitions], indent=2
        )
    )
    keys = {}
    for artifacts in output.pool.artifacts.values():
        for artifact in artifacts:
            variant_dir = root / "variants" / artifact.variant_id
            variant_dir.mkdir(parents=True, exist_ok=True)
            (variant_dir / "spec.json").write_text(
                json.dumps(artifact.spec.to_json(), indent=2)
            )
            for key in _FILE_KEYS:
                path = artifact.paths[key]
                (variant_dir / f"{key}.bin").write_bytes(artifact.host_files[path])
            record = artifact.key_record
            keys[record.key_id] = {
                "key": record.key.hex(),
                "usage_limit": record.usage_limit,
                "derivations": record.derivations,
                "generation": record.generation,
            }
    (root / "keys.json").write_text(json.dumps(keys, indent=2, sort_keys=True))
    return root


def load_bundle(directory: str | Path) -> ToolOutput:
    """Restore a ToolOutput from a bundle directory."""
    root = Path(directory)
    model = ModelGraph.from_bytes((root / "model.bin").read_bytes())
    node_lists = json.loads((root / "partitions.json").read_text())
    partition_set = PartitionSet(
        model=model,
        partitions=[
            Partition(index=i, node_names=tuple(names))
            for i, names in enumerate(node_lists)
        ],
    )
    key_data = json.loads((root / "keys.json").read_text())
    key_manager = KeyManager()
    pool = VariantPool(partition_set=partition_set)
    for variant_dir in sorted((root / "variants").iterdir()):
        spec = VariantSpec.from_json(json.loads((variant_dir / "spec.json").read_text()))
        entry = key_data[spec.variant_id]
        record = KeyRecord(
            key_id=spec.variant_id,
            key=bytes.fromhex(entry["key"]),
            usage_limit=int(entry["usage_limit"]),
            derivations=int(entry["derivations"]),
            generation=int(entry["generation"]),
        )
        key_manager._records[spec.variant_id] = record
        paths = variant_paths(spec)
        host_files = {
            paths[key]: (variant_dir / f"{key}.bin").read_bytes()
            for key in _FILE_KEYS
        }
        sealed_model = SealedBlob.from_bytes(host_files[paths["model"]])
        variant_model = ModelGraph.from_bytes(
            unseal_bytes(record.key, record.key_id, sealed_model)
        )
        from repro.variants.manifests import variant_manifests

        init_manifest, second_manifest = variant_manifests(spec)
        pool.add(
            VariantArtifact(
                spec=spec,
                model=variant_model,
                key_record=record,
                init_manifest=init_manifest,
                second_manifest=second_manifest,
                host_files=host_files,
                paths=paths,
            )
        )
    output = ToolOutput(
        report=inspect_model(model),
        partition_set=partition_set,
        pool=pool,
        key_manager=key_manager,
        monitor_image=build_monitor_image(),
    )
    output.variant_images = {
        artifact.variant_id: build_variant_image(artifact)
        for artifacts in pool.artifacts.values()
        for artifact in artifacts
    }
    return output
