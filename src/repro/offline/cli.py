"""Command-line interface of the offline ML MVX tool.

Usage (also via ``python -m repro.offline``)::

    mvtee-offline models
    mvtee-offline inspect resnet-50 --input-size 224
    mvtee-offline partition googlenet --partitions 5 --seed 0
    mvtee-offline build small-resnet --partitions 3 --variants 3 --out ./out

``build`` runs the full offline pipeline and writes the deployable
bundle: the inspection report, the partition map, the public monitor
image and one directory per variant containing its public init files
and sealed private files -- exactly what an orchestrator consumes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.graph.flops import humanize_flops
from repro.offline.images import build_variant_image
from repro.offline.inspect import inspect_model
from repro.offline.tool import OfflineTool, ToolConfig
from repro.partition.balance import balance_score, partition_costs
from repro.zoo import available_models, build_model

__all__ = ["main"]


def _build_model(args) -> object:
    kwargs = {}
    if args.input_size is not None:
        kwargs["input_size"] = args.input_size
    return build_model(args.model, **kwargs)


def _cmd_models(args) -> int:
    for name in available_models():
        print(name)
    return 0


def _cmd_inspect(args) -> int:
    report = inspect_model(_build_model(args))
    if args.json:
        json.dump(report.to_json(), sys.stdout, indent=2)
        print()
        return 0
    print(f"model:       {report.name}")
    print(f"ir version:  {report.ir_version}")
    print(f"nodes:       {report.num_nodes}")
    print(f"flops:       {humanize_flops(report.total_flops)}")
    print(f"parameters:  {report.parameter_bytes / 1e6:.1f} MB")
    print("inputs:      " + ", ".join(f"{n}{list(s)}" for n, s in report.inputs))
    print("outputs:     " + ", ".join(f"{n}{list(s)}" for n, s in report.outputs))
    print("op histogram:")
    for op, count in sorted(report.op_histogram.items(), key=lambda kv: -kv[1]):
        print(f"  {op:24s} {count}")
    return 0


def _cmd_partition(args) -> int:
    model = _build_model(args)
    config = ToolConfig(
        num_partitions=args.partitions,
        partition_mode="manual" if args.cuts else "auto",
        manual_cut_indices=tuple(args.cuts or ()),
        partition_restarts=args.restarts,
        seed=args.seed,
        verify_partitions=not args.no_verify,
    )
    tool = OfflineTool(config)
    partition_set = tool.partition(model)
    if config.verify_partitions:
        from repro.partition.verify import verify_partition_set

        verify_partition_set(partition_set)
        print("correctness: staged execution verified against the full model")
    costs = partition_costs(partition_set)
    print(f"partitions:  {len(partition_set)} (balance score {balance_score(partition_set):.2f})")
    for part in partition_set.partitions:
        checkpoint = partition_set.checkpoint_bytes(part.index)
        print(
            f"  p{part.index}: {len(part.node_names):4d} nodes, "
            f"{humanize_flops(int(costs[part.index])):>14s}, "
            f"checkpoint {checkpoint / 1024:8.1f} KiB"
        )
    return 0


def _cmd_build(args) -> int:
    model = _build_model(args)
    tool = OfflineTool(
        ToolConfig(
            num_partitions=args.partitions,
            variants_per_partition=args.variants,
            seed=args.seed,
            verify_partitions=not args.no_verify,
            verify_variants=not args.no_verify,
        )
    )
    output = tool.run(model)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "report.json").write_text(json.dumps(output.report.to_json(), indent=2))
    partition_map = {
        f"p{p.index}": list(p.node_names) for p in output.partition_set.partitions
    }
    (out_dir / "partitions.json").write_text(json.dumps(partition_map, indent=2))

    monitor_dir = out_dir / "monitor"
    monitor_dir.mkdir(exist_ok=True)
    (monitor_dir / "manifest.json").write_text(
        json.dumps(output.monitor_image.manifest.to_json(), indent=2)
    )
    for path, content in output.monitor_image.files.items():
        target = monitor_dir / path.lstrip("/").replace("/", "_")
        target.write_bytes(content)

    index = []
    for variant_id, image in output.variant_images.items():
        variant_dir = out_dir / "variants" / variant_id
        variant_dir.mkdir(parents=True, exist_ok=True)
        (variant_dir / "manifest.json").write_text(
            json.dumps(image.manifest.to_json(), indent=2)
        )
        for path, content in image.files.items():
            target = variant_dir / path.lstrip("/").replace("/", "_")
            target.write_bytes(content)
        index.append(
            {
                "variant_id": variant_id,
                "digest": image.digest(),
                "bytes": image.total_bytes(),
            }
        )
    (out_dir / "images.json").write_text(json.dumps(index, indent=2))
    print(f"wrote {len(index)} variant images + monitor image to {out_dir}")
    print("NOTE: variant keys stay with the model owner; sealed files are safe to ship")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="mvtee-offline", description="MVTEE offline ML MVX tool"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available zoo models").set_defaults(fn=_cmd_models)

    inspect_p = sub.add_parser("inspect", help="model inspection module")
    inspect_p.add_argument("model")
    inspect_p.add_argument("--input-size", type=int, default=None)
    inspect_p.add_argument("--json", action="store_true")
    inspect_p.set_defaults(fn=_cmd_inspect)

    part_p = sub.add_parser("partition", help="run random-balanced partitioning")
    part_p.add_argument("model")
    part_p.add_argument("--partitions", type=int, default=5)
    part_p.add_argument("--cuts", type=int, nargs="*", help="manual cut indices")
    part_p.add_argument("--restarts", type=int, default=4)
    part_p.add_argument("--seed", type=int, default=0)
    part_p.add_argument("--input-size", type=int, default=None)
    part_p.add_argument("--no-verify", action="store_true")
    part_p.set_defaults(fn=_cmd_partition)

    build_p = sub.add_parser("build", help="full pipeline: inspect + partition + variants")
    build_p.add_argument("model")
    build_p.add_argument("--partitions", type=int, default=5)
    build_p.add_argument("--variants", type=int, default=3)
    build_p.add_argument("--seed", type=int, default=0)
    build_p.add_argument("--input-size", type=int, default=None)
    build_p.add_argument("--out", required=True)
    build_p.add_argument("--no-verify", action="store_true")
    build_p.set_defaults(fn=_cmd_build)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
