"""Container image packaging (§5.1).

"We generate monitor and base variant container images that package the
Gramine TEE OS, TEE-related files, along with the corresponding public
executables and manifests."  An image here is the file bundle the
orchestrator can place without learning anything variant-specific.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.mvx.bootstrap import MONITOR_CODE, monitor_manifest
from repro.tee.manifest import Manifest
from repro.variants.manifests import INIT_VARIANT_CODE
from repro.variants.pool import VariantArtifact

__all__ = ["ContainerImage", "build_monitor_image", "build_variant_image"]

GRAMINE_TEE_OS_STUB = b"#!gramine-tee-os v1.7+mvtee (two-stage manifests, socket RA-TLS)\n"


@dataclass(frozen=True)
class ContainerImage:
    """A deployable bundle of public files and the launch manifest."""

    name: str
    manifest: Manifest
    files: dict[str, bytes]

    def digest(self) -> str:
        """Content-addressed image digest."""
        h = hashlib.sha256()
        h.update(self.manifest.to_bytes())
        for path in sorted(self.files):
            h.update(path.encode())
            h.update(hashlib.sha256(self.files[path]).digest())
        return h.hexdigest()

    def total_bytes(self) -> int:
        """Total payload size."""
        return sum(len(v) for v in self.files.values())


def build_monitor_image() -> ContainerImage:
    """The monitor TEE image (public: code + manifest + TEE OS)."""
    return ContainerImage(
        name="mvtee/monitor",
        manifest=monitor_manifest(),
        files={
            "/gramine/libos": GRAMINE_TEE_OS_STUB,
            "/mvtee/monitor": MONITOR_CODE,
        },
    )


def build_variant_image(artifact: VariantArtifact) -> ContainerImage:
    """One variant TEE image: init-variant + public manifest + sealed files.

    Everything variant-specific inside is encrypted; the image is safe to
    hand to the untrusted orchestrator.
    """
    files = {"/gramine/libos": GRAMINE_TEE_OS_STUB}
    files.update(artifact.host_files)
    return ContainerImage(
        name=f"mvtee/variant-{artifact.variant_id}",
        manifest=artifact.init_manifest,
        files=files,
    )
