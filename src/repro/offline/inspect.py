"""Model inspection module (§5.1).

"Through model inspection, we collect information such as IR version,
graph inputs/outputs, initializers, and nodes, including their indices
and detailed metadata."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.flops import graph_flops, node_flops, parameter_bytes
from repro.graph.model import ModelGraph
from repro.graph.shapes import infer_shapes

__all__ = ["ModelReport", "NodeInfo", "inspect_model"]

IR_VERSION = "mvtee-ir-1"


@dataclass(frozen=True)
class NodeInfo:
    """Metadata of one node, including its topological index."""

    index: int
    name: str
    op_type: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    output_shapes: tuple[tuple[int, ...], ...]
    flops: int
    attrs: dict


@dataclass(frozen=True)
class ModelReport:
    """The inspection result of one model."""

    name: str
    ir_version: str
    num_nodes: int
    inputs: tuple[tuple[str, tuple[int, ...]], ...]
    outputs: tuple[tuple[str, tuple[int, ...]], ...]
    initializers: tuple[tuple[str, tuple[int, ...]], ...]
    total_flops: int
    parameter_bytes: int
    nodes: tuple[NodeInfo, ...] = field(repr=False)
    op_histogram: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON form for config pipelines / CI reports."""
        return {
            "name": self.name,
            "ir_version": self.ir_version,
            "num_nodes": self.num_nodes,
            "inputs": [[n, list(s)] for n, s in self.inputs],
            "outputs": [[n, list(s)] for n, s in self.outputs],
            "initializers": [[n, list(s)] for n, s in self.initializers],
            "total_flops": self.total_flops,
            "parameter_bytes": self.parameter_bytes,
            "op_histogram": dict(self.op_histogram),
            "nodes": [
                {
                    "index": n.index,
                    "name": n.name,
                    "op_type": n.op_type,
                    "inputs": list(n.inputs),
                    "outputs": list(n.outputs),
                    "output_shapes": [list(s) for s in n.output_shapes],
                    "flops": n.flops,
                    "attrs": n.attrs,
                }
                for n in self.nodes
            ],
        }


def inspect_model(model: ModelGraph) -> ModelReport:
    """Collect full metadata for a model."""
    model.validate()
    specs = infer_shapes(model)
    nodes = []
    histogram: dict[str, int] = {}
    for index, node in enumerate(model.topological_order()):
        histogram[node.op_type] = histogram.get(node.op_type, 0) + 1
        nodes.append(
            NodeInfo(
                index=index,
                name=node.name,
                op_type=node.op_type,
                inputs=tuple(node.inputs),
                outputs=tuple(node.outputs),
                output_shapes=tuple(specs[o].shape for o in node.outputs),
                flops=node_flops(node, specs),
                attrs=dict(node.attrs),
            )
        )
    return ModelReport(
        name=model.name,
        ir_version=IR_VERSION,
        num_nodes=len(model.nodes),
        inputs=tuple((s.name, s.shape) for s in model.inputs),
        outputs=tuple((s.name, s.shape) for s in model.outputs),
        initializers=tuple(
            (name, tuple(arr.shape)) for name, arr in sorted(model.initializers.items())
        ),
        total_flops=graph_flops(model, specs),
        parameter_bytes=parameter_bytes(model),
        nodes=tuple(nodes),
        op_histogram=histogram,
    )
