"""The end-to-end offline tool.

Inputs (§5.1): (i) the target model, (ii) configuration detailing
partitioning settings and variant specifications, (iii) base manifests
(generated internally here).  Outputs: partition variants with their
Gramine manifests in encrypted form, plus the public container images.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.crypto.keys import KeyManager
from repro.graph.model import ModelGraph
from repro.offline.images import ContainerImage, build_monitor_image, build_variant_image
from repro.offline.inspect import ModelReport, inspect_model
from repro.partition.balance import find_balanced_partition
from repro.partition.partition import PartitionSet
from repro.partition.slicer import slice_by_indices, slice_by_names
from repro.partition.verify import verify_partition_set
from repro.variants.pool import VariantPool, build_pool, diversified_specs
from repro.variants.spec import VariantSpec

__all__ = ["OfflineTool", "ToolConfig", "ToolOutput"]


@dataclass(frozen=True)
class ToolConfig:
    """Declarative configuration of one offline run.

    ``partition_mode`` is "auto" (random-balanced contraction) or
    "manual" (graph slicer with explicit cut points).  Variant specs may
    be given explicitly (list of VariantSpec JSON dicts) or generated:
    ``variants_per_partition`` drives the auto-diversifier.
    """

    num_partitions: int = 5
    partition_mode: str = "auto"
    manual_cut_indices: tuple[int, ...] = ()
    manual_cut_names: tuple[str, ...] = ()
    partition_restarts: int = 4
    balance_slack: float = 1.6
    seed: int = 0
    variants_per_partition: int = 3
    explicit_specs: tuple[dict, ...] = ()
    verify_partitions: bool = True
    verify_variants: bool = True
    parallel_workers: int | None = None

    @classmethod
    def from_json(cls, data: dict) -> "ToolConfig":
        """Parse the tool's JSON configuration file."""
        return cls(
            num_partitions=int(data.get("num_partitions", 5)),
            partition_mode=data.get("partition_mode", "auto"),
            manual_cut_indices=tuple(data.get("manual_cut_indices", ())),
            manual_cut_names=tuple(data.get("manual_cut_names", ())),
            partition_restarts=int(data.get("partition_restarts", 4)),
            balance_slack=float(data.get("balance_slack", 1.6)),
            seed=int(data.get("seed", 0)),
            variants_per_partition=int(data.get("variants_per_partition", 3)),
            explicit_specs=tuple(data.get("explicit_specs", ())),
            verify_partitions=bool(data.get("verify_partitions", True)),
            verify_variants=bool(data.get("verify_variants", True)),
            parallel_workers=data.get("parallel_workers"),
        )


@dataclass
class ToolOutput:
    """Everything the offline phase produces."""

    report: ModelReport
    partition_set: PartitionSet
    pool: VariantPool
    key_manager: KeyManager
    monitor_image: ContainerImage
    variant_images: dict[str, ContainerImage] = field(default_factory=dict)


class OfflineTool:
    """Drives inspection -> partitioning -> variant construction."""

    def __init__(self, config: ToolConfig):
        self.config = config

    @classmethod
    def from_json_file_content(cls, content: str) -> "OfflineTool":
        """Build from the JSON configuration format."""
        return cls(ToolConfig.from_json(json.loads(content)))

    def partition(self, model: ModelGraph) -> PartitionSet:
        """Run the configured partitioning mode."""
        config = self.config
        if config.partition_mode == "manual":
            if config.manual_cut_names:
                return slice_by_names(model, list(config.manual_cut_names))
            if config.manual_cut_indices:
                return slice_by_indices(model, list(config.manual_cut_indices))
            raise ValueError("manual mode requires cut indices or names")
        if config.partition_mode != "auto":
            raise ValueError(f"unknown partition mode {config.partition_mode!r}")
        return find_balanced_partition(
            model,
            config.num_partitions,
            restarts=config.partition_restarts,
            seed=config.seed,
            balance_slack=config.balance_slack,
            workers=config.parallel_workers,
        )

    def variant_specs(self, partition_set: PartitionSet) -> list[VariantSpec]:
        """Explicit specs from config, or auto-diversified ones."""
        if self.config.explicit_specs:
            return [VariantSpec.from_json(d) for d in self.config.explicit_specs]
        return [
            spec
            for index in range(len(partition_set))
            for spec in diversified_specs(
                index, self.config.variants_per_partition, seed=self.config.seed
            )
        ]

    def run(self, model: ModelGraph) -> ToolOutput:
        """The full offline pipeline for one model."""
        report = inspect_model(model)
        partition_set = self.partition(model)
        if self.config.verify_partitions:
            verify_partition_set(partition_set)
        key_manager = KeyManager()
        pool = build_pool(
            partition_set,
            self.variant_specs(partition_set),
            key_manager=key_manager,
            verify=self.config.verify_variants,
        )
        variant_images = {
            artifact.variant_id: build_variant_image(artifact)
            for artifacts in pool.artifacts.values()
            for artifact in artifacts
        }
        return ToolOutput(
            report=report,
            partition_set=partition_set,
            pool=pool,
            key_manager=key_manager,
            monitor_image=build_monitor_image(),
            variant_images=variant_images,
        )
