"""Numpy reference kernels and the operator registry.

Every operator the graph IR admits has a kernel here.  Kernels are pure
functions of ``(inputs, attrs, context)`` where the context selects the
BLAS backend -- the lowest diversification level MVTEE exploits (the
paper's FrameFlip discussion: a fault in one BLAS library does not affect
a variant linked against another).
"""

from repro.ops.blas import BlasBackend, available_backends, get_backend
from repro.ops.kernels import KernelContext, KernelError, evaluate_node, registered_ops
from repro.ops import transformer as _transformer  # registers kernels + shape rules
from repro.ops import fused as _fused  # registers fused kernels + shape rules

__all__ = [
    "BlasBackend",
    "KernelContext",
    "KernelError",
    "available_backends",
    "evaluate_node",
    "get_backend",
    "registered_ops",
]
