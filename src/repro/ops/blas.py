"""Pluggable dense linear-algebra backends.

These model the OpenBLAS / Eigen / Intel MKL diversity the paper uses at
the acceleration-library level.  Each backend computes the same GEMM with
a genuinely different computation structure (different accumulation
orders give bit-different but numerically close results), and each is an
independent fault-injection target for the attack harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["BlasBackend", "available_backends", "get_backend", "register_backend"]


@dataclass
class BlasBackend:
    """A named GEMM implementation with an injectable fault hook.

    ``fault_hook``, when set, post-processes every GEMM result; the attack
    harness uses it to model library-level bit-flip faults (FrameFlip) that
    corrupt one backend while leaving others intact.
    """

    name: str
    gemm_impl: Callable[[np.ndarray, np.ndarray], np.ndarray]
    fault_hook: Callable[[np.ndarray], np.ndarray] | None = field(default=None)

    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product ``a @ b`` through this backend."""
        result = self.gemm_impl(a, b)
        if self.fault_hook is not None:
            result = self.fault_hook(result)
        return result

    def clear_fault(self) -> None:
        """Remove any injected fault."""
        self.fault_hook = None


def _gemm_numpy(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # "MKL-like": straight vendor BLAS call.
    return a @ b


def _gemm_blocked(a: np.ndarray, b: np.ndarray, *, tile: int = 64) -> np.ndarray:
    # "OpenBLAS-like": tiled accumulation; different summation order from
    # a plain dot, so results are bit-different yet numerically close.
    m, k = a.shape
    k2, n = b.shape
    out = np.zeros((m, n), dtype=np.result_type(a, b))
    for k0 in range(0, k, tile):
        out += a[:, k0 : k0 + tile] @ b[k0 : k0 + tile, :]
    return out


def _gemm_einsum(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # "Eigen-like": expression-template style contraction path.
    return np.einsum("ik,kj->ij", a, b)


_BACKENDS: dict[str, Callable[[], BlasBackend]] = {
    "mkl-sim": lambda: BlasBackend("mkl-sim", _gemm_numpy),
    "openblas-sim": lambda: BlasBackend("openblas-sim", _gemm_blocked),
    "eigen-sim": lambda: BlasBackend("eigen-sim", _gemm_einsum),
}


def register_backend(name: str, factory: Callable[[], BlasBackend]) -> None:
    """Register an additional backend implementation."""
    if name in _BACKENDS:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = factory


def available_backends() -> list[str]:
    """Names of all registered BLAS backends."""
    return sorted(_BACKENDS)


def get_backend(name: str) -> BlasBackend:
    """Instantiate a fresh backend object by name."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown BLAS backend {name!r}; available: {available_backends()}"
        ) from None
