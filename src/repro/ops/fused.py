"""Fused operators (the fusion direction of §4.2's operator replacement).

``FusedConvRelu`` / ``FusedGemmRelu`` compute a convolution or dense
layer and its ReLU in one kernel -- the classic inference-runtime fusion.
As *graph-level* ops they are another diversification axis: a variant
carrying fused ops has a different operator stream (and different
kernel code) from its unfused siblings while remaining equivalent.
"""

from __future__ import annotations

import numpy as np

from repro.graph.node import Node
from repro.graph.shapes import register_shape_rule
from repro.ops.kernels import KernelContext, register_op

__all__ = ["install_fused_ops"]


@register_op("FusedConvRelu")
def _fused_conv_relu(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    from repro.ops.kernels import _REGISTRY

    conv_out = _REGISTRY["Conv"](node, inputs, ctx)[0]
    return [np.maximum(conv_out, 0)]


@register_op("FusedGemmRelu")
def _fused_gemm_relu(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    from repro.ops.kernels import _REGISTRY

    gemm_out = _REGISTRY["Gemm"](node, inputs, ctx)[0]
    return [np.maximum(gemm_out, 0)]


def _conv_rule(node, specs) -> None:
    from repro.graph import shapes as shape_mod

    shape_mod._infer_conv(node, specs)


def _gemm_rule(node, specs) -> None:
    from repro.graph import shapes as shape_mod

    shape_mod._infer_gemm(node, specs)


register_shape_rule("FusedConvRelu", _conv_rule)
register_shape_rule("FusedGemmRelu", _gemm_rule)


def install_fused_ops() -> None:
    """No-op import anchor: importing this module registers everything."""
