"""Reference numpy kernels for every supported operator.

Kernels receive resolved input arrays, node attributes and a
:class:`KernelContext` (BLAS backend + optional per-op fault hooks) and
return the list of output arrays.  Convolutions lower to im2col + GEMM so
BLAS-backend diversity reaches them too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.graph.node import Node
from repro.ops.blas import BlasBackend, get_backend

__all__ = ["KernelContext", "KernelError", "evaluate_node", "registered_ops", "register_op"]


class KernelError(Exception):
    """Raised when a kernel cannot execute (bad rank, bad attrs, ...)."""


@dataclass
class KernelContext:
    """Execution context threaded through all kernels of one inference.

    ``op_hooks`` maps op_type to a post-processing hook with signature
    ``hook(node, inputs, outputs) -> outputs``; the fault harness installs
    hooks here to corrupt or crash a *specific operator implementation* in
    a specific runtime instance (modeling CVE-class bugs triggered by
    crafted inputs).
    """

    blas: BlasBackend = field(default_factory=lambda: get_backend("mkl-sim"))
    op_hooks: dict[
        str, Callable[[Node, list[np.ndarray], list[np.ndarray]], list[np.ndarray]]
    ] = field(default_factory=dict)

    def apply_hooks(
        self, node: Node, inputs: list[np.ndarray], outputs: list[np.ndarray]
    ) -> list[np.ndarray]:
        hook = self.op_hooks.get(node.op_type)
        if hook is not None:
            return hook(node, inputs, outputs)
        return outputs


_REGISTRY: dict[str, Callable] = {}


def register_op(op_type: str):
    """Decorator registering a kernel for ``op_type``."""

    def decorate(fn):
        if op_type in _REGISTRY:
            raise ValueError(f"kernel for {op_type!r} already registered")
        _REGISTRY[op_type] = fn
        return fn

    return decorate


def registered_ops() -> list[str]:
    """All op types with a kernel."""
    return sorted(_REGISTRY)


def evaluate_node(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    """Execute one node and return its outputs (fault hooks applied)."""
    kernel = _REGISTRY.get(node.op_type)
    if kernel is None:
        raise KernelError(f"no kernel registered for op {node.op_type!r}")
    outputs = kernel(node, inputs, ctx)
    return ctx.apply_hooks(node, inputs, outputs)


# ----------------------------------------------------------------------
# Convolution (im2col + GEMM) and dense layers
# ----------------------------------------------------------------------


def _im2col(x: np.ndarray, kh: int, kw: int, strides, pads, dilations) -> tuple[np.ndarray, int, int]:
    n, c, h, w = x.shape
    sh, sw = strides
    dh, dw = dilations
    pt, pl, pb, pr = pads
    if any(p for p in pads):
        x = np.pad(x, ((0, 0), (0, 0), (pt, pb), (pl, pr)))
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    out_h = (x.shape[2] - eff_kh) // sh + 1
    out_w = (x.shape[3] - eff_kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise KernelError(f"convolution output collapsed: input {x.shape}, kernel {(kh, kw)}")
    # Gather patches: result (N, C*kh*kw, out_h*out_w)
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        hi = i * dh
        for j in range(kw):
            wj = j * dw
            cols[:, :, i, j] = x[
                :, :, hi : hi + sh * out_h : sh, wj : wj + sw * out_w : sw
            ]
    return cols.reshape(n, c * kh * kw, out_h * out_w), out_h, out_w


@register_op("Conv")
def _conv(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x, weight = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    if x.ndim != 4 or weight.ndim != 4:
        raise KernelError(f"{node.name}: Conv expects 4-D input and weight")
    group = int(node.attrs.get("group", 1))
    strides = [int(s) for s in node.attrs.get("strides", [1, 1])]
    dilations = [int(d) for d in node.attrs.get("dilations", [1, 1])]
    pads = [int(p) for p in node.attrs.get("pads", [0, 0, 0, 0])]
    if len(pads) == 2:
        pads = [pads[0], pads[1], pads[0], pads[1]]
    m, c_per_group, kh, kw = weight.shape
    n = x.shape[0]
    if x.shape[1] != c_per_group * group:
        raise KernelError(
            f"{node.name}: Conv channel mismatch: input {x.shape[1]}, "
            f"weight {c_per_group} x group {group}"
        )
    m_per_group = m // group
    outputs = []
    for g in range(group):
        xg = x[:, g * c_per_group : (g + 1) * c_per_group]
        wg = weight[g * m_per_group : (g + 1) * m_per_group]
        cols, out_h, out_w = _im2col(xg, kh, kw, strides, pads, dilations)
        w_mat = wg.reshape(m_per_group, c_per_group * kh * kw)
        batch_out = np.stack(
            [ctx.blas.gemm(w_mat, cols[b]) for b in range(n)]
        )  # (N, m_per_group, out_h*out_w)
        outputs.append(batch_out.reshape(n, m_per_group, out_h, out_w))
    result = outputs[0] if group == 1 else np.concatenate(outputs, axis=1)
    if bias is not None:
        result = result + bias.reshape(1, -1, 1, 1)
    return [result.astype(x.dtype, copy=False)]


@register_op("Gemm")
def _gemm(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    a, b = inputs[0], inputs[1]
    if node.attrs.get("transA"):
        a = a.T
    if node.attrs.get("transB"):
        b = b.T
    alpha = float(node.attrs.get("alpha", 1.0))
    beta = float(node.attrs.get("beta", 1.0))
    out = alpha * ctx.blas.gemm(a, b)
    if len(inputs) > 2:
        out = out + beta * inputs[2]
    return [out.astype(inputs[0].dtype, copy=False)]


@register_op("MatMul")
def _matmul(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    a, b = inputs[0], inputs[1]
    if a.ndim == 2 and b.ndim == 2:
        return [ctx.blas.gemm(a, b).astype(a.dtype, copy=False)]
    return [(a @ b).astype(a.dtype, copy=False)]


# ----------------------------------------------------------------------
# Normalization and activations
# ----------------------------------------------------------------------


@register_op("BatchNormalization")
def _batch_norm(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x, scale, shift, mean, var = inputs
    eps = float(node.attrs.get("epsilon", 1e-5))
    view = (1, -1) + (1,) * (x.ndim - 2)
    normalized = (x - mean.reshape(view)) / np.sqrt(var.reshape(view) + eps)
    return [(normalized * scale.reshape(view) + shift.reshape(view)).astype(x.dtype, copy=False)]


@register_op("Relu")
def _relu(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [np.maximum(inputs[0], 0)]


@register_op("Sigmoid")
def _sigmoid(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    return [(1.0 / (1.0 + np.exp(-x.astype(np.float64)))).astype(x.dtype)]


@register_op("Tanh")
def _tanh(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [np.tanh(inputs[0])]


@register_op("HardSigmoid")
def _hard_sigmoid(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    alpha = float(node.attrs.get("alpha", 0.2))
    beta = float(node.attrs.get("beta", 0.5))
    return [np.clip(alpha * x + beta, 0.0, 1.0).astype(x.dtype, copy=False)]


@register_op("HardSwish")
def _hard_swish(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    return [(x * np.clip(x / 6.0 + 0.5, 0.0, 1.0)).astype(x.dtype, copy=False)]


@register_op("Silu")
def _silu(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    return [(x / (1.0 + np.exp(-x.astype(np.float64)))).astype(x.dtype)]


@register_op("Clip")
def _clip(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    lo = float(node.attrs.get("min", -np.inf))
    hi = float(node.attrs.get("max", np.inf))
    return [np.clip(inputs[0], lo, hi)]


@register_op("Softmax")
def _softmax(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    axis = int(node.attrs.get("axis", -1))
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return [(exp / np.sum(exp, axis=axis, keepdims=True)).astype(x.dtype, copy=False)]


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------


def _pool_windows(x: np.ndarray, node: Node) -> tuple[np.ndarray, int, int, int, int]:
    kernel = node.attrs["kernel_shape"]
    kh, kw = (kernel, kernel) if isinstance(kernel, int) else (int(kernel[0]), int(kernel[1]))
    strides = node.attrs.get("strides", [kh, kw])
    sh, sw = int(strides[0]), int(strides[1])
    pads = [int(p) for p in node.attrs.get("pads", [0, 0, 0, 0])]
    if len(pads) == 2:
        pads = [pads[0], pads[1], pads[0], pads[1]]
    ceil_mode = bool(node.attrs.get("ceil_mode", 0))
    n, c, h, w = x.shape
    import math as _math

    rounding = _math.ceil if ceil_mode else _math.floor
    out_h = rounding((h + pads[0] + pads[2] - kh) / sh) + 1
    out_w = rounding((w + pads[1] + pads[3] - kw) / sw) + 1
    pad_h_needed = max(0, (out_h - 1) * sh + kh - h - pads[0])
    pad_w_needed = max(0, (out_w - 1) * sw + kw - w - pads[1])
    return (
        np.pad(
            x,
            ((0, 0), (0, 0), (pads[0], pad_h_needed), (pads[1], pad_w_needed)),
            constant_values=np.nan,
        ),
        kh,
        kw,
        out_h,
        out_w,
    ), sh, sw  # type: ignore[return-value]


@register_op("MaxPool")
def _max_pool(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    (padded, kh, kw, out_h, out_w), sh, sw = _pool_windows(inputs[0], node)
    n, c = padded.shape[:2]
    out = np.full((n, c, out_h, out_w), -np.inf, dtype=padded.dtype)
    for i in range(kh):
        for j in range(kw):
            window = padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw]
            out = np.fmax(out, window)
    return [out.astype(inputs[0].dtype, copy=False)]


@register_op("AveragePool")
def _avg_pool(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    (padded, kh, kw, out_h, out_w), sh, sw = _pool_windows(inputs[0], node)
    n, c = padded.shape[:2]
    acc = np.zeros((n, c, out_h, out_w), dtype=np.float64)
    count = np.zeros((n, c, out_h, out_w), dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            window = padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw]
            valid = ~np.isnan(window)
            acc += np.where(valid, window, 0.0)
            count += valid
    return [(acc / np.maximum(count, 1)).astype(inputs[0].dtype)]


@register_op("GlobalAveragePool")
def _global_avg_pool(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    return [x.mean(axis=(2, 3), keepdims=True).astype(x.dtype, copy=False)]


# ----------------------------------------------------------------------
# Structural / elementwise ops
# ----------------------------------------------------------------------


@register_op("Add")
def _add(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [inputs[0] + inputs[1]]


@register_op("Sub")
def _sub(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [inputs[0] - inputs[1]]


@register_op("Mul")
def _mul(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [inputs[0] * inputs[1]]


@register_op("Div")
def _div(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [inputs[0] / inputs[1]]


@register_op("Concat")
def _concat(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [np.concatenate(inputs, axis=int(node.attrs.get("axis", 1)))]


@register_op("Flatten")
def _flatten(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    axis = int(node.attrs.get("axis", 1))
    lead = int(np.prod(x.shape[:axis])) if axis else 1
    return [x.reshape(lead, -1)]


@register_op("Reshape")
def _reshape(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [inputs[0].reshape([int(d) for d in node.attrs["shape"]])]


@register_op("Identity")
def _identity(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    return [inputs[0]]


@register_op("Dropout")
def _dropout(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    # Inference mode: dropout is the identity.
    return [inputs[0]]


@register_op("ZeroAdd")
def _zero_add(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    # Dummy-operator diversification: provably adds zero.
    return [inputs[0] + np.zeros((), dtype=inputs[0].dtype)]


@register_op("Pad")
def _pad(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    pads = [int(p) for p in node.attrs["pads"]]
    rank = x.ndim
    widths = [(pads[i], pads[rank + i]) for i in range(rank)]
    return [np.pad(x, widths, constant_values=float(node.attrs.get("value", 0.0)))]


@register_op("ReduceMean")
def _reduce_mean(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    axes = tuple(int(a) for a in node.attrs.get("axes", range(x.ndim)))
    keepdims = bool(node.attrs.get("keepdims", 1))
    return [x.mean(axis=axes, keepdims=keepdims).astype(x.dtype, copy=False)]


@register_op("Squeeze")
def _squeeze(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    axes = node.attrs.get("axes")
    if axes:
        return [np.squeeze(x, axis=tuple(int(a) for a in axes))]
    return [np.squeeze(x)]


@register_op("Unsqueeze")
def _unsqueeze(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    for axis in sorted(int(a) for a in node.attrs["axes"]):
        x = np.expand_dims(x, axis)
    return [x]


@register_op("Transpose")
def _transpose(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    perm = node.attrs.get("perm")
    return [np.transpose(inputs[0], axes=[int(p) for p in perm] if perm else None)]
