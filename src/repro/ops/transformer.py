"""Transformer operators (§7.4 future work: Foundation Models in CPU TEEs).

Adds the operator family needed for attention-based models: layer
normalization, GELU, batched matrix products with transposition, tensor
splitting and causal masking.  Registered in the same kernel registry,
so partitioning, diversification and MVX checkpoints work on
transformers unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.node import Node
from repro.ops.kernels import KernelContext, KernelError, register_op

__all__ = ["register_transformer_shape_rules"]


@register_op("LayerNormalization")
def _layer_norm(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x, scale, shift = inputs
    eps = float(node.attrs.get("epsilon", 1e-5))
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalized = (x - mean) / np.sqrt(var + eps)
    return [(normalized * scale + shift).astype(x.dtype, copy=False)]


@register_op("Gelu")
def _gelu(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0].astype(np.float64)
    # tanh approximation (the variant used by GPT-family implementations).
    inner = math.sqrt(2.0 / math.pi) * (x + 0.044715 * x**3)
    return [(0.5 * x * (1.0 + np.tanh(inner))).astype(inputs[0].dtype)]


@register_op("BatchMatMul")
def _batch_matmul(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    """Batched matrix product, routed through the BLAS backend.

    Every 2-D slice goes through ``ctx.blas.gemm`` so acceleration-library
    diversity (and library-level fault injection) reaches attention and
    projection layers exactly as it reaches convolutions.
    """
    a, b = inputs
    if node.attrs.get("transA"):
        a = np.swapaxes(a, -1, -2)
    if node.attrs.get("transB"):
        b = np.swapaxes(b, -1, -2)
    scale = float(node.attrs.get("scale", 1.0))
    dtype = inputs[0].dtype
    if a.ndim == 2 and b.ndim == 2:
        return [(scale * ctx.blas.gemm(a, b)).astype(dtype, copy=False)]
    if b.ndim == 2:
        # (..., K) @ (K, N): one flattened GEMM.
        lead = a.shape[:-1]
        flat = ctx.blas.gemm(np.ascontiguousarray(a).reshape(-1, a.shape[-1]), b)
        return [(scale * flat).astype(dtype, copy=False).reshape(*lead, b.shape[-1])]
    # General broadcast-batched case: per-slice GEMM through the backend.
    batch_shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    a_b = np.broadcast_to(a, batch_shape + a.shape[-2:])
    b_b = np.broadcast_to(b, batch_shape + b.shape[-2:])
    a_flat = np.ascontiguousarray(a_b).reshape(-1, *a.shape[-2:])
    b_flat = np.ascontiguousarray(b_b).reshape(-1, *b.shape[-2:])
    out = np.stack(
        [ctx.blas.gemm(a_flat[i], b_flat[i]) for i in range(a_flat.shape[0])]
    )
    result = out.reshape(*batch_shape, a.shape[-2], b.shape[-1])
    return [(scale * result).astype(dtype, copy=False)]


@register_op("Split")
def _split(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    x = inputs[0]
    axis = int(node.attrs.get("axis", -1))
    parts = int(node.attrs.get("num_outputs", len(node.outputs)))
    if x.shape[axis] % parts:
        raise KernelError(
            f"{node.name}: Split axis size {x.shape[axis]} not divisible by {parts}"
        )
    return [np.ascontiguousarray(piece) for piece in np.split(x, parts, axis=axis)]


@register_op("CausalMask")
def _causal_mask(node: Node, inputs: list[np.ndarray], ctx: KernelContext) -> list[np.ndarray]:
    """Add -inf above the diagonal of attention scores (..., T, T)."""
    scores = inputs[0]
    seq = scores.shape[-1]
    mask = np.triu(np.full((seq, seq), -1e9, dtype=scores.dtype), k=1)
    return [scores + mask]


def _rule_same_shape(node, specs) -> None:
    from repro.graph import shapes as shape_mod

    spec = specs[node.inputs[0]]
    shape_mod._set(specs, node.outputs[0], spec.shape, spec.dtype)


def _rule_batch_matmul(node, specs) -> None:
    from repro.graph import shapes as shape_mod

    a = list(specs[node.inputs[0]].shape)
    b = list(specs[node.inputs[1]].shape)
    if node.attrs.get("transA"):
        a[-1], a[-2] = a[-2], a[-1]
    if node.attrs.get("transB"):
        b[-1], b[-2] = b[-2], b[-1]
    if a[-1] != b[-2]:
        raise shape_mod.ShapeInferenceError(
            f"node {node.name!r}: BatchMatMul inner dims {a} x {b}"
        )
    batch = a[:-2] if len(a) >= len(b) else b[:-2]
    shape_mod._set(
        specs, node.outputs[0], tuple(batch + [a[-2], b[-1]]), specs[node.inputs[0]].dtype
    )


def _rule_split(node, specs) -> None:
    from repro.graph import shapes as shape_mod

    shape = list(specs[node.inputs[0]].shape)
    axis = int(node.attrs.get("axis", -1)) % len(shape)
    parts = len(node.outputs)
    if shape[axis] % parts:
        raise shape_mod.ShapeInferenceError(
            f"node {node.name!r}: Split axis {shape[axis]} by {parts}"
        )
    shape[axis] //= parts
    for out in node.outputs:
        shape_mod._set(specs, out, tuple(shape), specs[node.inputs[0]].dtype)


def _install_shape_rules() -> None:
    from repro.graph.shapes import register_shape_rule

    register_shape_rule("LayerNormalization", _rule_same_shape)
    register_shape_rule("Gelu", _rule_same_shape)
    register_shape_rule("CausalMask", _rule_same_shape)
    register_shape_rule("BatchMatMul", _rule_batch_matmul)
    register_shape_rule("Split", _rule_split)


_install_shape_rules()
