"""Model partitioning: checkpoints via random-balanced graph contraction.

The paper's Algorithm 1 contracts the model DAG edge by edge -- sampling
edges through a customizable soft-preference weight function and vetoing
merges through hard constraints -- until the target number of partitions
remains.  Partition boundaries become MVX checkpoints; the partition
quotient graph stays a DAG so partitions can execute as pipeline stages.

- :mod:`repro.partition.partition` -- :class:`Partition` / :class:`PartitionSet`.
- :mod:`repro.partition.contraction` -- Algorithm 1 (automatic mode).
- :mod:`repro.partition.slicer` -- the manual graph slicer.
- :mod:`repro.partition.balance` -- balance scoring and multi-restart search.
- :mod:`repro.partition.verify` -- stitched-execution correctness checks.
"""

from repro.partition.contraction import ContractionSettings, random_contraction
from repro.partition.partition import Partition, PartitionError, PartitionSet
from repro.partition.sensitivity import SensitivityPlan, sensitivity_partition
from repro.partition.slicer import slice_by_indices, slice_by_names
from repro.partition.balance import balance_score, find_balanced_partition, partition_costs
from repro.partition.verify import verify_partition_set

__all__ = [
    "ContractionSettings",
    "Partition",
    "PartitionError",
    "PartitionSet",
    "SensitivityPlan",
    "balance_score",
    "find_balanced_partition",
    "partition_costs",
    "random_contraction",
    "sensitivity_partition",
    "slice_by_indices",
    "slice_by_names",
    "verify_partition_set",
]
