"""Balance scoring and multi-restart partition search.

§4.1: "the algorithm can be run multiple times to identify correct and
globally optimal configurations that meet specific requirements (e.g.,
balance, security levels)" and §5.1: "our tool also supports parallel
graph partitioning".  :func:`find_balanced_partition` runs the
contraction under several seeds (optionally across worker threads) and
keeps the best-scoring result.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.graph.flops import node_flops
from repro.graph.model import ModelGraph
from repro.graph.shapes import infer_shapes
from repro.partition.contraction import ContractionSettings, random_contraction
from repro.partition.partition import PartitionError, PartitionSet

__all__ = ["balance_score", "find_balanced_partition", "partition_costs"]


def partition_costs(partition_set: PartitionSet) -> list[float]:
    """Per-partition compute cost (FLOPs)."""
    specs = infer_shapes(partition_set.model)
    by_name = {
        node.name: float(max(node_flops(node, specs), 1))
        for node in partition_set.model.nodes
    }
    return [
        sum(by_name[name] for name in part.node_names)
        for part in partition_set.partitions
    ]


def balance_score(partition_set: PartitionSet) -> float:
    """Imbalance metric: max partition cost over the ideal share (>= 1).

    1.0 is a perfectly balanced partitioning; the slowest pipeline stage
    bounds pipelined throughput, so this is the quantity to minimize.
    """
    costs = partition_costs(partition_set)
    ideal = sum(costs) / len(costs)
    return max(costs) / ideal


def find_balanced_partition(
    model: ModelGraph,
    target_partitions: int,
    *,
    restarts: int = 8,
    seed: int = 0,
    balance_slack: float = 1.6,
    workers: int | None = None,
) -> PartitionSet:
    """Best-of-``restarts`` random-balanced partitioning.

    Runs with consecutive seeds; failed runs (over-constrained graphs)
    are skipped as long as at least one succeeds.
    """
    if restarts < 1:
        raise ValueError("restarts must be >= 1")

    def attempt(run_seed: int) -> PartitionSet | None:
        settings = ContractionSettings(
            target_partitions=target_partitions,
            seed=run_seed,
            balance_slack=balance_slack,
        )
        try:
            return random_contraction(model, settings)
        except PartitionError:
            return None

    seeds = [seed + i for i in range(restarts)]
    if workers and workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(attempt, seeds))
    else:
        results = [attempt(s) for s in seeds]
    candidates = [ps for ps in results if ps is not None]
    if not candidates:
        raise PartitionError(
            f"all {restarts} contraction restarts failed for target "
            f"{target_partitions} on {model.name}"
        )
    return min(candidates, key=balance_score)
