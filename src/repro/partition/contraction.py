"""Algorithm 1: Random Contraction for Model Partitioning.

Karger-style randomized contraction over the model DAG, with two MVTEE
additions from §4.1/§5.1:

- a *soft preference* weight function biases which edge is sampled for
  contraction (default: prefer merging the pair with the smallest
  combined compute, which drives partitions toward balance);
- a *hard constraint* function vetoes merges (default: a merged
  partition may not exceed ``balance_slack`` times the ideal share).

Contractions additionally preserve acyclicity of the partition quotient
graph (an edge is contractible only if no alternative path connects its
endpoints), so the result always forms a valid pipeline DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx
import numpy as np

from repro.graph.flops import node_flops
from repro.graph.model import ModelGraph
from repro.graph.shapes import infer_shapes
from repro.partition.partition import Partition, PartitionError, PartitionSet

__all__ = ["ContractionSettings", "random_contraction"]

WeightFn = Callable[[float, float], float]
ConstraintFn = Callable[[float, float, float], bool]


def _default_weight(cost_a: float, cost_b: float) -> float:
    # Soft preference: strongly favor merging the lightest pair.
    return 1.0 / (cost_a + cost_b) ** 2


MergeVeto = Callable[[list[str], list[str]], bool]


@dataclass(frozen=True)
class ContractionSettings:
    """Tunables of the contraction run.

    ``merge_veto``, when set, receives the member node lists of the two
    partitions a sampled edge would merge and may forbid the merge --
    the §5.1 extension point for objectives beyond balance ("with
    additional information, such as the security/safety sensitivity of
    nodes, the module can be extended to prioritize other objectives").
    """

    target_partitions: int
    seed: int | None = None
    weight_fn: WeightFn = _default_weight
    constraint_fn: ConstraintFn | None = None
    balance_slack: float = 1.6
    merge_veto: MergeVeto | None = None

    def constraint(self, merged_cost: float, total_cost: float) -> bool:
        """Hard constraint on a proposed merge (True = allowed)."""
        if self.constraint_fn is not None:
            return self.constraint_fn(merged_cost, total_cost, self.target_partitions)
        limit = self.balance_slack * total_cost / self.target_partitions
        return merged_cost <= limit


def _build_quotient(model: ModelGraph) -> tuple[nx.DiGraph, dict[str, float]]:
    specs = infer_shapes(model)
    graph = nx.DiGraph()
    costs: dict[str, float] = {}
    for node in model.nodes:
        costs[node.name] = float(max(node_flops(node, specs), 1))
        graph.add_node(node.name)
    producers = model.producers()
    for node in model.nodes:
        for inp in node.inputs:
            producer = producers.get(inp)
            if producer is not None and producer.name != node.name:
                graph.add_edge(producer.name, node.name)
    return graph, costs


def _contractible(graph: nx.DiGraph, u: str, v: str) -> bool:
    """An edge is contractible iff no alternative path u -> v exists."""
    graph.remove_edge(u, v)
    try:
        return not nx.has_path(graph, u, v)
    finally:
        graph.add_edge(u, v)


def _contract(graph: nx.DiGraph, costs: dict[str, float], members: dict[str, list[str]],
              u: str, v: str) -> None:
    """Merge partition v into partition u in the quotient graph."""
    for pred in list(graph.predecessors(v)):
        if pred != u:
            graph.add_edge(pred, u)
    for succ in list(graph.successors(v)):
        if succ != u:
            graph.add_edge(u, succ)
    graph.remove_node(v)
    costs[u] += costs.pop(v)
    members[u].extend(members.pop(v))


def random_contraction(model: ModelGraph, settings: ContractionSettings) -> PartitionSet:
    """Run Algorithm 1 and return a validated :class:`PartitionSet`.

    Raises :class:`PartitionError` when the target is unreachable (more
    partitions requested than nodes, or a disconnected quotient that
    cannot contract further).
    """
    target = settings.target_partitions
    if target < 1:
        raise PartitionError("target_partitions must be >= 1")
    if target > len(model.nodes):
        raise PartitionError(
            f"cannot split {len(model.nodes)} nodes into {target} partitions"
        )
    rng = np.random.default_rng(settings.seed)
    graph, costs = _build_quotient(model)
    total_cost = sum(costs.values())
    members: dict[str, list[str]] = {name: [name] for name in graph.nodes}

    while graph.number_of_nodes() > target:
        edges = list(graph.edges)
        if not edges:
            raise PartitionError(
                f"quotient graph disconnected at {graph.number_of_nodes()} partitions; "
                f"cannot reach target {target}"
            )
        weights = np.array(
            [settings.weight_fn(costs[u], costs[v]) for u, v in edges], dtype=np.float64
        )
        weights = np.maximum(weights, 0.0)
        if weights.sum() <= 0:
            weights = np.ones(len(edges))
        # Weighted sampling without replacement: try candidates from most
        # preferred; reject on constraint or acyclicity violation.
        probabilities = weights / weights.sum()
        candidate_order = rng.choice(len(edges), size=len(edges), replace=False, p=probabilities)
        merged_any = False
        for edge_index in candidate_order:
            u, v = edges[edge_index]
            if not settings.constraint(costs[u] + costs[v], total_cost):
                continue
            if settings.merge_veto is not None and settings.merge_veto(
                members[u], members[v]
            ):
                continue
            if not _contractible(graph, u, v):
                continue
            _contract(graph, costs, members, u, v)
            merged_any = True
            break
        if not merged_any:
            # Every edge violated the soft/hard constraints: relax to the
            # smallest-merged-cost contractible edge so the run terminates
            # (the paper reruns with different seeds for global optima).
            fallback = None
            by_cost = sorted(edges, key=lambda e: costs[e[0]] + costs[e[1]])
            # Prefer a relaxation that still honors the merge veto; accept
            # a vetoed merge only if nothing else can make progress.
            for honor_veto in (True, False):
                for u, v in by_cost:
                    if (
                        honor_veto
                        and settings.merge_veto is not None
                        and settings.merge_veto(members[u], members[v])
                    ):
                        continue
                    if _contractible(graph, u, v):
                        fallback = (u, v)
                        break
                if fallback is not None:
                    break
            if fallback is None:
                raise PartitionError(
                    "no contractible edge remains; model branches are too "
                    f"interleaved to reach {target} partitions"
                )
            _contract(graph, costs, members, *fallback)

    node_position = {node.name: i for i, node in enumerate(model.topological_order())}
    leaders = list(nx.topological_sort(graph))
    partitions = [
        Partition(
            index=i,
            node_names=tuple(sorted(members[leader], key=node_position.__getitem__)),
        )
        for i, leader in enumerate(leaders)
    ]
    return PartitionSet(model=model, partitions=partitions, seed=settings.seed)
