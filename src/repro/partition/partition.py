"""Partitions and partition sets.

A :class:`PartitionSet` is an ordered list of node groups covering the
model exactly once, whose quotient graph is acyclic.  The tensors that
cross partition boundaries are the MVX *checkpoint tensors*: the monitor
collects them from every variant of a stage, cross-checks, and forwards
them to the next stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.graph.model import GraphError, ModelGraph
from repro.graph.shapes import infer_shapes
from repro.graph.tensor import TensorSpec

__all__ = ["Partition", "PartitionError", "PartitionSet"]


class PartitionError(Exception):
    """Raised when a partition set violates its invariants."""


@dataclass(frozen=True)
class Partition:
    """One stage: an ordered list of node names from the parent model."""

    index: int
    node_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.node_names:
            raise PartitionError(f"partition {self.index} is empty")
        object.__setattr__(self, "node_names", tuple(self.node_names))


@dataclass
class PartitionSet:
    """An ordered, validated partitioning of one model."""

    model: ModelGraph
    partitions: list[Partition]
    seed: int | None = None
    _subgraphs: dict[int, ModelGraph] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.validate()

    def __len__(self) -> int:
        return len(self.partitions)

    def validate(self) -> None:
        """Check coverage, disjointness, and quotient acyclicity."""
        all_nodes = [n.name for n in self.model.nodes]
        seen: dict[str, int] = {}
        for part in self.partitions:
            for name in part.node_names:
                if name in seen:
                    raise PartitionError(
                        f"node {name!r} in partitions {seen[name]} and {part.index}"
                    )
                seen[name] = part.index
        missing = set(all_nodes) - set(seen)
        if missing:
            raise PartitionError(f"nodes not covered by any partition: {sorted(missing)}")
        extra = set(seen) - set(all_nodes)
        if extra:
            raise PartitionError(f"partitions reference unknown nodes: {sorted(extra)}")
        # Quotient DAG check: data must only flow from lower to higher
        # partition indices (partitions are stored in topological order).
        producers = self.model.producers()
        for node in self.model.nodes:
            consumer_part = seen[node.name]
            for inp in node.inputs:
                producer = producers.get(inp)
                if producer is None:
                    continue
                producer_part = seen[producer.name]
                if producer_part > consumer_part:
                    raise PartitionError(
                        f"backward data flow: partition {producer_part} feeds "
                        f"partition {consumer_part} ({producer.name!r} -> {node.name!r})"
                    )

    def assignment(self) -> dict[str, int]:
        """Map node name to partition index."""
        return {
            name: part.index for part in self.partitions for name in part.node_names
        }

    def subgraph(self, index: int) -> ModelGraph:
        """The executable sub-model of one partition (cached)."""
        if index not in self._subgraphs:
            part = self.partitions[index]
            self._subgraphs[index] = self.model.extract_subgraph(
                list(part.node_names), name=f"{self.model.name}.p{index}"
            )
        return self._subgraphs[index]

    @cached_property
    def checkpoint_tensors(self) -> list[list[TensorSpec]]:
        """Per-partition boundary tensors (the checkpoints).

        Entry ``i`` holds the tensors produced by partition ``i`` that are
        consumed downstream or are graph outputs -- exactly the data the
        monitor synchronizes and verifies after stage ``i``.
        """
        return [list(self.subgraph(i).outputs) for i in range(len(self.partitions))]

    def checkpoint_bytes(self, index: int) -> int:
        """Bytes crossing the checkpoint after partition ``index``."""
        return sum(spec.nbytes for spec in self.checkpoint_tensors[index])

    def stage_feeds(self, index: int, env: dict) -> dict:
        """Select the feeds for stage ``index`` from accumulated tensors."""
        sub = self.subgraph(index)
        try:
            return {spec.name: env[spec.name] for spec in sub.inputs}
        except KeyError as exc:
            raise PartitionError(
                f"stage {index} input {exc} not yet produced"
            ) from exc

    def describe(self) -> str:
        """Human-readable summary (sizes and checkpoint volumes)."""
        specs = infer_shapes(self.model)
        lines = [f"partition set over {self.model.name}: {len(self)} partitions"]
        for part in self.partitions:
            boundary = self.checkpoint_bytes(part.index)
            lines.append(
                f"  p{part.index}: {len(part.node_names)} nodes, "
                f"checkpoint {boundary / 1024:.1f} KiB"
            )
        del specs
        return "\n".join(lines)
