"""Sensitivity-aware partitioning (§5.1 extension objective).

Transfer-learned models concentrate the owner's IP in a few fine-tuned
layers (§4.3 selective MVX rationale).  If partitioning isolates those
*sensitive* nodes into their own partitions, selective MVX can protect
exactly them at minimal cost.  :func:`sensitivity_partition` runs the
random contraction with a merge veto that keeps sensitive and
non-sensitive nodes from mixing, then reports which partitions came out
sensitive -- the natural ``mvx_partitions`` input for deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import ModelGraph
from repro.partition.contraction import ContractionSettings, random_contraction
from repro.partition.partition import PartitionError, PartitionSet

__all__ = ["SensitivityPlan", "sensitivity_partition"]


@dataclass(frozen=True)
class SensitivityPlan:
    """A partitioning plus its sensitivity classification."""

    partition_set: PartitionSet
    sensitive_partitions: tuple[int, ...]
    #: Fraction of sensitive nodes that landed in pure sensitive partitions.
    purity: float

    def mvx_partitions(self, variants: int = 3) -> dict[int, int]:
        """The selective-MVX claim map protecting the sensitive partitions."""
        return {index: variants for index in self.sensitive_partitions}


def sensitivity_partition(
    model: ModelGraph,
    target_partitions: int,
    sensitive_nodes: set[str],
    *,
    seed: int = 0,
    restarts: int = 4,
    balance_slack: float = 2.5,
) -> SensitivityPlan:
    """Partition so sensitive nodes stay in dedicated partitions.

    The merge veto forbids mixing sensitive with non-sensitive members;
    the contraction's relaxation path may still mix when the graph
    forces it, so the returned plan reports the achieved ``purity`` and
    classifies any mixed partition as sensitive (fail-closed: protection
    over-approximates).
    """
    unknown = sensitive_nodes - {n.name for n in model.nodes}
    if unknown:
        raise PartitionError(f"unknown sensitive nodes: {sorted(unknown)}")
    if not sensitive_nodes:
        raise PartitionError("sensitive_nodes must be non-empty")

    def veto(members_a: list[str], members_b: list[str]) -> bool:
        a_sensitive = any(m in sensitive_nodes for m in members_a)
        b_sensitive = any(m in sensitive_nodes for m in members_b)
        return a_sensitive != b_sensitive

    best: SensitivityPlan | None = None
    for attempt in range(restarts):
        settings = ContractionSettings(
            target_partitions=target_partitions,
            seed=seed + attempt,
            balance_slack=balance_slack,
            merge_veto=veto,
        )
        try:
            partition_set = random_contraction(model, settings)
        except PartitionError:
            continue
        plan = _classify(partition_set, sensitive_nodes)
        if best is None or plan.purity > best.purity:
            best = plan
        if best.purity == 1.0:
            break
    if best is None:
        raise PartitionError(
            f"sensitivity partitioning failed for target {target_partitions}"
        )
    return best


def _classify(partition_set: PartitionSet, sensitive_nodes: set[str]) -> SensitivityPlan:
    sensitive_partitions = []
    pure_sensitive_members = 0
    for part in partition_set.partitions:
        members = set(part.node_names)
        hits = members & sensitive_nodes
        if hits:
            sensitive_partitions.append(part.index)
            if members <= sensitive_nodes:
                pure_sensitive_members += len(hits)
    purity = pure_sensitive_members / len(sensitive_nodes)
    return SensitivityPlan(
        partition_set=partition_set,
        sensitive_partitions=tuple(sensitive_partitions),
        purity=purity,
    )
