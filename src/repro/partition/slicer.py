"""Manual partitioning: the graph slicer.

For model owners with expert knowledge of sensitive operators (§5.1
manual mode): partitions are contiguous slices of the topological node
order, cut after user-specified node indices or names.  Contiguous
topological slices always yield forward-only data flow, so the result is
a valid pipeline by construction.
"""

from __future__ import annotations

from repro.graph.model import ModelGraph
from repro.partition.partition import Partition, PartitionError, PartitionSet

__all__ = ["slice_by_indices", "slice_by_names"]


def slice_by_indices(model: ModelGraph, cut_after: list[int]) -> PartitionSet:
    """Cut the topological order after each index in ``cut_after``.

    ``cut_after=[9, 19]`` over 30 nodes yields partitions of nodes
    0-9, 10-19 and 20-29.
    """
    order = [n.name for n in model.topological_order()]
    cuts = sorted(set(cut_after))
    if not cuts:
        raise PartitionError("cut_after must name at least one cut point")
    if cuts[0] < 0 or cuts[-1] >= len(order) - 1:
        raise PartitionError(
            f"cut indices must lie in [0, {len(order) - 2}], got {cuts}"
        )
    partitions = []
    start = 0
    for index, cut in enumerate([*cuts, len(order) - 1]):
        partitions.append(Partition(index=index, node_names=tuple(order[start : cut + 1])))
        start = cut + 1
    return PartitionSet(model=model, partitions=partitions)


def slice_by_names(model: ModelGraph, last_node_of_each: list[str]) -> PartitionSet:
    """Cut after each named node (all but the final partition's last node)."""
    order = [n.name for n in model.topological_order()]
    positions = {name: i for i, name in enumerate(order)}
    try:
        cuts = [positions[name] for name in last_node_of_each]
    except KeyError as exc:
        raise PartitionError(f"unknown node {exc} in slice request") from exc
    return slice_by_indices(model, cuts)
