"""Partition correctness verification.

§6.1: "They are tested for correctness before evaluation."  Executes the
partition subgraphs stage by stage and compares against the unpartitioned
model on random inputs.

Verification compares *every checkpoint tensor*, not just the final
model outputs: the paper notes (§4.1) that "some fault-caused
discrepancies may be hidden by the model's resilience" -- e.g. a saturated
softmax head masks large internal deviations -- so boundary-tensor
comparison is the only sound correctness check.
"""

from __future__ import annotations

import numpy as np

from repro.ops.kernels import KernelContext, evaluate_node
from repro.partition.partition import PartitionSet
from repro.runtime.base import RuntimeConfig
from repro.runtime.interpreter import InterpreterRuntime

__all__ = ["run_staged", "verify_partition_set"]


def run_staged(
    partition_set: PartitionSet,
    feeds: dict[str, np.ndarray],
    *,
    config: RuntimeConfig | None = None,
) -> dict[str, np.ndarray]:
    """Execute the model through its partitions sequentially.

    Returns the accumulated tensor environment: all checkpoint tensors
    plus the final model outputs.
    """
    config = config or RuntimeConfig(optimization_level=0)
    env: dict[str, np.ndarray] = dict(feeds)
    for index in range(len(partition_set)):
        sub = partition_set.subgraph(index)
        runtime = InterpreterRuntime(config)
        runtime.prepare(sub)
        outputs = runtime.run(partition_set.stage_feeds(index, env))
        env.update(outputs)
    return env


def _full_tensor_environment(model, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Every tensor of an unpartitioned reference execution."""
    env: dict[str, np.ndarray] = dict(model.initializers)
    env.update(feeds)
    ctx = KernelContext()
    for node in model.topological_order():
        outputs = evaluate_node(node, [env[name] for name in node.inputs], ctx)
        env.update(zip(node.outputs, outputs))
    return env


def verify_partition_set(
    partition_set: PartitionSet,
    *,
    seed: int = 0,
    rtol: float = 1e-4,
    atol: float = 1e-5,
) -> None:
    """Assert staged execution matches whole-model execution everywhere.

    Compares each stage's checkpoint tensors and the model outputs;
    raises :class:`AssertionError` with the first deviation found.
    """
    rng = np.random.default_rng(seed)
    feeds = {
        spec.name: rng.normal(size=spec.shape).astype(spec.dtype.numpy)
        for spec in partition_set.model.inputs
    }
    reference = _full_tensor_environment(partition_set.model, feeds)
    staged = run_staged(partition_set, feeds)
    to_check = [
        spec.name
        for index in range(len(partition_set))
        for spec in partition_set.checkpoint_tensors[index]
    ] + [spec.name for spec in partition_set.model.outputs]
    for name in to_check:
        expected = reference[name]
        actual = staged[name]
        if not np.allclose(expected, actual, rtol=rtol, atol=atol):
            deviation = float(np.max(np.abs(expected - actual)))
            raise AssertionError(
                f"staged execution diverges on checkpoint {name!r}: "
                f"max deviation {deviation:g}"
            )
