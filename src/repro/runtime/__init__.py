"""Diversified inference runtimes.

Two genuinely distinct execution engines stand in for ONNX Runtime and
the TVM graph executor:

- :class:`~repro.runtime.interpreter.InterpreterRuntime` ("ORT-like"):
  walks the graph in topological order calling reference kernels, with
  optional graph optimizations (Conv+BN folding, identity elimination).
- :class:`~repro.runtime.compiled.CompiledRuntime` ("TVM-like"): a
  compile phase lowers every node to a specialized closure, auto-tuning
  the GEMM tile schedule per layer, then a graph executor runs the
  compiled program.

Both engines select a BLAS backend (:mod:`repro.ops.blas`), giving the
three diversification axes of Figure 3's inference-instance level:
engine x optimization x acceleration library.  Fault injection hooks
(:mod:`repro.runtime.faults`) model the CVE and bit-flip attacks of the
paper's security analysis.
"""

from repro.runtime.base import InferenceRuntime, RuntimeConfig, RuntimeCrash, RuntimeError_
from repro.runtime.interpreter import InterpreterRuntime
from repro.runtime.compiled import CompiledRuntime
from repro.runtime.faults import (
    FaultInjector,
    backend_bitflip_fault,
    crash_on_trigger,
    flip_weight_bit,
    output_corruption_fault,
)

__all__ = [
    "CompiledRuntime",
    "FaultInjector",
    "InferenceRuntime",
    "InterpreterRuntime",
    "RuntimeConfig",
    "RuntimeCrash",
    "RuntimeError_",
    "backend_bitflip_fault",
    "crash_on_trigger",
    "flip_weight_bit",
    "output_corruption_fault",
    "create_runtime",
]


def create_runtime(config: RuntimeConfig) -> InferenceRuntime:
    """Instantiate a runtime from a configuration (engine dispatch)."""
    if config.engine == "interpreter":
        return InterpreterRuntime(config)
    if config.engine == "compiled":
        return CompiledRuntime(config)
    raise ValueError(f"unknown engine {config.engine!r}")
