"""Runtime interface and configuration."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.graph.model import ModelGraph
from repro.ops.kernels import KernelContext

__all__ = ["InferenceRuntime", "RuntimeConfig", "RuntimeCrash", "RuntimeError_"]


class RuntimeCrash(Exception):
    """The runtime process died (models DoS-class CVE outcomes).

    In the real system this is a segfault/abort of the variant TEE; the
    monitor observes the missing checkpoint response and reacts.
    """


class RuntimeError_(Exception):
    """A recoverable runtime failure (bad feeds, unprepared runtime, ...)."""


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything that identifies one inference-instance variant.

    The JSON form of this config is part of the variant's measured
    identity: two variants with different configs measure differently.
    """

    engine: str = "interpreter"  # "interpreter" (ORT-like) | "compiled" (TVM-like)
    blas_backend: str = "mkl-sim"
    optimization_level: int = 1  # 0 = none, 1 = standard fusion/elimination
    executor: str = "graph"  # compiled engine: "graph" | "vm"
    tuning_trials: int = 3  # compiled engine: auto-tune candidates per layer
    compiler_flags: tuple[str, ...] = ()  # e.g. sanitizers, stack protectors
    label: str = ""

    def identity(self) -> str:
        """Stable hash of the configuration."""
        return hashlib.sha256(
            json.dumps(
                {
                    "engine": self.engine,
                    "blas_backend": self.blas_backend,
                    "optimization_level": self.optimization_level,
                    "executor": self.executor,
                    "tuning_trials": self.tuning_trials,
                    "compiler_flags": list(self.compiler_flags),
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()

    def to_json(self) -> dict:
        """JSON-serializable form."""
        return {
            "engine": self.engine,
            "blas_backend": self.blas_backend,
            "optimization_level": self.optimization_level,
            "executor": self.executor,
            "tuning_trials": self.tuning_trials,
            "compiler_flags": list(self.compiler_flags),
            "label": self.label,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RuntimeConfig":
        """Inverse of :meth:`to_json`."""
        return cls(
            engine=data.get("engine", "interpreter"),
            blas_backend=data.get("blas_backend", "mkl-sim"),
            optimization_level=int(data.get("optimization_level", 1)),
            executor=data.get("executor", "graph"),
            tuning_trials=int(data.get("tuning_trials", 3)),
            compiler_flags=tuple(data.get("compiler_flags", ())),
            label=data.get("label", ""),
        )


class InferenceRuntime:
    """Base class: prepare a model once, run it many times."""

    def __init__(self, config: RuntimeConfig):
        self.config = config
        self.model: ModelGraph | None = None
        self.kernel_context: KernelContext | None = None

    @property
    def name(self) -> str:
        """Human-readable runtime identity."""
        return self.config.label or f"{self.config.engine}/{self.config.blas_backend}"

    def prepare(self, model: ModelGraph) -> None:
        """Load (and possibly optimize/compile) a model.  Subclasses extend."""
        raise NotImplementedError

    def run(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Execute one inference; returns outputs keyed by tensor name."""
        raise NotImplementedError

    def _check_feeds(self, feeds: dict[str, np.ndarray]) -> None:
        if self.model is None:
            raise RuntimeError_("runtime not prepared; call prepare(model) first")
        expected = self.model.input_names()
        missing = expected - set(feeds)
        if missing:
            raise RuntimeError_(f"missing input feeds: {sorted(missing)}")
