"""The compiled runtime ("TVM-like").

Mirrors an ML compiler's structure: a *lowering* phase specializes every
node into a closure, auto-tuning the GEMM tile schedule per layer by
timing candidate tile sizes on representative data (the paper: "the ML
compiler often uses auto-tuning techniques to iteratively identify the
most efficient implementation options ... thereby naturally achieving
diversification").  Two executors run the compiled program:

- ``graph``: flat loop over compiled closures (graph executor);
- ``vm``: a small register bytecode machine (TVM's VM executor analog).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.model import ModelGraph
from repro.graph.node import Node
from repro.ops.blas import BlasBackend, get_backend
from repro.ops.kernels import KernelContext, evaluate_node
from repro.runtime.base import InferenceRuntime, RuntimeError_
from repro.runtime.optimizations import optimize

__all__ = ["CompiledRuntime"]

_TILE_CANDIDATES = (32, 64, 128, 256)


def _tiled_gemm(tile: int) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.zeros((a.shape[0], b.shape[1]), dtype=np.result_type(a, b))
        for k0 in range(0, a.shape[1], tile):
            out += a[:, k0 : k0 + tile] @ b[k0 : k0 + tile, :]
        return out

    return gemm


@dataclass
class _CompiledNode:
    """One lowered operator: the node plus its specialized kernel context."""

    node: Node
    context: KernelContext
    schedule: str


class CompiledRuntime(InferenceRuntime):
    """Lower-then-execute engine with per-layer schedule auto-tuning."""

    def prepare(self, model: ModelGraph) -> None:
        """Optimize, lower every node, auto-tune GEMM-bearing layers."""
        prepared = optimize(model, self.config.optimization_level)
        prepared.toposort_inplace()
        self.model = prepared
        base_backend = get_backend(self.config.blas_backend)
        self.kernel_context = KernelContext(blas=base_backend)
        self._program: list[_CompiledNode] = []
        for node in prepared.nodes:
            context, schedule = self._lower_node(node, base_backend)
            self._program.append(_CompiledNode(node, context, schedule))

    def _lower_node(
        self, node: Node, base_backend: BlasBackend
    ) -> tuple[KernelContext, str]:
        if node.op_type not in ("Conv", "Gemm", "MatMul") or self.config.tuning_trials <= 0:
            return KernelContext(blas=base_backend, op_hooks=self.kernel_context.op_hooks), "default"
        tile = self._autotune_tile(node)
        tuned = BlasBackend(
            name=f"{base_backend.name}+tile{tile}",
            gemm_impl=_tiled_gemm(tile),
            fault_hook=base_backend.fault_hook,
        )
        # Share the fault-hook *state* with the base backend so faults
        # injected on the runtime's backend reach tuned layers as well.
        self._tuned_backends.append(tuned)
        return (
            KernelContext(blas=tuned, op_hooks=self.kernel_context.op_hooks),
            f"tile={tile}",
        )

    def _autotune_tile(self, node: Node) -> int:
        """Pick a tile size by timing candidates on a small probe GEMM.

        Deterministic tie-breaking on the node name keeps variant builds
        reproducible while still differing across layers -- the natural
        diversification the paper attributes to auto-tuning.
        """
        trials = min(self.config.tuning_trials, len(_TILE_CANDIDATES))
        seed = int.from_bytes(node.name.encode()[-4:].rjust(4, b"\0"), "big")
        candidates = [
            _TILE_CANDIDATES[(seed + i) % len(_TILE_CANDIDATES)] for i in range(trials)
        ]
        probe_a = np.ones((8, 256), dtype=np.float32)
        probe_b = np.ones((256, 8), dtype=np.float32)
        best_tile, best_time = candidates[0], float("inf")
        for tile in candidates:
            gemm = _tiled_gemm(tile)
            start = time.perf_counter()
            gemm(probe_a, probe_b)
            elapsed = time.perf_counter() - start
            if elapsed < best_time:
                best_tile, best_time = tile, elapsed
        return best_tile

    def __init__(self, config):
        super().__init__(config)
        self._tuned_backends: list[BlasBackend] = []
        self.kernel_context = KernelContext()

    def install_backend_fault(self, fault_hook) -> None:
        """Inject a library-level fault into every lowered layer."""
        assert self.kernel_context is not None
        self.kernel_context.blas.fault_hook = fault_hook
        for backend in self._tuned_backends:
            backend.fault_hook = fault_hook

    def run(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """One inference through the compiled program."""
        self._check_feeds(feeds)
        assert self.model is not None
        if self.config.executor == "vm":
            return self._run_vm(feeds)
        return self._run_graph(feeds)

    def _run_graph(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        env: dict[str, np.ndarray] = dict(self.model.initializers)
        env.update(feeds)
        for compiled in self._program:
            inputs = [env[name] for name in compiled.node.inputs]
            outputs = evaluate_node(compiled.node, inputs, compiled.context)
            env.update(zip(compiled.node.outputs, outputs))
        return {s.name: env[s.name] for s in self.model.outputs}

    def _run_vm(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Register-machine executor: tensors live in numbered registers.

        Functionally identical to the graph executor but with a distinct
        memory-management code path (registers are freed at last use),
        modeling TVM's VM executor as a separate implementation.
        """
        register_of: dict[str, int] = {}
        last_use: dict[str, int] = {}
        for pc, compiled in enumerate(self._program):
            for name in compiled.node.inputs:
                last_use[name] = pc
        keep = {s.name for s in self.model.outputs}
        registers: dict[int, np.ndarray] = {}
        next_reg = 0

        def store(name: str, value: np.ndarray) -> None:
            nonlocal next_reg
            register_of[name] = next_reg
            registers[next_reg] = value
            next_reg += 1

        for name, value in {**self.model.initializers, **feeds}.items():
            store(name, value)
        for pc, compiled in enumerate(self._program):
            inputs = [registers[register_of[name]] for name in compiled.node.inputs]
            outputs = evaluate_node(compiled.node, inputs, compiled.context)
            for name, value in zip(compiled.node.outputs, outputs):
                store(name, value)
            # Free dead registers (distinct memory behavior from graph mode).
            for name in compiled.node.inputs:
                if last_use.get(name) == pc and name not in keep:
                    registers.pop(register_of[name], None)
        try:
            return {s.name: registers[register_of[s.name]] for s in self.model.outputs}
        except KeyError as exc:
            raise RuntimeError_(f"vm executor lost output register: {exc}") from exc
