"""Fault and vulnerability injection.

Models the two threat classes of the paper's §2.3/§6.5:

- *Model-targeted faults*: bit flips in weight tensors (Terminal Brain
  Damage style), via :func:`flip_weight_bit`.
- *Framework/library faults and CVEs*: corruption or crashes keyed to a
  specific implementation -- a BLAS backend (:func:`backend_bitflip_fault`,
  FrameFlip style) or an operator kernel in one runtime
  (:func:`crash_on_trigger` / :func:`output_corruption_fault`, CVE style).

Because each injection targets exactly one implementation, variants built
on different engines/backends are unaffected -- the single-variant-impact
premise MVX detection rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.graph.model import ModelGraph
from repro.graph.node import Node
from repro.runtime.base import InferenceRuntime, RuntimeCrash

__all__ = [
    "FaultInjector",
    "apply_fault_spec",
    "backend_bitflip_fault",
    "crash_on_trigger",
    "flip_weight_bit",
    "magnitude_trigger",
    "output_corruption_fault",
]


def flip_weight_bit(model: ModelGraph, tensor_name: str, flat_index: int, bit: int) -> None:
    """Flip one bit of one float32 weight element, in place.

    ``bit`` 0..31; bit 30 (high exponent) is the classic high-impact flip.
    """
    if tensor_name not in model.initializers:
        raise KeyError(f"model has no initializer {tensor_name!r}")
    weights = model.initializers[tensor_name]
    if weights.dtype != np.float32:
        raise TypeError(f"initializer {tensor_name!r} is {weights.dtype}, not float32")
    flat = weights.reshape(-1).view(np.uint32)
    if not 0 <= flat_index < flat.size:
        raise IndexError(f"flat index {flat_index} out of range for {tensor_name!r}")
    if not 0 <= bit < 32:
        raise ValueError("bit must be in [0, 32)")
    flat[flat_index] ^= np.uint32(1 << bit)


def backend_bitflip_fault(
    *, flat_index: int = 0, bit: int = 30
) -> Callable[[np.ndarray], np.ndarray]:
    """FrameFlip-style library fault: every GEMM result has one bit flipped.

    Install on a :class:`~repro.ops.blas.BlasBackend` via ``fault_hook``;
    only variants linked against that backend are affected.
    """

    def hook(result: np.ndarray) -> np.ndarray:
        corrupted = np.ascontiguousarray(result, dtype=np.float32)
        flat = corrupted.reshape(-1).view(np.uint32)
        flat[flat_index % flat.size] ^= np.uint32(1 << bit)
        return corrupted

    return hook


def output_corruption_fault(
    *, scale: float = 100.0
) -> Callable[[Node, list[np.ndarray], list[np.ndarray]], list[np.ndarray]]:
    """Op hook producing silently wrong results (data-corruption CVEs)."""

    def hook(node: Node, inputs: list[np.ndarray], outputs: list[np.ndarray]):
        return [out * scale for out in outputs]

    return hook


def magnitude_trigger(
    threshold: float,
) -> Callable[[Node, list[np.ndarray]], bool]:
    """Predicate matching crafted inputs carrying a magnitude marker.

    Models the "malicious input reached the buggy kernel" condition: any
    floating-point input whose magnitude reaches ``threshold`` counts as
    having taken the vulnerable code path.
    """

    def predicate(node: Node, inputs: list[np.ndarray]) -> bool:
        return any(
            np.issubdtype(arr.dtype, np.floating)
            and bool(np.any(np.abs(arr) >= threshold))
            for arr in inputs
        )

    return predicate


def crash_on_trigger(
    predicate: Callable[[Node, list[np.ndarray]], bool],
    *,
    message: str = "simulated memory-safety crash",
) -> Callable[[Node, list[np.ndarray], list[np.ndarray]], list[np.ndarray]]:
    """Op hook that kills the runtime when a crafted input reaches the op.

    ``predicate(node, inputs)`` models the vulnerable code path: True
    means the malicious input pattern reached the buggy kernel (DoS /
    code-execution CVE classes).
    """

    def hook(node: Node, inputs: list[np.ndarray], outputs: list[np.ndarray]):
        if predicate(node, inputs):
            raise RuntimeCrash(f"{message} in {node.op_type} kernel ({node.name})")
        return outputs

    return hook


@dataclass
class FaultInjector:
    """Convenience facade for arming faults on a prepared runtime."""

    runtime: InferenceRuntime
    _armed: list[str] = field(default_factory=list)

    def arm_backend_bitflip(self, *, flat_index: int = 0, bit: int = 30) -> None:
        """Corrupt this runtime's BLAS backend (library-level fault)."""
        assert self.runtime.kernel_context is not None
        hook = backend_bitflip_fault(flat_index=flat_index, bit=bit)
        install = getattr(self.runtime, "install_backend_fault", None)
        if install is not None:
            install(hook)  # compiled runtime: reaches tuned layers too
        else:
            self.runtime.kernel_context.blas.fault_hook = hook
        self._armed.append(f"backend-bitflip(bit={bit})")

    def arm_op_crash(
        self,
        op_type: str,
        predicate: Callable[[Node, list[np.ndarray]], bool],
        *,
        message: str = "simulated memory-safety crash",
    ) -> None:
        """Crash the runtime when the predicate matches on ``op_type``."""
        assert self.runtime.kernel_context is not None
        self.runtime.kernel_context.op_hooks[op_type] = crash_on_trigger(
            predicate, message=message
        )
        self._armed.append(f"op-crash({op_type})")

    def arm_op_corruption(self, op_type: str, *, scale: float = 100.0) -> None:
        """Silently corrupt the outputs of ``op_type``."""
        assert self.runtime.kernel_context is not None
        self.runtime.kernel_context.op_hooks[op_type] = output_corruption_fault(scale=scale)
        self._armed.append(f"op-corruption({op_type})")

    def disarm(self) -> None:
        """Remove all injected faults."""
        assert self.runtime.kernel_context is not None
        self.runtime.kernel_context.op_hooks.clear()
        self.runtime.kernel_context.blas.fault_hook = None
        install = getattr(self.runtime, "install_backend_fault", None)
        if install is not None:
            install(None)
        self._armed.clear()

    def disarm_op(self, op_type: str) -> None:
        """Remove the fault on one operator, leaving others armed."""
        assert self.runtime.kernel_context is not None
        self.runtime.kernel_context.op_hooks.pop(op_type, None)
        self._armed = [a for a in self._armed if f"({op_type})" not in a]

    def disarm_backend(self) -> None:
        """Remove the BLAS-level fault only, leaving op faults armed."""
        assert self.runtime.kernel_context is not None
        self.runtime.kernel_context.blas.fault_hook = None
        install = getattr(self.runtime, "install_backend_fault", None)
        if install is not None:
            install(None)
        self._armed = [a for a in self._armed if not a.startswith("backend-bitflip")]

    @property
    def armed(self) -> list[str]:
        """Descriptions of currently armed faults."""
        return list(self._armed)


# ----------------------------------------------------------------------
# Wire-safe fault specs
# ----------------------------------------------------------------------
#
# A fault spec is a plain-JSON description of one injection (or its
# reversal) that can cross a process boundary: the chaos harness sends
# specs to forked variant workers, whose runtimes are *copies* of the
# parent's -- arming a fault on the parent-side runtime after the fork
# would not reach the worker at all.


def apply_fault_spec(runtime: InferenceRuntime, spec: dict) -> dict:
    """Apply one JSON fault spec to a prepared runtime.

    Spec kinds (all fields JSON scalars/lists so a spec survives the
    worker pipe):

    - ``op-crash``: ``{op, threshold, message?}`` -- crash the kernel of
      ``op`` when an input magnitude reaches ``threshold``.
    - ``op-corrupt``: ``{op, threshold, value?}`` -- return a constant
      wrong result from ``op`` on the malicious path only.
    - ``op-clear``: ``{op}`` -- remove the fault on one operator.
    - ``backend-bitflip``: ``{index?, bit?}`` -- corrupt the BLAS
      backend (FrameFlip style).
    - ``backend-clear``: remove the BLAS fault.
    - ``weight-flips``: ``{flips: [[tensor, flat_index], ...], bit?}`` --
      XOR one bit of each listed weight element; applying the same spec
      twice restores the weights (XOR involution).
    - ``disarm-all``: remove every op and backend fault.

    Returns a small JSON-able acknowledgment.  Raises ``ValueError`` on
    an unknown kind and whatever the underlying helper raises on bad
    targets (missing tensor, out-of-range index).
    """
    kind = spec.get("kind")
    injector = FaultInjector(runtime)
    if kind == "op-crash":
        injector.arm_op_crash(
            str(spec["op"]),
            magnitude_trigger(float(spec["threshold"])),
            message=str(spec.get("message", "injected memory-safety crash")),
        )
    elif kind == "op-corrupt":
        threshold = float(spec["threshold"])
        value = float(spec.get("value", 42.0))
        trigger = magnitude_trigger(threshold)

        def corrupt(node, inputs, outputs, _trigger=trigger, _value=value):
            if _trigger(node, inputs):
                return [np.full_like(out, _value) for out in outputs]
            return outputs

        assert runtime.kernel_context is not None
        runtime.kernel_context.op_hooks[str(spec["op"])] = corrupt
    elif kind == "op-clear":
        injector.disarm_op(str(spec["op"]))
    elif kind == "backend-bitflip":
        injector.arm_backend_bitflip(
            flat_index=int(spec.get("index", 0)), bit=int(spec.get("bit", 30))
        )
    elif kind == "backend-clear":
        injector.disarm_backend()
    elif kind == "weight-flips":
        if runtime.model is None:
            raise ValueError("runtime holds no model to flip weights in")
        bit = int(spec.get("bit", 30))
        for tensor, flat_index in spec["flips"]:
            flip_weight_bit(runtime.model, str(tensor), int(flat_index), bit)
    elif kind == "disarm-all":
        injector.disarm()
    else:
        raise ValueError(f"unknown fault spec kind {kind!r}")
    return {"applied": kind}
