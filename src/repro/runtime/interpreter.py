"""The interpreter runtime ("ORT-like").

Executes the graph node by node in topological order through the
reference kernels, after optionally applying the standard optimization
pipeline (identity elimination + Conv/BN folding) at prepare time.
"""

from __future__ import annotations

import numpy as np

from repro.graph.model import ModelGraph
from repro.ops.blas import get_backend
from repro.ops.kernels import KernelContext, evaluate_node
from repro.runtime.base import InferenceRuntime, RuntimeError_
from repro.runtime.optimizations import optimize

__all__ = ["InterpreterRuntime"]


class InterpreterRuntime(InferenceRuntime):
    """Graph-walking executor over reference kernels."""

    def prepare(self, model: ModelGraph) -> None:
        """Optimize (per config) and cache the execution order."""
        prepared = optimize(model, self.config.optimization_level)
        prepared.toposort_inplace()
        self.model = prepared
        self.kernel_context = KernelContext(blas=get_backend(self.config.blas_backend))
        self._order = prepared.nodes

    def run(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """One inference pass."""
        self._check_feeds(feeds)
        assert self.model is not None and self.kernel_context is not None
        env: dict[str, np.ndarray] = dict(self.model.initializers)
        env.update(feeds)
        for node in self._order:
            inputs = [env[name] for name in node.inputs]
            outputs = evaluate_node(node, inputs, self.kernel_context)
            env.update(zip(node.outputs, outputs))
        missing = [s.name for s in self.model.outputs if s.name not in env]
        if missing:
            raise RuntimeError_(f"outputs never produced: {missing}")
        return {s.name: env[s.name] for s in self.model.outputs}
