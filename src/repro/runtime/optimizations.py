"""Graph optimization passes shared by the runtimes.

These are the "built-in graph-level transformations" of real inference
runtimes that §4.2 mentions: the interpreter applies them at prepare time
when ``optimization_level >= 1``, and the variant tooling can explicitly
disable them (selective optimization as a defense).
"""

from __future__ import annotations

import numpy as np

from repro.graph.model import ModelGraph
from repro.graph.node import Node

__all__ = ["eliminate_identities", "fold_batch_norm", "optimize"]


def eliminate_identities(model: ModelGraph) -> ModelGraph:
    """Remove Identity/Dropout/ZeroAdd nodes, rewiring their consumers.

    Tensors that are graph outputs keep a pass-through node so the output
    names remain stable.
    """
    out = model.copy()
    output_names = out.output_names()
    removable = []
    rename: dict[str, str] = {}
    for node in out.nodes:
        if node.op_type in ("Identity", "Dropout", "ZeroAdd") and node.outputs[0] not in output_names:
            rename[node.outputs[0]] = node.inputs[0]
            removable.append(node.name)
    # Resolve chains (identity of identity).
    def resolve(name: str) -> str:
        seen = set()
        while name in rename and name not in seen:
            seen.add(name)
            name = rename[name]
        return name

    out.nodes = [n for n in out.nodes if n.name not in removable]
    for node in out.nodes:
        node.inputs = [resolve(i) for i in node.inputs]
    out.validate()
    return out


def fold_batch_norm(model: ModelGraph) -> ModelGraph:
    """Fold BatchNormalization into a preceding Conv's weights.

    Classic inference-time fusion: ``BN(conv(x, W) ) == conv(x, W') + b'``
    with per-output-channel rescaling.  Only applied when the Conv output
    feeds exactly the BN node (no other consumers) and is not a graph
    output.
    """
    out = model.copy()
    out.toposort_inplace()
    consumers = out.consumers()
    producers = out.producers()
    output_names = out.output_names()
    folded: set[str] = set()
    new_nodes: list[Node] = []
    for node in out.nodes:
        if node.name in folded:
            continue
        if node.op_type != "BatchNormalization":
            new_nodes.append(node)
            continue
        source = producers.get(node.inputs[0])
        if (
            source is None
            or source.op_type != "Conv"
            or len(consumers.get(node.inputs[0], [])) != 1
            or node.inputs[0] in output_names
        ):
            new_nodes.append(node)
            continue
        weight_name = source.inputs[1]
        scale = out.initializers[node.inputs[1]].astype(np.float64)
        shift = out.initializers[node.inputs[2]].astype(np.float64)
        mean = out.initializers[node.inputs[3]].astype(np.float64)
        var = out.initializers[node.inputs[4]].astype(np.float64)
        eps = float(node.attrs.get("epsilon", 1e-5))
        factor = scale / np.sqrt(var + eps)
        weight = out.initializers[weight_name].astype(np.float64)
        new_weight = (weight * factor.reshape(-1, 1, 1, 1)).astype(np.float32)
        old_bias = (
            out.initializers[source.inputs[2]].astype(np.float64)
            if len(source.inputs) > 2
            else np.zeros(weight.shape[0])
        )
        new_bias = ((old_bias - mean) * factor + shift).astype(np.float32)
        folded_weight_name = f"{weight_name}.bnfold"
        folded_bias_name = f"{source.name}.bnfold.bias"
        out.initializers[folded_weight_name] = new_weight
        out.initializers[folded_bias_name] = new_bias
        # Rewrite the conv in place: new weights/bias, output renamed to
        # the BN's output so downstream consumers are untouched.
        conv = next(n for n in new_nodes if n.name == source.name)
        conv.inputs = [source.inputs[0], folded_weight_name, folded_bias_name]
        conv.outputs = [node.outputs[0]]
        folded.add(node.name)
    out.nodes = new_nodes
    # Drop orphaned initializers (old BN params / unfused weights).
    used = {i for n in out.nodes for i in n.inputs}
    out.initializers = {k: v for k, v in out.initializers.items() if k in used}
    out.validate()
    return out


def fuse_activations(model: ModelGraph) -> ModelGraph:
    """Fuse Conv+Relu / Gemm+Relu pairs into the fused kernels (level 2)."""
    from repro.variants.transforms import TransformError, _fuse_with_relu

    for op_type, fused in (("Conv", "FusedConvRelu"), ("Gemm", "FusedGemmRelu")):
        try:
            model = _fuse_with_relu(model, op_type, fused)
        except TransformError:
            pass  # nothing to fuse for this pair
    return model


def optimize(model: ModelGraph, level: int) -> ModelGraph:
    """Apply the optimization pipeline for the given level.

    Level 0 = none; level 1 = identity elimination + Conv/BN folding;
    level 2 = level 1 plus activation fusion -- each level is another
    inference-instance diversification axis.
    """
    if level <= 0:
        return model
    model = eliminate_identities(model)
    model = fold_batch_norm(model)
    if level >= 2:
        model = fuse_activations(model)
    return model
