"""Concurrent serving: admission control, micro-batching, parallel variants.

The paper motivates streaming/pipelined serving for "real-time scenarios
and continuous large-volume data analysis" (§6.4); this package is the
serving layer that makes that real under load.  A request travels

    admit -> batch -> execute -> respond

- :mod:`repro.serving.admission` -- a bounded queue with backpressure:
  over-capacity submissions are *shed* with a typed
  :class:`~repro.serving.errors.Overloaded` instead of growing the queue
  without bound.
- :mod:`repro.serving.batching` -- a dynamic micro-batcher that coalesces
  queued requests under a ``max_batch_size`` / ``max_wait_s`` policy
  before handing them to :meth:`MvteeSystem.infer_batches`, amortizing
  per-request orchestration overhead.
- :mod:`repro.serving.executor` -- :class:`ParallelStageExecutor`, a
  persistent thread pool that dispatches the variant replicas of a stage
  concurrently (numpy kernels release the GIL, so replicated variants
  genuinely overlap), with per-batch deadlines (carried by
  :class:`BoundDispatcher` views, so the executor is re-entrant) and
  retry-once on transient variant faults.
- :mod:`repro.serving.engine` -- :class:`ServingEngine` tying the three
  together behind ``submit() -> Ticket`` with a pool of
  ``ServingPolicy.num_workers`` worker threads overlapping that many
  micro-batches in flight.
- :mod:`repro.serving.loadgen` -- closed-loop and bursty open-loop load
  generators producing p50/p95/p99 latency, throughput and shed-rate
  reports for the serving benchmarks.

Everything reports through :mod:`repro.observability`: the
``mvtee_queue_depth`` gauge, ``mvtee_queue_wait_seconds`` and
``mvtee_batch_size`` histograms, and the ``mvtee_requests_shed_total`` /
``mvtee_requests_timeout_total`` counters.
"""

from repro.serving.admission import AdmissionQueue
from repro.serving.batching import BatchPolicy, MicroBatcher
from repro.serving.engine import ServingEngine, ServingPolicy, Ticket, TicketState
from repro.serving.errors import (
    DeadlineExceeded,
    EngineStopped,
    Overloaded,
    ServingError,
)
from repro.serving.executor import BoundDispatcher, ParallelStageExecutor
from repro.serving.loadgen import (
    ClosedLoopLoadGenerator,
    LoadReport,
    OpenLoopLoadGenerator,
    TrafficSample,
    open_loop_burst,
    percentile,
    settle_burst,
)

__all__ = [
    "AdmissionQueue",
    "BatchPolicy",
    "BoundDispatcher",
    "ClosedLoopLoadGenerator",
    "DeadlineExceeded",
    "EngineStopped",
    "LoadReport",
    "MicroBatcher",
    "OpenLoopLoadGenerator",
    "Overloaded",
    "ParallelStageExecutor",
    "ServingEngine",
    "ServingError",
    "ServingPolicy",
    "Ticket",
    "TicketState",
    "TrafficSample",
    "open_loop_burst",
    "percentile",
    "settle_burst",
]
