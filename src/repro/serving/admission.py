"""Bounded admission queue with backpressure and load shedding.

Admission control is the first stage of the serving pipeline: a request
either gets a seat in a bounded queue or is shed immediately with
:class:`~repro.serving.errors.Overloaded`.  Rejecting over capacity
bounds both memory and queueing delay -- under sustained overload every
admitted request still sees at most ``capacity / service_rate`` of
queue wait, and clients get an immediate, typed signal to back off.

The queue is a plain condition-variable protected deque (FIFO), safe
for any number of producer threads and consumer threads.  Depth is
mirrored into the ``mvtee_queue_depth`` gauge on every transition and
sheds are counted in ``mvtee_requests_shed_total``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.observability.metrics import MetricsRegistry, get_global_registry
from repro.serving.errors import EngineStopped, Overloaded

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO queue that sheds instead of growing past ``capacity``."""

    def __init__(
        self,
        capacity: int,
        *,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._registry = registry if registry is not None else get_global_registry()
        self._clock = clock
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False

    def _set_depth(self) -> None:
        self._registry.gauge(
            "mvtee_queue_depth", "Requests waiting in the admission queue"
        ).set(len(self._items))

    def offer(self, item) -> None:
        """Admit one item or shed it.

        Raises :class:`Overloaded` when the queue is at capacity and
        :class:`EngineStopped` when the queue has been closed.
        """
        with self._cond:
            if self._closed:
                raise EngineStopped("admission queue is closed")
            if len(self._items) >= self.capacity:
                self._registry.counter(
                    "mvtee_requests_shed_total",
                    "Requests rejected by admission control",
                ).inc()
                raise Overloaded(
                    f"admission queue at capacity ({self.capacity}); request shed"
                )
            self._items.append(item)
            self._set_depth()
            self._cond.notify()

    def take(self, timeout: float | None = None):
        """Pop the oldest item, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout, or immediately once the queue is
        both closed and empty (a closed queue still drains: items
        admitted before :meth:`close` remain takeable).
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            item = self._items.popleft()
            self._set_depth()
            return item

    def close(self) -> None:
        """Refuse further offers; takers drain what is left, then get None."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """Whether the queue refuses new items."""
        return self._closed

    def __len__(self) -> int:
        return len(self._items)
