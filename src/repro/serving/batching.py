"""Dynamic micro-batching over the admission queue.

Per-request orchestration (channel round trips, checkpoint setup) is
the dominant TEE-side serving cost; batching amortizes it.  The
batcher coalesces whatever is queued under a two-knob policy:

- ``max_batch_size`` -- never hand more than this many requests to one
  :meth:`MvteeSystem.infer_batches` call;
- ``max_wait_s`` -- after the first request of a batch arrives, wait at
  most this long for stragglers before dispatching.

Under heavy load batches fill to ``max_batch_size`` instantly (no added
latency); under light load a lone request waits at most ``max_wait_s``.
Formed batch sizes go to the ``mvtee_batch_size`` histogram and each
member's time-in-queue to ``mvtee_queue_wait_seconds``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.observability.metrics import (
    SIZE_BUCKETS,
    MetricsRegistry,
    get_global_registry,
)
from repro.serving.admission import AdmissionQueue

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """The two-knob coalescing policy."""

    max_batch_size: int = 8
    max_wait_s: float = 0.002

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


class MicroBatcher:
    """Forms micro-batches from an :class:`AdmissionQueue`."""

    def __init__(
        self,
        queue: AdmissionQueue,
        policy: BatchPolicy | None = None,
        *,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.queue = queue
        self.policy = policy if policy is not None else BatchPolicy()
        self._registry = registry if registry is not None else get_global_registry()
        self._clock = clock

    def next_batch(self, *, poll_s: float = 0.05) -> list:
        """Block up to ``poll_s`` for work, then coalesce one batch.

        Returns ``[]`` when nothing arrived within ``poll_s`` (callers
        poll so they can observe shutdown); otherwise a non-empty list
        of at most ``max_batch_size`` items in arrival order.
        """
        first = self.queue.take(timeout=poll_s)
        if first is None:
            return []
        batch = [first]
        cutoff = self._clock() + self.policy.max_wait_s
        while len(batch) < self.policy.max_batch_size:
            remaining = cutoff - self._clock()
            if remaining <= 0:
                # One last non-blocking sweep: under burst the queue is
                # non-empty even though the wait budget is spent.
                item = self.queue.take(timeout=0)
            else:
                item = self.queue.take(timeout=remaining)
            if item is None:
                break
            batch.append(item)
        self._observe(batch)
        return batch

    def _observe(self, batch: list) -> None:
        self._registry.histogram(
            "mvtee_batch_size", "Formed micro-batch sizes", buckets=SIZE_BUCKETS
        ).observe(len(batch))
        wait = self._registry.histogram(
            "mvtee_queue_wait_seconds", "Seconds spent in the admission queue"
        )
        now = self._clock()
        for item in batch:
            enqueued_at = getattr(item, "enqueued_at", None)
            if enqueued_at is not None:
                wait.observe(max(0.0, now - enqueued_at))
