"""The serving engine: admit -> batch -> execute -> respond.

:class:`ServingEngine` is the concurrent serving surface over a
deployed :class:`~repro.mvx.system.MvteeSystem`.  Producers call
:meth:`submit` from any thread and get a :class:`Ticket` (a future); a
pool of ``ServingPolicy.num_workers`` engine worker threads coalesces
admitted requests into micro-batches and drives them through
:meth:`MvteeSystem.infer_batches` with up to ``num_workers`` batches in
flight at once -- a slow batch no longer serializes the queue behind it
(the paper's §4.3 pipelined execution model, applied across batches
instead of within one).  The variant replicas of each stage are
dispatched in parallel by a shared
:class:`~repro.serving.executor.ParallelStageExecutor`; each in-flight
batch carries its own deadline via a per-batch
:class:`~repro.serving.executor.BoundDispatcher` view and its own
disjoint monitor-facing batch-id range via
``InferenceOptions.batch_id_base``.

Failure semantics per batch:

- a detection that halts the pipeline (``MonitorError``) fails every
  request of the batch -- the requests shared the halted run;
- a missed deadline (``DeadlineExceeded``) times the batch's requests
  out; requests whose deadline already passed while queued are timed
  out without ever executing;
- any other exception escaping the run fails the batch's requests with
  that error, is counted in ``mvtee_requests_failed_total`` and
  recorded in the flight recorder, and the worker keeps serving -- an
  unexpected fault must never silently kill a worker and strand every
  later ticket;
- admission rejections (``Overloaded``) raise at ``submit`` and never
  produce a ticket;
- :meth:`stop` drains admitted requests, then fails anything still
  unserved with :class:`EngineStopped` so no caller blocks forever.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mvx.monitor import MonitorError
from repro.mvx.scheduler import InferenceOptions, SchedulingMode, validate_feeds
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import (
    KIND_ENGINE_ERROR,
    KIND_REQUEST_SHED,
    KIND_REQUEST_TIMEOUT,
    FlightRecorder,
)
from repro.observability.sinks import Sinks, coerce_sinks
from repro.observability.tracing import Tracer
from repro.serving.admission import AdmissionQueue
from repro.serving.batching import BatchPolicy, MicroBatcher
from repro.serving.errors import DeadlineExceeded, EngineStopped, Overloaded
from repro.serving.executor import ParallelStageExecutor

__all__ = ["ServingEngine", "ServingPolicy", "Ticket", "TicketState"]


@dataclass(frozen=True)
class ServingPolicy:
    """Everything tunable about one engine, in one bundle."""

    #: Admission queue bound; submissions past it are shed.
    capacity: int = 64
    #: Micro-batch coalescing knobs (see :class:`BatchPolicy`).
    max_batch_size: int = 8
    max_wait_s: float = 0.002
    #: Deadline applied to requests that do not carry their own (None =
    #: unbounded).
    default_deadline_s: float | None = None
    #: Dispatch variant replicas concurrently (ParallelStageExecutor).
    parallel_variants: bool = True
    max_workers: int = 8
    #: Retry one variant round trip once on a transient fault.
    retry_transient: bool = True
    #: Scheduling of the micro-batch through the pipeline stages.
    scheduling: SchedulingMode = SchedulingMode.PIPELINED
    #: Engine worker threads, i.e. micro-batches in flight at once.
    #: Each worker pulls its own batch and drives it through the
    #: pipeline independently, so a slow batch does not serialize the
    #: queue behind it.  1 restores strictly serial batch execution.
    #: This is the *initial* pool size; :meth:`ServingEngine.resize`
    #: adjusts a live engine.
    num_workers: int = 2

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")


class TicketState(enum.Enum):
    """Lifecycle of one admitted request."""

    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


class Ticket:
    """Future handle for one admitted request."""

    def __init__(
        self,
        ticket_id: int,
        feeds: dict[str, np.ndarray],
        *,
        deadline: float | None,
        enqueued_at: float,
    ):
        self.ticket_id = ticket_id
        self.feeds = feeds
        #: Monotonic deadline (None = unbounded).
        self.deadline = deadline
        #: Monotonic admission timestamp (drives mvtee_queue_wait_seconds).
        self.enqueued_at = enqueued_at
        self._state = TicketState.PENDING
        self._result: dict[str, np.ndarray] | None = None
        self._error: Exception | None = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list[Callable[["Ticket"], None]] = []

    @property
    def state(self) -> TicketState:
        """Current lifecycle state."""
        return self._state

    def done(self) -> bool:
        """Whether a result or error has been recorded."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> dict[str, np.ndarray]:
        """Block for the outcome; raises the request's failure if any."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"ticket {self.ticket_id} not finished")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> Exception | None:
        """Block for the outcome; returns the failure instead of raising."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"ticket {self.ticket_id} not finished")
        return self._error

    def add_done_callback(self, fn: Callable[["Ticket"], None]) -> None:
        """Run ``fn(ticket)`` on completion (immediately if already done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _finish(self, state: TicketState, result=None, error=None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._state = state
            self._result = result
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            fn(self)


class ServingEngine:
    """Background-threaded serving over one deployed system."""

    def __init__(
        self,
        system,
        *,
        policy: ServingPolicy | None = None,
        sinks: Sinks | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        sinks = coerce_sinks(
            sinks,
            owner="ServingEngine",
            tracer=tracer,
            metrics=registry,
            recorder=recorder,
        )
        self.system = system
        self.policy = policy if policy is not None else ServingPolicy()
        self.registry = (
            sinks.metrics if sinks.metrics is not None else MetricsRegistry()
        )
        self.tracer = sinks.tracer
        #: Flight recorder for shed/timeout audit events; defaults to
        #: the deployment's recorder so serving-layer rejections land in
        #: the same hash chain as the monitor's detections.
        self.recorder = (
            sinks.recorder
            if sinks.recorder is not None
            else system.monitor.recorder
        )
        self._clock = clock
        # Pre-register the engine's counters/histograms so the full
        # serving metric surface is visible (and documented inventories
        # verifiable) before the first request ever sheds or times out.
        self.registry.counter(
            "mvtee_requests_served_total", "Requests served to completion"
        )
        self.registry.counter(
            "mvtee_requests_failed_total", "Requests failed by a detection"
        )
        self.registry.counter(
            "mvtee_requests_timeout_total", "Requests that missed their deadline"
        )
        self.registry.counter(
            "mvtee_requests_shed_total", "Requests rejected by admission control"
        )
        self.registry.counter(
            "mvtee_dispatch_retries_total",
            "Variant round trips retried after a transient fault",
        )
        self.registry.gauge(
            "mvtee_queue_depth", "Requests waiting in the admission queue"
        )
        self.registry.gauge(
            "mvtee_inflight_batches", "Micro-batches currently executing"
        )
        self.registry.histogram(
            "mvtee_batch_queue_stall_seconds",
            "Seconds a formed batch waited past max_wait_s for a free worker",
        )
        self.registry.gauge(
            "mvtee_engine_workers", "Engine worker threads in the pool"
        ).set(self.policy.num_workers)
        self._queue = AdmissionQueue(
            self.policy.capacity, registry=self.registry, clock=clock
        )
        self._batcher = MicroBatcher(
            self._queue,
            BatchPolicy(
                max_batch_size=self.policy.max_batch_size,
                max_wait_s=self.policy.max_wait_s,
            ),
            registry=self.registry,
            clock=clock,
        )
        # Process-mode deployments get the cluster-aware dispatcher so a
        # worker lost mid-batch is restarted promptly; same contract,
        # same retry/deadline semantics.
        cluster = getattr(system, "cluster", None)
        if not self.policy.parallel_variants:
            self._executor = None
        elif cluster is not None:
            self._executor = cluster.dispatcher(
                max_workers=self.policy.max_workers,
                retry_transient=self.policy.retry_transient,
                clock=clock,
            )
        else:
            self._executor = ParallelStageExecutor(
                self.policy.max_workers,
                retry_transient=self.policy.retry_transient,
                clock=clock,
            )
        self._ids = itertools.count()
        #: Worker threads by pool index; indexes at or past
        #: ``_target_workers`` retire themselves (resize-down).
        self._workers: dict[int, threading.Thread] = {}
        self._target_workers = self.policy.num_workers
        #: Guards _target_workers/_busy/_paused; workers wait on it
        #: while paused, quiesce() waits on it for _busy == 0.
        self._pool_cond = threading.Condition()
        self._busy = 0
        self._paused = False
        self._stopping = threading.Event()
        # Monotonic allocator of monitor-facing batch-id ranges: each
        # in-flight run gets a disjoint [base, base + n) so concurrent
        # batches never collide in spans, recorder entries or events.
        self._batch_id_lock = threading.Lock()
        self._next_batch_id = 0

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(
        self, feeds: dict[str, np.ndarray], *, deadline_s: float | None = None
    ) -> Ticket:
        """Validate, admit and ticket one request.

        Raises ``ValueError`` on malformed feeds (trust-boundary
        validation before the request occupies a queue slot),
        :class:`Overloaded` when the queue is full, and
        :class:`EngineStopped` after :meth:`stop`.
        """
        validate_feeds(self.system.monitor, feeds)
        now = self._clock()
        if deadline_s is None:
            deadline_s = self.policy.default_deadline_s
        ticket = Ticket(
            next(self._ids),
            dict(feeds),
            deadline=None if deadline_s is None else now + deadline_s,
            enqueued_at=now,
        )
        try:
            self._queue.offer(ticket)
        except Overloaded:
            if self.recorder is not None:
                self.recorder.record(
                    KIND_REQUEST_SHED,
                    ticket=ticket.ticket_id,
                    queue_depth=len(self._queue),
                    capacity=self.policy.capacity,
                )
            raise
        return ticket

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ServingEngine":
        """Spawn the worker pool; idempotent while running."""
        if any(worker.is_alive() for worker in self._workers.values()):
            return self
        if self._stopping.is_set():
            raise EngineStopped("engine cannot be restarted after stop()")
        self._spawn_missing()
        return self

    def _spawn_missing(self) -> None:
        """Start a thread for every pool index below the target."""
        with self._pool_cond:
            target = self._target_workers
        for index in range(target):
            worker = self._workers.get(index)
            if worker is not None and worker.is_alive():
                continue
            worker = threading.Thread(
                target=self._run,
                args=(index,),
                name=f"mvtee-serving-{index}",
                daemon=True,
            )
            self._workers[index] = worker
            worker.start()

    @property
    def num_workers(self) -> int:
        """The current worker-pool target (micro-batches in flight)."""
        with self._pool_cond:
            return self._target_workers

    def resize(self, num_workers: int) -> int:
        """Adjust the worker pool of a live engine; returns the target.

        Growing spawns fresh worker threads immediately (when the
        engine is running); shrinking retires the highest-indexed
        workers as soon as they finish their current batch.  The fleet
        autoscaler drives this from queue-depth and health signals.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        with self._pool_cond:
            if self._stopping.is_set():
                raise EngineStopped("cannot resize a stopped engine")
            self._target_workers = num_workers
            self._pool_cond.notify_all()
        self.registry.gauge(
            "mvtee_engine_workers", "Engine worker threads in the pool"
        ).set(num_workers)
        if any(worker.is_alive() for worker in self._workers.values()):
            self._spawn_missing()
        return num_workers

    @contextmanager
    def quiesce(self, *, timeout: float | None = 30.0):
        """Pause batch pickup and wait until no batch is in flight.

        Admission stays open -- requests keep queueing up to
        ``capacity`` -- but no worker starts a new batch until the
        context exits.  This is the drain step of a rolling variant
        update: once quiesced, the variant group can be replaced with
        zero in-flight tickets to drop.  Raises ``TimeoutError`` if the
        in-flight batches do not finish within ``timeout``.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._pool_cond:
            self._paused = True
            try:
                while self._busy > 0:
                    remaining = (
                        None if deadline is None else deadline - self._clock()
                    )
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"engine did not quiesce within {timeout}s "
                            f"({self._busy} workers still busy)"
                        )
                    self._pool_cond.wait(
                        0.1 if remaining is None else min(0.1, remaining)
                    )
            except BaseException:
                self._paused = False
                self._pool_cond.notify_all()
                raise
        try:
            yield self
        finally:
            with self._pool_cond:
                self._paused = False
                self._pool_cond.notify_all()

    def stop(self, *, timeout: float | None = 30.0) -> None:
        """Refuse new requests, drain admitted ones, join the workers.

        Any ticket the workers did not serve -- because the engine was
        never started, a worker is wedged past ``timeout``, or the
        worker died -- is failed with :class:`EngineStopped` so callers
        blocked in :meth:`Ticket.result` always get an outcome.  A
        worker that outlives ``timeout`` keeps its thread handle (a
        later :meth:`stop` can re-join it); the shared executor is only
        torn down once every worker has exited.
        """
        self._stopping.set()
        self._queue.close()
        with self._pool_cond:
            # Stop overrides a pause: paused workers must wake up to
            # drain the queue, and quiesce() waiters must not deadlock.
            self._pool_cond.notify_all()
        join_deadline = None if timeout is None else time.monotonic() + timeout
        still_alive = {}
        for index, worker in self._workers.items():
            remaining = (
                None
                if join_deadline is None
                else max(0.0, join_deadline - time.monotonic())
            )
            worker.join(remaining)
            if worker.is_alive():
                still_alive[index] = worker
        self._workers = still_alive
        self._fail_pending()
        if not still_alive and self._executor is not None:
            self._executor.shutdown()

    def _fail_pending(self) -> None:
        """Fail every ticket still sitting in the closed queue."""
        failed = self.registry.counter(
            "mvtee_requests_failed_total", "Requests failed by a detection"
        )
        while True:
            ticket = self._queue.take(timeout=0)
            if ticket is None:
                return
            failed.inc()
            ticket._finish(
                TicketState.FAILED,
                error=EngineStopped(
                    f"engine stopped before serving ticket {ticket.ticket_id}"
                ),
            )

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------

    def _run(self, index: int) -> None:
        """One engine worker: pull a batch, execute, repeat until drained.

        ``num_workers`` of these run concurrently; the admission queue
        and batcher are shared, so each formed batch goes to exactly
        one worker and up to ``num_workers`` batches overlap.  The
        worker gates every pickup on the pool condition: while
        :meth:`quiesce` holds the engine paused it waits instead of
        pulling, and once its ``index`` falls at or past the resize
        target it retires.  ``_busy`` is raised *before* touching the
        batcher so a quiescer never observes zero in-flight workers
        while a batch is being formed.
        """
        while True:
            with self._pool_cond:
                if not self._stopping.is_set():
                    if index >= self._target_workers:
                        return
                    if self._paused:
                        self._pool_cond.wait(0.05)
                        continue
                self._busy += 1
            batch = None
            try:
                batch = self._batcher.next_batch(poll_s=0.02)
                if batch:
                    self._execute(batch)
            finally:
                with self._pool_cond:
                    self._busy -= 1
                    self._pool_cond.notify_all()
            if batch:
                continue
            if self._stopping.is_set() and len(self._queue) == 0:
                return

    def _allocate_batch_ids(self, count: int) -> int:
        with self._batch_id_lock:
            base = self._next_batch_id
            self._next_batch_id += count
            return base

    def _execute(self, tickets: list[Ticket]) -> None:
        now = self._clock()
        # How long the batch's oldest member waited past the coalescing
        # budget: >0 means every worker was busy when the batch was
        # ready -- the signal that in-flight capacity, not batching, is
        # the bottleneck.
        oldest = min(ticket.enqueued_at for ticket in tickets)
        self.registry.histogram(
            "mvtee_batch_queue_stall_seconds",
            "Seconds a formed batch waited past max_wait_s for a free worker",
        ).observe(max(0.0, now - (oldest + self.policy.max_wait_s)))
        live = []
        for ticket in tickets:
            if ticket.deadline is not None and now >= ticket.deadline:
                self._timeout(
                    ticket,
                    DeadlineExceeded(
                        f"ticket {ticket.ticket_id} expired after "
                        f"{now - ticket.enqueued_at:.4f}s in queue"
                    ),
                )
            else:
                live.append(ticket)
        if not live:
            return
        deadlines = [t.deadline for t in live if t.deadline is not None]
        deadline = min(deadlines) if deadlines else None
        options = InferenceOptions(
            scheduling=self.policy.scheduling,
            sinks=Sinks(
                tracer=self.tracer,
                metrics=self.registry,
                recorder=self.recorder,
            ),
            # A per-batch view of the shared executor: the deadline
            # travels with the dispatch calls, never through shared
            # executor state, so overlapping batches cannot race.
            dispatcher=(
                self._executor.bind(deadline) if self._executor is not None else None
            ),
            batch_id_base=self._allocate_batch_ids(len(live)),
        )
        inflight = self.registry.gauge(
            "mvtee_inflight_batches", "Micro-batches currently executing"
        )
        inflight.inc()
        try:
            results = self.system.infer_batches([t.feeds for t in live], options)
        except DeadlineExceeded as exc:
            # Deadlines are batch-atomic: the requests shared the run
            # that missed, and the tightest deadline set the budget.
            for ticket in live:
                self._timeout(ticket, exc)
            return
        except MonitorError as exc:
            self.registry.counter(
                "mvtee_requests_failed_total", "Requests failed by a detection"
            ).inc(len(live))
            for ticket in live:
                ticket._finish(TicketState.FAILED, error=exc)
            return
        except Exception as exc:
            # Anything else escaping the run (a crash outliving retry, a
            # shape bug, a broken dispatcher) must fail *this batch
            # only* -- letting it propagate would kill the worker thread
            # silently and strand every later ticket behind a dead loop.
            self.registry.counter(
                "mvtee_requests_failed_total", "Requests failed by a detection"
            ).inc(len(live))
            if self.recorder is not None:
                self.recorder.record(
                    KIND_ENGINE_ERROR,
                    error=type(exc).__name__,
                    detail=str(exc),
                    tickets=len(live),
                )
            for ticket in live:
                ticket._finish(TicketState.FAILED, error=exc)
            return
        finally:
            inflight.dec()
        self.registry.counter(
            "mvtee_requests_served_total", "Requests served to completion"
        ).inc(len(live))
        for ticket, result in zip(live, results):
            ticket._finish(TicketState.DONE, result=result)

    def _timeout(self, ticket: Ticket, error: DeadlineExceeded) -> None:
        self.registry.counter(
            "mvtee_requests_timeout_total", "Requests that missed their deadline"
        ).inc()
        if self.recorder is not None:
            self.recorder.record(
                KIND_REQUEST_TIMEOUT,
                ticket=ticket.ticket_id,
                waited_s=self._clock() - ticket.enqueued_at,
                reason=str(error),
            )
        ticket._finish(TicketState.TIMED_OUT, error=error)

    # ------------------------------------------------------------------
    # Operations surface
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a batch slot."""
        return len(self._queue)

    def render_prometheus(self) -> str:
        """The engine registry's full text exposition."""
        return self.registry.render_prometheus()
