"""The serving engine: admit -> batch -> execute -> respond.

:class:`ServingEngine` is the concurrent serving surface over a
deployed :class:`~repro.mvx.system.MvteeSystem`.  Producers call
:meth:`submit` from any thread and get a :class:`Ticket` (a future); a
background worker coalesces admitted requests into micro-batches and
drives them through :meth:`MvteeSystem.infer_batches`, with the variant
replicas of each stage dispatched in parallel by a
:class:`~repro.serving.executor.ParallelStageExecutor`.

Failure semantics per batch:

- a detection that halts the pipeline (``MonitorError``) fails every
  request of the batch -- the requests shared the halted run;
- a missed deadline (``DeadlineExceeded``) times the batch's requests
  out; requests whose deadline already passed while queued are timed
  out without ever executing;
- admission rejections (``Overloaded``) raise at ``submit`` and never
  produce a ticket.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mvx.monitor import MonitorError
from repro.mvx.scheduler import InferenceOptions, SchedulingMode, validate_feeds
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import (
    KIND_REQUEST_SHED,
    KIND_REQUEST_TIMEOUT,
    FlightRecorder,
)
from repro.observability.tracing import Tracer
from repro.serving.admission import AdmissionQueue
from repro.serving.batching import BatchPolicy, MicroBatcher
from repro.serving.errors import DeadlineExceeded, EngineStopped, Overloaded
from repro.serving.executor import ParallelStageExecutor

__all__ = ["ServingEngine", "ServingPolicy", "Ticket", "TicketState"]


@dataclass(frozen=True)
class ServingPolicy:
    """Everything tunable about one engine, in one bundle."""

    #: Admission queue bound; submissions past it are shed.
    capacity: int = 64
    #: Micro-batch coalescing knobs (see :class:`BatchPolicy`).
    max_batch_size: int = 8
    max_wait_s: float = 0.002
    #: Deadline applied to requests that do not carry their own (None =
    #: unbounded).
    default_deadline_s: float | None = None
    #: Dispatch variant replicas concurrently (ParallelStageExecutor).
    parallel_variants: bool = True
    max_workers: int = 8
    #: Retry one variant round trip once on a transient fault.
    retry_transient: bool = True
    #: Scheduling of the micro-batch through the pipeline stages.
    scheduling: SchedulingMode = SchedulingMode.PIPELINED


class TicketState(enum.Enum):
    """Lifecycle of one admitted request."""

    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


class Ticket:
    """Future handle for one admitted request."""

    def __init__(
        self,
        ticket_id: int,
        feeds: dict[str, np.ndarray],
        *,
        deadline: float | None,
        enqueued_at: float,
    ):
        self.ticket_id = ticket_id
        self.feeds = feeds
        #: Monotonic deadline (None = unbounded).
        self.deadline = deadline
        #: Monotonic admission timestamp (drives mvtee_queue_wait_seconds).
        self.enqueued_at = enqueued_at
        self._state = TicketState.PENDING
        self._result: dict[str, np.ndarray] | None = None
        self._error: Exception | None = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list[Callable[["Ticket"], None]] = []

    @property
    def state(self) -> TicketState:
        """Current lifecycle state."""
        return self._state

    def done(self) -> bool:
        """Whether a result or error has been recorded."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> dict[str, np.ndarray]:
        """Block for the outcome; raises the request's failure if any."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"ticket {self.ticket_id} not finished")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> Exception | None:
        """Block for the outcome; returns the failure instead of raising."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"ticket {self.ticket_id} not finished")
        return self._error

    def add_done_callback(self, fn: Callable[["Ticket"], None]) -> None:
        """Run ``fn(ticket)`` on completion (immediately if already done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _finish(self, state: TicketState, result=None, error=None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._state = state
            self._result = result
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            fn(self)


class ServingEngine:
    """Background-threaded serving over one deployed system."""

    def __init__(
        self,
        system,
        *,
        policy: ServingPolicy | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.system = system
        self.policy = policy if policy is not None else ServingPolicy()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        #: Flight recorder for shed/timeout audit events; defaults to
        #: the deployment's recorder so serving-layer rejections land in
        #: the same hash chain as the monitor's detections.
        self.recorder = (
            recorder if recorder is not None else system.monitor.recorder
        )
        self._clock = clock
        # Pre-register the engine's counters/histograms so the full
        # serving metric surface is visible (and documented inventories
        # verifiable) before the first request ever sheds or times out.
        self.registry.counter(
            "mvtee_requests_served_total", "Requests served to completion"
        )
        self.registry.counter(
            "mvtee_requests_failed_total", "Requests failed by a detection"
        )
        self.registry.counter(
            "mvtee_requests_timeout_total", "Requests that missed their deadline"
        )
        self.registry.counter(
            "mvtee_requests_shed_total", "Requests rejected by admission control"
        )
        self.registry.counter(
            "mvtee_dispatch_retries_total",
            "Variant round trips retried after a transient fault",
        )
        self.registry.gauge(
            "mvtee_queue_depth", "Requests waiting in the admission queue"
        )
        self._queue = AdmissionQueue(
            self.policy.capacity, registry=self.registry, clock=clock
        )
        self._batcher = MicroBatcher(
            self._queue,
            BatchPolicy(
                max_batch_size=self.policy.max_batch_size,
                max_wait_s=self.policy.max_wait_s,
            ),
            registry=self.registry,
            clock=clock,
        )
        # Process-mode deployments get the cluster-aware dispatcher so a
        # worker lost mid-batch is restarted promptly; same contract,
        # same retry/deadline semantics.
        cluster = getattr(system, "cluster", None)
        if not self.policy.parallel_variants:
            self._executor = None
        elif cluster is not None:
            self._executor = cluster.dispatcher(
                max_workers=self.policy.max_workers,
                retry_transient=self.policy.retry_transient,
                clock=clock,
            )
        else:
            self._executor = ParallelStageExecutor(
                self.policy.max_workers,
                retry_transient=self.policy.retry_transient,
                clock=clock,
            )
        self._ids = itertools.count()
        self._worker: threading.Thread | None = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(
        self, feeds: dict[str, np.ndarray], *, deadline_s: float | None = None
    ) -> Ticket:
        """Validate, admit and ticket one request.

        Raises ``ValueError`` on malformed feeds (trust-boundary
        validation before the request occupies a queue slot),
        :class:`Overloaded` when the queue is full, and
        :class:`EngineStopped` after :meth:`stop`.
        """
        validate_feeds(self.system.monitor, feeds)
        now = self._clock()
        if deadline_s is None:
            deadline_s = self.policy.default_deadline_s
        ticket = Ticket(
            next(self._ids),
            dict(feeds),
            deadline=None if deadline_s is None else now + deadline_s,
            enqueued_at=now,
        )
        try:
            self._queue.offer(ticket)
        except Overloaded:
            if self.recorder is not None:
                self.recorder.record(
                    KIND_REQUEST_SHED,
                    ticket=ticket.ticket_id,
                    queue_depth=len(self._queue),
                    capacity=self.policy.capacity,
                )
            raise
        return ticket

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ServingEngine":
        """Spawn the worker; idempotent while running."""
        if self._worker is not None and self._worker.is_alive():
            return self
        if self._stopping.is_set():
            raise EngineStopped("engine cannot be restarted after stop()")
        self._worker = threading.Thread(
            target=self._run, name="mvtee-serving", daemon=True
        )
        self._worker.start()
        return self

    def stop(self, *, timeout: float | None = 30.0) -> None:
        """Refuse new requests, drain admitted ones, join the worker."""
        self._stopping.set()
        self._queue.close()
        if self._worker is not None:
            self._worker.join(timeout)
            self._worker = None
        if self._executor is not None:
            self._executor.shutdown()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._batcher.next_batch(poll_s=0.02)
            if batch:
                self._execute(batch)
                continue
            if self._stopping.is_set() and len(self._queue) == 0:
                return

    def _execute(self, tickets: list[Ticket]) -> None:
        now = self._clock()
        live = []
        for ticket in tickets:
            if ticket.deadline is not None and now >= ticket.deadline:
                self._timeout(
                    ticket,
                    DeadlineExceeded(
                        f"ticket {ticket.ticket_id} expired after "
                        f"{now - ticket.enqueued_at:.4f}s in queue"
                    ),
                )
            else:
                live.append(ticket)
        if not live:
            return
        deadlines = [t.deadline for t in live if t.deadline is not None]
        deadline = min(deadlines) if deadlines else None
        if self._executor is not None:
            self._executor.deadline = deadline
        options = InferenceOptions(
            scheduling=self.policy.scheduling,
            tracer=self.tracer,
            metrics=self.registry,
            dispatcher=self._executor,
            recorder=self.recorder,
        )
        try:
            results = self.system.infer_batches([t.feeds for t in live], options)
        except DeadlineExceeded as exc:
            # Deadlines are batch-atomic: the requests shared the run
            # that missed, and the tightest deadline set the budget.
            for ticket in live:
                self._timeout(ticket, exc)
            return
        except MonitorError as exc:
            self.registry.counter(
                "mvtee_requests_failed_total", "Requests failed by a detection"
            ).inc(len(live))
            for ticket in live:
                ticket._finish(TicketState.FAILED, error=exc)
            return
        self.registry.counter(
            "mvtee_requests_served_total", "Requests served to completion"
        ).inc(len(live))
        for ticket, result in zip(live, results):
            ticket._finish(TicketState.DONE, result=result)

    def _timeout(self, ticket: Ticket, error: DeadlineExceeded) -> None:
        self.registry.counter(
            "mvtee_requests_timeout_total", "Requests that missed their deadline"
        ).inc()
        if self.recorder is not None:
            self.recorder.record(
                KIND_REQUEST_TIMEOUT,
                ticket=ticket.ticket_id,
                waited_s=self._clock() - ticket.enqueued_at,
                reason=str(error),
            )
        ticket._finish(TicketState.TIMED_OUT, error=error)

    # ------------------------------------------------------------------
    # Operations surface
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a batch slot."""
        return len(self._queue)

    def render_prometheus(self) -> str:
        """The engine registry's full text exposition."""
        return self.registry.render_prometheus()
