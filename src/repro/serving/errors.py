"""Typed serving failures.

Clients distinguish three outcomes that a plain ``Exception`` would
blur: the deployment is *overloaded* (back off and retry later), the
request's *deadline* passed (the answer is useless now even if it could
still be computed), and the engine is *stopped* (no further requests
will be accepted).  Load shedding and deadline enforcement are policy,
so they get their own types instead of piggybacking on
:class:`~repro.mvx.monitor.MonitorError`, which is reserved for
security-relevant detection outcomes.
"""

from __future__ import annotations

__all__ = ["DeadlineExceeded", "EngineStopped", "Overloaded", "ServingError"]


class ServingError(Exception):
    """Base class of serving-layer failures (admission, deadline, lifecycle)."""


class Overloaded(ServingError):
    """The admission queue is at capacity; the request was shed.

    Backpressure by rejection: shedding at the front door keeps queue
    wait bounded instead of letting latency grow without limit under a
    sustained overload.
    """


class DeadlineExceeded(ServingError):
    """The request's deadline passed before a result could be produced."""


class EngineStopped(ServingError):
    """The serving engine is shut down and accepts no new requests."""
