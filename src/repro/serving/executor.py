"""True parallel variant execution for replicated stages.

The monitor's default slow path queries the variant replicas of a stage
one after another; with three replicas the checkpoint waits for the sum
of three round trips.  :class:`ParallelStageExecutor` dispatches them
concurrently on one persistent :class:`ThreadPoolExecutor` -- the numpy
kernels inside the variant runtimes release the GIL, so the replicas
genuinely overlap and the checkpoint waits only for the slowest.

The executor plugs into a run as its *dispatcher* (via
:class:`~repro.mvx.scheduler.InferenceOptions` or directly on the
monitor) and sits behind the scheduler's ``_stage_once`` contract: same
feeds in, same :class:`~repro.mvx.voting.VariantOutput` list out, same
span/metric emission -- only the wall clock differs.  On top of the
parallelism it enforces a per-batch deadline (raising
:class:`~repro.serving.errors.DeadlineExceeded` when a replica cannot
answer in time) and retries one round trip once when a variant fails
transiently -- the host is still alive, so a transport glitch or torn
channel record should not cost the replica its vote.

The executor is *re-entrant*: any number of batches may be in flight
through one executor at once (the serving engine overlaps
``ServingPolicy.num_workers`` of them).  The deadline therefore travels
with each dispatch call -- either as the explicit ``deadline=``
parameter or baked into the lightweight per-batch view returned by
:meth:`ParallelStageExecutor.bind` -- never through shared mutable
state.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable

from repro.serving.errors import DeadlineExceeded

__all__ = ["BoundDispatcher", "ParallelStageExecutor"]


class BoundDispatcher:
    """A per-batch view of one executor with a fixed deadline.

    The engine creates one per micro-batch and installs it as the run's
    dispatcher; all views share the underlying executor's thread pool,
    so concurrent batches overlap without racing on a shared deadline
    field.
    """

    __slots__ = ("executor", "deadline")

    def __init__(self, executor: "ParallelStageExecutor", deadline: float | None):
        self.executor = executor
        self.deadline = deadline

    def dispatch(self, monitor, connections, batch_id, feeds) -> list:
        return self.executor.dispatch(
            monitor, connections, batch_id, feeds, deadline=self.deadline
        )


class ParallelStageExecutor:
    """Concurrent monitor->variant dispatch with deadlines and one retry.

    One executor serves one serving engine (or one benchmark loop): the
    pool is persistent so per-batch thread startup never lands on the
    latency path, and it is shared by every in-flight batch.  Deadlines
    are per dispatch call (``dispatch(..., deadline=)`` or a
    :meth:`bind` view).
    """

    def __init__(
        self,
        max_workers: int = 8,
        *,
        retry_transient: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="mvtee-variant"
        )
        self.retry_transient = retry_transient
        self._clock = clock

    def bind(self, deadline: float | None) -> BoundDispatcher:
        """A dispatcher view of this executor with ``deadline`` attached."""
        return BoundDispatcher(self, deadline)

    # ------------------------------------------------------------------
    # Dispatcher contract (Monitor._dispatch)
    # ------------------------------------------------------------------

    def dispatch(
        self, monitor, connections, batch_id, feeds, *, deadline: float | None = None
    ) -> list:
        """Round-trip ``feeds`` to every connection concurrently.

        Results come back in connection order, exactly like the serial
        path, so voting sees an identical input either way.  The
        deadline applies to every connection count -- a single-replica
        stage goes through the same future-with-timeout path, so one
        slow variant cannot blow through the batch budget unbounded.
        """
        if len(connections) == 1 and deadline is None:
            # Unbounded single replica: no timeout to enforce, so skip
            # the pool hop entirely.
            return [self._request(monitor, connections[0], batch_id, feeds, deadline)]
        futures = [
            self._pool.submit(self._request, monitor, c, batch_id, feeds, deadline)
            for c in connections
        ]
        results = []
        for connection, future in zip(connections, futures):
            if deadline is None:
                results.append(future.result())
                continue
            remaining = deadline - self._clock()
            try:
                results.append(future.result(timeout=max(0.0, remaining)))
            except FutureTimeout:
                raise DeadlineExceeded(
                    f"variant {connection.variant_id} missed the batch deadline "
                    f"at batch {batch_id}, partition {connection.partition_index}"
                ) from None
        return results

    def _request(self, monitor, connection, batch_id, feeds, deadline=None):
        result = monitor.request_inference(connection, batch_id, feeds)
        if (
            result.outputs is None
            and self.retry_transient
            and not connection.host.crashed
            and not self._past_deadline(deadline)
        ):
            # Transient fault: the host is alive, so the failure came
            # from the path to it (transport glitch, torn record).  One
            # retry keeps the replica's vote without masking real
            # crashes -- a dead host short-circuits above.
            monitor.metrics_registry.counter(
                "mvtee_dispatch_retries_total",
                "Variant round trips retried after a transient fault",
            ).inc(partition=connection.partition_index)
            result = monitor.request_inference(connection, batch_id, feeds)
        return result

    def _past_deadline(self, deadline: float | None) -> bool:
        return deadline is not None and self._clock() >= deadline

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Tear the pool down (idempotent)."""
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelStageExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
