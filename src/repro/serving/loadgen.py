"""Load generation and latency reporting for the serving engine.

Two driving disciplines:

- :class:`ClosedLoopLoadGenerator` -- N client threads, each submitting
  one request and blocking on its ticket before the next (classic
  closed loop; offered load tracks service rate, so it measures
  achievable throughput and the latency distribution under it).
- :func:`open_loop_burst` -- fire a burst of submissions without
  waiting (open loop; offered load is independent of service rate, so
  it exercises admission control and load shedding).

Both produce a :class:`LoadReport` with p50/p95/p99 latency, throughput
and shed rate -- the numbers the serving benchmark records.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.mvx.monitor import MonitorError
from repro.serving.engine import ServingEngine, Ticket
from repro.serving.errors import DeadlineExceeded, Overloaded

__all__ = [
    "ClosedLoopLoadGenerator",
    "LoadReport",
    "open_loop_burst",
    "percentile",
    "settle_burst",
]


def percentile(latencies_s: list[float], q: float) -> float:
    """The q-th percentile (0..100) of a latency sample; 0.0 if empty."""
    if not latencies_s:
        return 0.0
    return float(np.percentile(np.asarray(latencies_s, dtype=np.float64), q))


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    timed_out: int = 0
    wall_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions rejected by admission control."""
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def p50_s(self) -> float:
        return percentile(self.latencies_s, 50)

    @property
    def p95_s(self) -> float:
        return percentile(self.latencies_s, 95)

    @property
    def p99_s(self) -> float:
        return percentile(self.latencies_s, 99)

    def to_json(self) -> dict:
        """Flat JSON payload for ``benchmarks/results``."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "shed_rate": self.shed_rate,
            "p50_ms": self.p50_s * 1e3,
            "p95_ms": self.p95_s * 1e3,
            "p99_ms": self.p99_s * 1e3,
        }


class ClosedLoopLoadGenerator:
    """N synchronous clients hammering one engine."""

    def __init__(
        self,
        engine: ServingEngine,
        feeds_factory: Callable[[int, int], dict[str, np.ndarray]],
        *,
        clients: int = 4,
        requests_per_client: int = 8,
        deadline_s: float | None = None,
    ):
        self.engine = engine
        self.feeds_factory = feeds_factory
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.deadline_s = deadline_s

    def run(self) -> LoadReport:
        """Drive every client to completion and aggregate the outcome."""
        report = LoadReport()
        lock = threading.Lock()

        def client(client_index: int) -> None:
            for request_index in range(self.requests_per_client):
                feeds = self.feeds_factory(client_index, request_index)
                start = time.monotonic()
                with lock:
                    report.submitted += 1
                try:
                    ticket = self.engine.submit(feeds, deadline_s=self.deadline_s)
                    ticket.result()
                except Overloaded:
                    with lock:
                        report.shed += 1
                    continue
                except DeadlineExceeded:
                    with lock:
                        report.timed_out += 1
                    continue
                except MonitorError:
                    with lock:
                        report.failed += 1
                    continue
                elapsed = time.monotonic() - start
                with lock:
                    report.completed += 1
                    report.latencies_s.append(elapsed)

        threads = [
            threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
            for i in range(self.clients)
        ]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.wall_s = time.monotonic() - start
        return report


def open_loop_burst(
    engine: ServingEngine,
    feeds_list: list[dict[str, np.ndarray]],
    *,
    deadline_s: float | None = None,
) -> tuple[list[Ticket], LoadReport]:
    """Submit a burst without waiting; returns (admitted tickets, report).

    The report counts submissions and sheds at fire time;
    :func:`settle_burst` folds the admitted tickets' outcomes in once
    they finish.
    """
    report = LoadReport()
    tickets = []
    start = time.monotonic()
    for feeds in feeds_list:
        report.submitted += 1
        try:
            tickets.append(engine.submit(feeds, deadline_s=deadline_s))
        except Overloaded:
            report.shed += 1
    report.wall_s = time.monotonic() - start
    return tickets, report


def settle_burst(
    tickets: list[Ticket], report: LoadReport, *, timeout: float | None = None
) -> LoadReport:
    """Wait for a burst's admitted tickets and fold their outcomes in."""
    for ticket in tickets:
        error = ticket.exception(timeout)
        if error is None:
            report.completed += 1
        elif isinstance(error, DeadlineExceeded):
            report.timed_out += 1
        else:
            report.failed += 1
    return report
