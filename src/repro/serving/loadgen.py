"""Load generation and latency reporting for the serving engine.

Two driving disciplines:

- :class:`ClosedLoopLoadGenerator` -- N client threads, each submitting
  one request and blocking on its ticket before the next (classic
  closed loop; offered load tracks service rate, so it measures
  achievable throughput and the latency distribution under it).
- :func:`open_loop_burst` -- fire a burst of submissions without
  waiting (open loop; offered load is independent of service rate, so
  it exercises admission control and load shedding).
- :class:`OpenLoopLoadGenerator` -- a *paced* background submitter
  (fixed offered rate, fire-and-record) keeping a timestamped outcome
  trace; the traffic harness chaos campaigns observe the SLO floor
  through.

All produce a :class:`LoadReport` with p50/p95/p99 latency, throughput
and shed rate -- the numbers the serving benchmark records.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.mvx.monitor import MonitorError
from repro.serving.engine import ServingEngine, Ticket
from repro.serving.errors import DeadlineExceeded, EngineStopped, Overloaded

__all__ = [
    "ClosedLoopLoadGenerator",
    "LoadReport",
    "OpenLoopLoadGenerator",
    "TrafficSample",
    "open_loop_burst",
    "percentile",
    "settle_burst",
]


def percentile(latencies_s: list[float], q: float) -> float:
    """The q-th percentile (0..100) of a latency sample; 0.0 if empty."""
    if not latencies_s:
        return 0.0
    return float(np.percentile(np.asarray(latencies_s, dtype=np.float64), q))


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    timed_out: int = 0
    wall_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions rejected by admission control."""
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def p50_s(self) -> float:
        return percentile(self.latencies_s, 50)

    @property
    def p95_s(self) -> float:
        return percentile(self.latencies_s, 95)

    @property
    def p99_s(self) -> float:
        return percentile(self.latencies_s, 99)

    def to_json(self) -> dict:
        """Flat JSON payload for ``benchmarks/results``."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "shed_rate": self.shed_rate,
            "p50_ms": self.p50_s * 1e3,
            "p95_ms": self.p95_s * 1e3,
            "p99_ms": self.p99_s * 1e3,
        }


class ClosedLoopLoadGenerator:
    """N synchronous clients hammering one engine."""

    def __init__(
        self,
        engine: ServingEngine,
        feeds_factory: Callable[[int, int], dict[str, np.ndarray]],
        *,
        clients: int = 4,
        requests_per_client: int = 8,
        deadline_s: float | None = None,
    ):
        self.engine = engine
        self.feeds_factory = feeds_factory
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.deadline_s = deadline_s

    def run(self) -> LoadReport:
        """Drive every client to completion and aggregate the outcome."""
        report = LoadReport()
        lock = threading.Lock()

        def client(client_index: int) -> None:
            for request_index in range(self.requests_per_client):
                feeds = self.feeds_factory(client_index, request_index)
                start = time.monotonic()
                with lock:
                    report.submitted += 1
                try:
                    ticket = self.engine.submit(feeds, deadline_s=self.deadline_s)
                    ticket.result()
                except Overloaded:
                    with lock:
                        report.shed += 1
                    continue
                except DeadlineExceeded:
                    with lock:
                        report.timed_out += 1
                    continue
                except MonitorError:
                    with lock:
                        report.failed += 1
                    continue
                elapsed = time.monotonic() - start
                with lock:
                    report.completed += 1
                    report.latencies_s.append(elapsed)

        threads = [
            threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
            for i in range(self.clients)
        ]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.wall_s = time.monotonic() - start
        return report


def open_loop_burst(
    engine: ServingEngine,
    feeds_list: list[dict[str, np.ndarray]],
    *,
    deadline_s: float | None = None,
) -> tuple[list[Ticket], LoadReport]:
    """Submit a burst without waiting; returns (admitted tickets, report).

    The report counts submissions and sheds at fire time;
    :func:`settle_burst` folds the admitted tickets' outcomes in once
    they finish.
    """
    report = LoadReport()
    tickets = []
    start = time.monotonic()
    for feeds in feeds_list:
        report.submitted += 1
        try:
            tickets.append(engine.submit(feeds, deadline_s=deadline_s))
        except Overloaded:
            report.shed += 1
    report.wall_s = time.monotonic() - start
    return tickets, report


def settle_burst(
    tickets: list[Ticket], report: LoadReport, *, timeout: float | None = None
) -> LoadReport:
    """Wait for a burst's admitted tickets and fold their outcomes in."""
    for ticket in tickets:
        error = ticket.exception(timeout)
        if error is None:
            report.completed += 1
        elif isinstance(error, DeadlineExceeded):
            report.timed_out += 1
        else:
            report.failed += 1
    return report


# ----------------------------------------------------------------------
# Paced open-loop driving (the chaos-campaign traffic harness)
# ----------------------------------------------------------------------

#: Outcome labels carried by :class:`TrafficSample`.
OUTCOME_OK = "ok"
OUTCOME_CORRUPT = "corrupt"
OUTCOME_FAILED = "failed"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_SHED = "shed"


@dataclass(frozen=True)
class TrafficSample:
    """One request's fate in an open-loop trace (monotonic timestamps)."""

    submitted_at: float
    finished_at: float
    outcome: str
    latency_s: float


class OpenLoopLoadGenerator:
    """Background submitter offering a fixed rate regardless of service rate.

    Every request's outcome lands in a timestamped trace, so a caller
    can correlate an *injection window* with exactly the requests that
    flew through it (:meth:`mark` / :meth:`samples_since`) and compute
    rolling percentiles for recovery tracking (:meth:`p99_since`).

    ``expect`` is an output acceptor: called with each completed
    result's outputs, returning False marks the sample ``corrupt`` --
    the silent-corruption net of a chaos campaign (a wrong answer
    *served to a client* with no detection is the one unforgivable
    outcome).
    """

    def __init__(
        self,
        engine: ServingEngine,
        feeds_factory: Callable[[int], dict[str, np.ndarray]],
        *,
        rate_rps: float = 50.0,
        deadline_s: float | None = None,
        expect: Callable[[dict[str, np.ndarray]], bool] | None = None,
    ):
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
        self.engine = engine
        self.feeds_factory = feeds_factory
        self.rate_rps = rate_rps
        self.deadline_s = deadline_s
        self.expect = expect
        self._samples: list[TrafficSample] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "OpenLoopLoadGenerator":
        """Begin submitting; idempotent while running."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="openloop-loadgen", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain_s: float = 2.0) -> None:
        """Stop submitting and give in-flight tickets time to settle."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None
        deadline = time.monotonic() + drain_s
        while time.monotonic() < deadline:
            depth = getattr(self.engine, "queue_depth", None)
            if not callable(depth) or depth() == 0:
                break
            time.sleep(0.02)

    def __enter__(self) -> "OpenLoopLoadGenerator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission loop ------------------------------------------------

    def _run(self) -> None:
        period = 1.0 / self.rate_rps
        next_at = time.monotonic()
        sequence = 0
        while not self._stop.is_set():
            now = time.monotonic()
            if now < next_at:
                self._stop.wait(min(next_at - now, 0.05))
                continue
            # A long stall (engine quiesced, machine paged out) must not
            # turn into a catch-up burst that floods the queue.
            if next_at < now - 1.0:
                next_at = now
            next_at += period
            feeds = self.feeds_factory(sequence)
            sequence += 1
            submitted = time.monotonic()
            try:
                ticket = self.engine.submit(feeds, deadline_s=self.deadline_s)
            except Overloaded:
                self._append(
                    TrafficSample(submitted, time.monotonic(), OUTCOME_SHED, 0.0)
                )
                continue
            except EngineStopped:
                return
            ticket.add_done_callback(
                lambda t, _submitted=submitted: self._settle(t, _submitted)
            )

    def _settle(self, ticket: Ticket, submitted: float) -> None:
        finished = time.monotonic()
        try:
            result = ticket.result(0)
        except DeadlineExceeded:
            outcome = OUTCOME_TIMEOUT
        except Exception:
            outcome = OUTCOME_FAILED
        else:
            try:
                ok = self.expect is None or bool(self.expect(result))
            except Exception:
                ok = False
            outcome = OUTCOME_OK if ok else OUTCOME_CORRUPT
        self._append(TrafficSample(submitted, finished, outcome, finished - submitted))

    def _append(self, sample: TrafficSample) -> None:
        with self._lock:
            self._samples.append(sample)

    # -- trace access ---------------------------------------------------

    def mark(self) -> int:
        """An opaque position in the trace; pass to ``*_since``."""
        with self._lock:
            return len(self._samples)

    def samples_since(
        self, mark: int = 0, *, outcome: str | None = None
    ) -> list[TrafficSample]:
        """Samples recorded after ``mark``, optionally one outcome only."""
        with self._lock:
            samples = self._samples[mark:]
        if outcome is not None:
            samples = [s for s in samples if s.outcome == outcome]
        return samples

    def counts_since(self, mark: int = 0) -> dict[str, int]:
        """Outcome histogram of the trace after ``mark``."""
        counts = {
            OUTCOME_OK: 0,
            OUTCOME_CORRUPT: 0,
            OUTCOME_FAILED: 0,
            OUTCOME_TIMEOUT: 0,
            OUTCOME_SHED: 0,
        }
        for sample in self.samples_since(mark):
            counts[sample.outcome] = counts.get(sample.outcome, 0) + 1
        return counts

    def p99_since(self, mark: int = 0, *, last: int | None = None) -> float | None:
        """p99 latency of completed-ok samples after ``mark``.

        ``last`` keeps only the most recent N such samples (a rolling
        recovery window).  None when no sample qualifies yet.
        """
        latencies = [
            s.latency_s for s in self.samples_since(mark, outcome=OUTCOME_OK)
        ]
        if last is not None:
            latencies = latencies[-last:]
        if not latencies:
            return None
        return percentile(latencies, 99)

    def report(self, mark: int = 0) -> LoadReport:
        """Fold the trace after ``mark`` into a :class:`LoadReport`."""
        samples = self.samples_since(mark)
        report = LoadReport(submitted=len(samples))
        for sample in samples:
            if sample.outcome in (OUTCOME_OK, OUTCOME_CORRUPT):
                report.completed += 1
                report.latencies_s.append(sample.latency_s)
            elif sample.outcome == OUTCOME_SHED:
                report.shed += 1
            elif sample.outcome == OUTCOME_TIMEOUT:
                report.timed_out += 1
            else:
                report.failed += 1
        if samples:
            report.wall_s = max(s.finished_at for s in samples) - min(
                s.submitted_at for s in samples
            )
        return report
