"""Discrete-event performance simulation (Figures 9-14).

The paper's evaluation ran on dual-socket Xeon 6354 machines with SGX
EPC and 10 Gbps Ethernet -- hardware we cannot access.  This package
reproduces the *shapes* of the performance results by simulating the
same execution structure over a calibrated cost model:

- per-variant stage compute time = stage FLOPs / effective throughput;
- checkpoint transfers = socket latency + bytes/bandwidth + AEAD cost;
- slow-path checkpoints add variant->monitor synchronization, pairwise
  verification and output replication; the fast path forwards directly;
- sequential mode releases a batch only when its predecessor finishes;
  pipelined mode keeps all stages busy (each stage's variant TEEs are
  dedicated resources);
- async cross-validation forwards on majority quorum and re-checks
  laggards at the next checkpoint.

The monitor/scheduler semantics mirror :mod:`repro.mvx.scheduler`; only
time is simulated.
"""

from repro.simulation.costmodel import CostModel, RUNTIME_FACTORS
from repro.simulation.pipeline import SimResult, StagePlan, VariantSim, simulate
from repro.simulation.planner import CandidatePlan, PlannerResult, search_plans
from repro.simulation.scenarios import baseline_result, plan_from_partition_set
from repro.simulation.updates import UpdateCost, full_update_cost, partial_update_cost

__all__ = [
    "CandidatePlan",
    "CostModel",
    "PlannerResult",
    "RUNTIME_FACTORS",
    "SimResult",
    "StagePlan",
    "UpdateCost",
    "VariantSim",
    "baseline_result",
    "full_update_cost",
    "partial_update_cost",
    "plan_from_partition_set",
    "search_plans",
    "simulate",
]
