"""The calibrated cost model behind the performance simulation.

Constants approximate the paper's testbed (Xeon Gold 6354, 10 Gbps
Ethernet, AES-GCM-256 record protection inside Gramine TEEs).  Absolute
numbers are not the reproduction target -- the figures' *shapes* are --
but the defaults are chosen so the simulated overhead ranges land inside
the ranges the paper reports (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "RUNTIME_FACTORS"]

#: Effective-throughput multipliers per runtime kind.  The "tvm-complex"
#: entry models §6.4's "TVM variant with complex diversification for
#: targeted security checks, which leads to lagging performance".
RUNTIME_FACTORS = {
    "ort": 1.0,
    "ort-opt": 1.05,
    "tvm": 1.1,
    "tvm-complex": 0.45,
    "interpreter": 1.0,
    "compiled": 1.1,
}


@dataclass(frozen=True)
class CostModel:
    """All timing constants of the simulation."""

    #: Single-TEE inference compute rate (FLOPs/s; one NUMA-bound socket).
    flops_per_second: float = 60e9
    #: One-way message latency over the loopback/LAN socket path through
    #: Gramine's exit layers (seconds).
    net_latency: float = 120e-6
    #: Socket bandwidth (bytes/s; 10 Gbps).
    net_bandwidth: float = 1.25e9
    #: AEAD throughput for record protection (bytes/s per endpoint).
    aead_bandwidth: float = 1.8e9
    #: Monitor-side consistency-check rate (bytes/s per compared pair);
    #: "the verification computation typically completes quickly".
    verify_bandwidth: float = 6e9
    #: Fixed monitor bookkeeping per slow-path checkpoint (seconds).
    checkpoint_fixed: float = 150e-6
    #: Fixed per-stage dispatch cost (request framing, scheduling).
    dispatch_fixed: float = 40e-6
    #: Fresh variant TEE initialization (used by update accounting).
    tee_init_seconds: float = 1.5
    #: Parallel worker lanes in the monitor TEE (checkpoint processing
    #: overlaps across in-flight batches up to this factor).
    monitor_workers: int = 4
    #: Compute slowdown per co-scheduled sibling variant of the same
    #: partition (shared cores/memory bandwidth on the NUMA-bound socket):
    #: a stage with n variants runs each at (1 + contention*(n-1)) cost.
    mvx_compute_contention: float = 0.25

    def compute_time(self, flops: float, runtime_factor: float = 1.0) -> float:
        """Stage compute time for one variant."""
        return flops / (self.flops_per_second * runtime_factor)

    def transfer_time(self, nbytes: int, *, encrypted: bool = True) -> float:
        """One tensor transfer between TEEs (encrypt, move, decrypt)."""
        wire = self.net_latency + nbytes / self.net_bandwidth
        if encrypted:
            wire += 2 * (nbytes / self.aead_bandwidth)
        return wire

    def verify_time(self, nbytes: int, num_pairs: int) -> float:
        """Consistency evaluation of one checkpoint (pairwise metrics)."""
        return self.checkpoint_fixed + num_pairs * (nbytes / self.verify_bandwidth)
