"""The pipeline timing simulator.

Batches of a stream are all submitted at time zero (the paper's
streaming-inference setting).  *Sequential* execution admits batch
``b+1`` into stage 0 only once batch ``b`` left the last stage;
*pipelined* execution admits batches as soon as resources free up.
Reported metrics: throughput = batches / makespan, latency = mean batch
completion (sojourn) time -- the measurement model under which the
paper's "pipelined execution reduces latency" statements hold.

Resources are explicit and serialize work across batches:

- every variant TEE is one resource (decrypting its input, computing,
  and encrypting its output all occupy it);
- the monitor TEE is one global resource: input distribution, slow-path
  result collection, verification and output replication all contend on
  it.  This is why checkpointing costs proportionally *more* in
  pipelined execution (Figure 10): the monitor serves every checkpoint
  of every in-flight batch, so its load bounds pipeline throughput,
  while in sequential execution it is idle most of the time.

Scheduling order approximates FCFS: sequential mode processes batches
lexicographically (they are serial anyway); pipelined mode processes the
(batch, stage) grid along anti-diagonals, oldest batch first within a
wavefront -- the order work actually reaches shared resources in a
software pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.costmodel import CostModel

__all__ = ["SimResult", "StagePlan", "VariantSim", "simulate"]


@dataclass
class VariantSim:
    """One simulated variant TEE of a stage."""

    variant_id: str
    runtime_factor: float = 1.0


@dataclass
class StagePlan:
    """Timing-relevant description of one pipeline stage."""

    index: int
    flops: float
    output_bytes: int
    variants: list[VariantSim]
    slow_path: bool

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"stage {self.index} has no variants")


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    throughput: float  # batches per second
    avg_latency: float  # mean completion time from stream submission
    makespan: float
    batch_completions: list[float] = field(default_factory=list)

    def normalized_to(self, baseline: "SimResult") -> tuple[float, float]:
        """(throughput ratio, latency ratio) against a baseline run."""
        return (
            self.throughput / baseline.throughput,
            self.avg_latency / baseline.avg_latency,
        )


class _Resource:
    """A resource with ``workers`` parallel lanes (multi-server queue).

    Variant TEEs are single-lane; the monitor runs several worker threads
    (the paper's testbed has 36 cores per socket), so its checkpoint
    processing overlaps across in-flight batches up to ``workers``-way.
    """

    __slots__ = ("lanes",)

    def __init__(self, workers: int = 1) -> None:
        self.lanes = [0.0] * max(1, workers)

    @property
    def busy_until(self) -> float:
        return min(self.lanes)

    def acquire(self, ready: float, duration: float) -> float:
        """Occupy the earliest-free lane once the work is ready."""
        lane = min(range(len(self.lanes)), key=self.lanes.__getitem__)
        start = max(ready, self.lanes[lane])
        self.lanes[lane] = start + duration
        return self.lanes[lane]


@dataclass
class _BatchState:
    """Progress of one batch through the stage chain."""

    data_ready: float
    sender: _Resource
    incoming_bytes: int
    laggard_gate: float = 0.0
    exit_time: float = 0.0


def _enc_cost(cost: CostModel, nbytes: int, encrypted: bool) -> float:
    return nbytes / cost.aead_bandwidth if encrypted else 0.0


class _Simulation:
    def __init__(
        self,
        stages: list[StagePlan],
        cost: CostModel,
        *,
        execution_mode: str,
        encrypted: bool,
        input_bytes: int,
    ):
        self.stages = stages
        self.cost = cost
        self.execution_mode = execution_mode
        self.encrypted = encrypted
        self.input_bytes = input_bytes
        self.monitor = _Resource(workers=cost.monitor_workers)
        self.variants: dict[tuple[int, str], _Resource] = {
            (stage.index, v.variant_id): _Resource()
            for stage in stages
            for v in stage.variants
        }

    def new_batch(self, release: float) -> _BatchState:
        return _BatchState(
            data_ready=release, sender=self.monitor, incoming_bytes=self.input_bytes
        )

    def run_stage(self, state: _BatchState, stage: StagePlan) -> None:
        cost = self.cost
        encrypted = self.encrypted
        incoming = state.incoming_bytes
        send_each = _enc_cost(cost, incoming, encrypted) + incoming / cost.net_bandwidth
        contention = 1.0 + cost.mvx_compute_contention * (len(stage.variants) - 1)
        done_times: list[float] = []
        for variant in stage.variants:
            sent = state.sender.acquire(state.data_ready, send_each)
            arrival = sent + cost.net_latency
            resource = self.variants[(stage.index, variant.variant_id)]
            recv_done = resource.acquire(
                arrival, _enc_cost(cost, incoming, encrypted) + cost.dispatch_fixed
            )
            done_times.append(
                resource.acquire(
                    recv_done,
                    contention
                    * cost.compute_time(stage.flops, variant.runtime_factor),
                )
            )
        out_bytes = stage.output_bytes
        if stage.slow_path:
            arrivals = []
            for variant, done in zip(stage.variants, done_times):
                resource = self.variants[(stage.index, variant.variant_id)]
                sent = resource.acquire(
                    done,
                    _enc_cost(cost, out_bytes, encrypted) + out_bytes / cost.net_bandwidth,
                )
                arrivals.append(sent + cost.net_latency)
            arrivals.sort()
            processed = [
                self.monitor.acquire(a, _enc_cost(cost, out_bytes, encrypted))
                for a in arrivals
            ]
            n = len(processed)
            if self.execution_mode == "async" and n >= 3:
                quorum = n // 2 + 1
                checkpoint = self.monitor.acquire(
                    processed[quorum - 1], cost.verify_time(out_bytes, quorum - 1)
                )
                checkpoint = max(checkpoint, state.laggard_gate)
                state.laggard_gate = self.monitor.acquire(
                    processed[-1], cost.verify_time(out_bytes, n - quorum)
                )
            else:
                checkpoint = self.monitor.acquire(
                    processed[-1], cost.verify_time(out_bytes, max(n - 1, 0))
                )
                checkpoint = max(checkpoint, state.laggard_gate)
                state.laggard_gate = 0.0
            state.data_ready = checkpoint
            state.sender = self.monitor
        else:
            # Fast path: the primary variant's output falls through; any
            # pending async laggard check resolves at the next checkpoint
            # or at the final exit.
            state.data_ready = done_times[0]
            state.sender = self.variants[(stage.index, stage.variants[0].variant_id)]
        state.incoming_bytes = out_bytes

    def finish_batch(self, state: _BatchState) -> float:
        cost = self.cost
        nbytes = state.incoming_bytes
        sent = state.sender.acquire(
            state.data_ready,
            _enc_cost(cost, nbytes, self.encrypted) + nbytes / cost.net_bandwidth,
        )
        exit_time = self.monitor.acquire(
            sent + cost.net_latency, _enc_cost(cost, nbytes, self.encrypted)
        )
        state.exit_time = max(exit_time, state.laggard_gate)
        return state.exit_time


def simulate(
    stages: list[StagePlan],
    cost: CostModel,
    *,
    num_batches: int = 32,
    pipelined: bool = True,
    execution_mode: str = "sync",
    encrypted: bool = True,
    input_bytes: int = 602_112,  # 3x224x224 float32
) -> SimResult:
    """Simulate a batch stream through the staged deployment."""
    if execution_mode not in ("sync", "async"):
        raise ValueError(f"unknown execution mode {execution_mode!r}")
    sim = _Simulation(
        stages,
        cost,
        execution_mode=execution_mode,
        encrypted=encrypted,
        input_bytes=input_bytes,
    )
    completions: list[float] = []
    num_stages = len(stages)
    if pipelined:
        states = [sim.new_batch(0.0) for _ in range(num_batches)]
        # Anti-diagonal wavefronts: within a tick, older batches (deeper
        # stages) claim shared resources first, matching FCFS arrival.
        for tick in range(num_batches + num_stages - 1):
            for stage_pos in reversed(range(num_stages)):
                batch = tick - stage_pos
                if 0 <= batch < num_batches:
                    sim.run_stage(states[batch], stages[stage_pos])
            finished = tick - num_stages + 1
            if finished >= 0:
                completions.append(sim.finish_batch(states[finished]))
    else:
        previous_exit = 0.0
        for batch in range(num_batches):
            state = sim.new_batch(previous_exit if batch else 0.0)
            for stage in stages:
                sim.run_stage(state, stage)
            previous_exit = sim.finish_batch(state)
            completions.append(previous_exit)
    makespan = max(completions)
    return SimResult(
        throughput=num_batches / makespan,
        avg_latency=sum(completions) / len(completions),
        makespan=makespan,
        batch_completions=completions,
    )
