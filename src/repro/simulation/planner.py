"""Automatic MVX plan search (§7.4 future work).

"Investigating the trade-offs between security, performance, and
resource utilization introduced by different MVX strategies is an
interesting topic for future research."  The planner does exactly that:
it enumerates selective-MVX configurations for a partitioned model --
which partitions to harden, how many variants, sync vs async -- scores
each with the calibrated simulator, and returns the Pareto frontier
over (security, throughput, resource cost), plus the best plan under
the caller's constraints.

Security score = fraction of model compute covered by MVX-enabled
partitions, weighted by panel size (a 5-panel counts more than a
3-panel, with diminishing returns).  Resource cost = total variant TEEs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.mvx.config import MvxConfig
from repro.partition.balance import partition_costs
from repro.partition.partition import PartitionSet
from repro.simulation.costmodel import CostModel
from repro.simulation.pipeline import SimResult, simulate
from repro.simulation.scenarios import baseline_result, plan_from_partition_set

__all__ = ["CandidatePlan", "PlannerResult", "search_plans"]


@dataclass(frozen=True)
class CandidatePlan:
    """One evaluated MVX configuration."""

    config: MvxConfig
    security_score: float  # 0..1, compute-weighted MVX coverage
    throughput_ratio: float  # vs single-TEE baseline (pipelined)
    latency_ratio: float
    resource_tees: int

    def dominates(self, other: "CandidatePlan") -> bool:
        """Pareto dominance over (security up, throughput up, resources down)."""
        at_least = (
            self.security_score >= other.security_score
            and self.throughput_ratio >= other.throughput_ratio
            and self.resource_tees <= other.resource_tees
        )
        strictly = (
            self.security_score > other.security_score
            or self.throughput_ratio > other.throughput_ratio
            or self.resource_tees < other.resource_tees
        )
        return at_least and strictly

    def describe(self) -> str:
        """One-line summary."""
        mvx = {
            c.partition_index: c.num_variants
            for c in self.config.claims
            if c.mvx_enabled
        }
        return (
            f"mvx={mvx or 'none'} mode={self.config.execution_mode} "
            f"security={self.security_score:.2f} tput={self.throughput_ratio:.2f}x "
            f"lat={self.latency_ratio:.2f}x tees={self.resource_tees}"
        )


@dataclass
class PlannerResult:
    """Search outcome: every candidate, the frontier, and the pick."""

    candidates: list[CandidatePlan]
    pareto: list[CandidatePlan]
    best: CandidatePlan | None
    baseline: SimResult = field(repr=False, default=None)


def _security_score(
    config: MvxConfig, costs: list[float]
) -> float:
    total = sum(costs)
    score = 0.0
    for claim in config.claims:
        if claim.mvx_enabled:
            # Diminishing returns in panel size: 3 variants ~ 1.0x weight,
            # 5 variants ~ 1.23x.
            weight = math.log2(claim.num_variants) / math.log2(3)
            score += costs[claim.partition_index] / total * min(weight, 1.5)
    return min(score, 1.0)


def search_plans(
    partition_set: PartitionSet,
    cost: CostModel,
    *,
    required_mvx: set[int] = frozenset(),
    min_throughput_ratio: float = 0.0,
    panel_sizes: tuple[int, ...] = (3, 5),
    max_mvx_partitions: int | None = None,
    pipelined: bool = True,
) -> PlannerResult:
    """Enumerate and score selective-MVX plans for a partitioned model.

    ``required_mvx``: partitions that MUST be MVX-protected (e.g. the
    fine-tuned layers).  ``min_throughput_ratio``: QoS floor relative to
    the unprotected single-TEE baseline.  Returns the full candidate
    list, the Pareto frontier, and the highest-security plan meeting the
    QoS floor (ties broken by throughput, then fewer TEEs).
    """
    n = len(partition_set)
    required = set(required_mvx)
    if not required <= set(range(n)):
        raise ValueError(f"required_mvx {required} outside partitions 0..{n - 1}")
    base = baseline_result(partition_set.model, cost)
    costs = partition_costs(partition_set)
    max_mvx = max_mvx_partitions if max_mvx_partitions is not None else n
    candidates: list[CandidatePlan] = []
    indices = list(range(n))
    for subset_size in range(len(required), max_mvx + 1):
        for subset in itertools.combinations(indices, subset_size):
            if not required <= set(subset):
                continue
            for panel in panel_sizes if subset else ((),):
                for mode in ("sync", "async"):
                    if mode == "async" and (not subset or panel < 3):
                        continue
                    config = MvxConfig.selective(
                        n, {i: panel for i in subset}, execution_mode=mode
                    )
                    stages = plan_from_partition_set(partition_set, config)
                    result = simulate(
                        stages,
                        cost,
                        pipelined=pipelined,
                        execution_mode=mode,
                    )
                    tput, lat = result.normalized_to(base)
                    candidates.append(
                        CandidatePlan(
                            config=config,
                            security_score=_security_score(config, costs),
                            throughput_ratio=tput,
                            latency_ratio=lat,
                            resource_tees=config.total_variants(),
                        )
                    )
    pareto = [
        c
        for c in candidates
        if not any(other.dominates(c) for other in candidates)
    ]
    feasible = [
        c
        for c in candidates
        if c.throughput_ratio >= min_throughput_ratio
        and required <= set(c.config.mvx_partition_indices())
    ]
    best = max(
        feasible,
        key=lambda c: (c.security_score, c.throughput_ratio, -c.resource_tees),
        default=None,
    )
    return PlannerResult(candidates=candidates, pareto=pareto, best=best, baseline=base)
