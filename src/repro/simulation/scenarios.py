"""Bridging real deployments to the simulator + figure scenario helpers."""

from __future__ import annotations

from functools import lru_cache

from repro.graph.flops import graph_flops
from repro.graph.model import ModelGraph
from repro.graph.shapes import infer_shapes
from repro.mvx.config import MvxConfig
from repro.partition.balance import find_balanced_partition, partition_costs
from repro.partition.partition import PartitionSet
from repro.simulation.costmodel import RUNTIME_FACTORS, CostModel
from repro.simulation.pipeline import SimResult, StagePlan, VariantSim, simulate
from repro.zoo import build_model

__all__ = [
    "baseline_result",
    "cached_model",
    "cached_partition",
    "plan_from_partition_set",
]


@lru_cache(maxsize=None)
def cached_model(name: str, input_size: int = 224) -> ModelGraph:
    """Zoo model, cached across benchmark cases."""
    return build_model(name, input_size=input_size)


@lru_cache(maxsize=None)
def cached_partition(name: str, num_partitions: int, *, seed: int = 0) -> PartitionSet:
    """Random-balanced partitioning of a zoo model, cached."""
    model = cached_model(name)
    return find_balanced_partition(model, num_partitions, restarts=3, seed=seed)


def plan_from_partition_set(
    partition_set: PartitionSet,
    config: MvxConfig,
    *,
    variant_factors: dict[int, list[float]] | None = None,
) -> list[StagePlan]:
    """Build simulator stages from a partition set and an MVX config.

    ``variant_factors`` optionally overrides the per-variant runtime
    throughput factors of selected partitions (e.g. a lagging
    "tvm-complex" variant for the §6.4 async experiments); by default
    every variant is a replicated ORT-class runtime (factor 1.0), the
    paper's setting for the fundamental-performance experiments.
    """
    costs = partition_costs(partition_set)
    stages = []
    for claim in config.claims:
        index = claim.partition_index
        factors = (variant_factors or {}).get(index) or [1.0] * claim.num_variants
        if len(factors) != claim.num_variants:
            raise ValueError(
                f"partition {index}: {len(factors)} factors for "
                f"{claim.num_variants} variants"
            )
        stages.append(
            StagePlan(
                index=index,
                flops=costs[index],
                output_bytes=partition_set.checkpoint_bytes(index) or 4096,
                variants=[
                    VariantSim(variant_id=f"p{index}-v{i}", runtime_factor=f)
                    for i, f in enumerate(factors)
                ],
                slow_path=config.uses_slow_path(index),
            )
        )
    return stages


def baseline_result(
    model: ModelGraph,
    cost: CostModel,
    *,
    num_batches: int = 32,
    runtime_factor: float = RUNTIME_FACTORS["ort"],
    input_size: int = 224,
) -> SimResult:
    """The original unpartitioned model in a single TEE (paper baseline).

    Runs the same simulator with one stage, one variant, no checkpoint --
    only the input provisioning and result return transfers remain, the
    same terms MVTEE configurations pay.
    """
    specs = infer_shapes(model)
    out_bytes = sum(specs[s.name].nbytes for s in model.outputs)
    in_bytes = sum(s.nbytes for s in model.inputs)
    stage = StagePlan(
        index=0,
        flops=float(graph_flops(model, specs)),
        output_bytes=max(out_bytes, 1),
        variants=[VariantSim("baseline", runtime_factor=runtime_factor)],
        slow_path=False,
    )
    return simulate(
        [stage],
        cost,
        num_batches=num_batches,
        pipelined=False,
        encrypted=True,
        input_bytes=in_bytes,
    )
