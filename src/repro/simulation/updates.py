"""Update cost accounting (§4.3 "Attestable variant initialization and updates").

The paper rejects enclave reuse on updates: "(i) potential security
risks from incomplete and unsound software-level cleanups ... and (ii)
updates may include changes to model partitions or runtimes, making the
associated loading costs unavoidable".  This module quantifies the
trade-off the paper is making: fresh-TEE updates pay TEE initialization
per variant, while (hypothetical) reuse would only pay the loading
costs -- the delta is the price of soundness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.costmodel import CostModel

__all__ = ["UpdateCost", "full_update_cost", "partial_update_cost"]

#: Attestation/key-distribution round trips per variant in the Fig. 6 flow.
_PROTOCOL_ROUND_TRIPS = 4


@dataclass(frozen=True)
class UpdateCost:
    """Time accounting of one update, fresh-TEE policy vs reuse."""

    variants_replaced: int
    tee_init_seconds: float
    load_seconds: float
    protocol_seconds: float
    #: Stages with a surviving single variant keep serving during a
    #: partial update; a full update stops the pipeline.
    service_interrupted: bool

    @property
    def fresh_total(self) -> float:
        """Total cost under the paper's fresh-TEE policy."""
        return self.tee_init_seconds + self.load_seconds + self.protocol_seconds

    @property
    def reuse_total(self) -> float:
        """Hypothetical cost if enclaves were reused (rejected: unsound)."""
        return self.load_seconds + self.protocol_seconds

    @property
    def soundness_premium(self) -> float:
        """Extra seconds paid for sound isolation (fresh TEEs)."""
        return self.fresh_total - self.reuse_total


def _protocol_seconds(cost: CostModel, variants: int) -> float:
    return variants * _PROTOCOL_ROUND_TRIPS * 2 * cost.net_latency


def _load_seconds(cost: CostModel, variants: int, artifact_bytes: int) -> float:
    per_variant = artifact_bytes / cost.aead_bandwidth + artifact_bytes / cost.net_bandwidth
    return variants * per_variant


def partial_update_cost(
    cost: CostModel, *, variants: int, artifact_bytes: int
) -> UpdateCost:
    """Cost of replacing the variants of selected partitions."""
    return UpdateCost(
        variants_replaced=variants,
        tee_init_seconds=variants * cost.tee_init_seconds,
        load_seconds=_load_seconds(cost, variants, artifact_bytes),
        protocol_seconds=_protocol_seconds(cost, variants),
        service_interrupted=False,
    )


def full_update_cost(
    cost: CostModel, *, total_variants: int, artifact_bytes: int
) -> UpdateCost:
    """Cost of reshuffling partitions and rebuilding every binding."""
    return UpdateCost(
        variants_replaced=total_variants,
        tee_init_seconds=total_variants * cost.tee_init_seconds,
        load_seconds=_load_seconds(cost, total_variants, artifact_bytes),
        protocol_seconds=_protocol_seconds(cost, total_variants),
        service_interrupted=True,
    )
