"""Simulated Trusted Execution Environment substrate.

Models the pieces of Intel SGX/TDX + Gramine that MVTEE builds on:

- :mod:`repro.tee.hardware` -- simulated CPUs with per-platform root keys
  that sign attestation quotes (HMAC stands in for fused-key signatures).
- :mod:`repro.tee.manifest` -- Gramine-style manifests: entrypoint,
  trusted/encrypted/allowed files, env allowlist, syscall policy, and the
  paper's new two-stage manifest option.
- :mod:`repro.tee.enclave` -- the enclave abstraction (one TEE = one
  process = one variant) with measurement and EPC accounting.
- :mod:`repro.tee.gramine` -- the TEE OS: manifest enforcement, one-time
  second-stage manifest installation, exec() transition with state reset.
- :mod:`repro.tee.attestation` -- reports, quotes, verification.
- :mod:`repro.tee.channel` -- RA-TLS-style attested secure channels with
  AEAD records and per-direction sequence numbers.
- :mod:`repro.tee.network` -- in-memory fabric with an adversary hook.
- :mod:`repro.tee.filesystem` -- protected FS with rollback detection.
"""

from repro.tee.attestation import AttestationError, Quote, TeeReport, Verifier
from repro.tee.channel import ChannelError, SecureChannel, establish_channel
from repro.tee.enclave import Enclave, EnclaveError, EnclaveState
from repro.tee.gramine import GramineError, GramineOS
from repro.tee.hardware import SimulatedCpu, TeeType
from repro.tee.manifest import Manifest, ManifestError
from repro.tee.network import Fabric, NetworkError
from repro.tee.filesystem import ProtectedFs, RollbackError

__all__ = [
    "AttestationError",
    "ChannelError",
    "Enclave",
    "EnclaveError",
    "EnclaveState",
    "Fabric",
    "GramineError",
    "GramineOS",
    "Manifest",
    "ManifestError",
    "NetworkError",
    "ProtectedFs",
    "Quote",
    "RollbackError",
    "SecureChannel",
    "SimulatedCpu",
    "TeeReport",
    "TeeType",
    "Verifier",
    "establish_channel",
]
