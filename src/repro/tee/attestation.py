"""Attestation: reports, quotes, verification, challenge-response.

A TEE report carries the enclave's static measurement, its runtime
extension register, and 64 bytes of caller-chosen report data (used to
bind channel keys and nonces).  The platform CPU signs the serialized
report into a *quote*; a :class:`Verifier` holding the platform's
verification key checks quotes and compares measurements against an
allowlist -- the structure of real SGX/TDX remote attestation.
"""

from __future__ import annotations

import hashlib
import json
import secrets
from dataclasses import dataclass, field

import hmac as hmac_mod

from repro.crypto.kdf import hmac_sha256
from repro.tee.enclave import Enclave
from repro.tee.hardware import SimulatedCpu

__all__ = ["AttestationError", "Quote", "TeeReport", "Verifier", "make_quote"]


class AttestationError(Exception):
    """Raised when a quote fails verification."""


@dataclass(frozen=True)
class TeeReport:
    """The hardware-generated report of one enclave."""

    enclave_id: str
    platform_id: str
    tee_type: str
    measurement: str
    extension_register: str
    report_data: bytes

    def to_bytes(self) -> bytes:
        """Canonical serialization (signed by the platform)."""
        return json.dumps(
            {
                "enclave_id": self.enclave_id,
                "platform_id": self.platform_id,
                "tee_type": self.tee_type,
                "measurement": self.measurement,
                "extension_register": self.extension_register,
                "report_data": self.report_data.hex(),
            },
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "TeeReport":
        """Parse a serialized report."""
        obj = json.loads(data)
        return cls(
            enclave_id=obj["enclave_id"],
            platform_id=obj["platform_id"],
            tee_type=obj["tee_type"],
            measurement=obj["measurement"],
            extension_register=obj["extension_register"],
            report_data=bytes.fromhex(obj["report_data"]),
        )


@dataclass(frozen=True)
class Quote:
    """A report plus the platform signature over it."""

    report: TeeReport
    signature: bytes

    def to_bytes(self) -> bytes:
        """Wire form."""
        body = self.report.to_bytes()
        return len(body).to_bytes(4, "big") + body + self.signature

    @classmethod
    def from_bytes(cls, data: bytes) -> "Quote":
        """Parse the wire form."""
        body_len = int.from_bytes(data[:4], "big")
        return cls(
            report=TeeReport.from_bytes(data[4 : 4 + body_len]),
            signature=data[4 + body_len :],
        )


def make_quote(enclave: Enclave, report_data: bytes) -> Quote:
    """Generate a signed quote for ``enclave`` binding ``report_data``."""
    enclave.require_running()
    if len(report_data) > 64:
        report_data = hashlib.sha256(report_data).digest()
    report = TeeReport(
        enclave_id=enclave.enclave_id,
        platform_id=enclave.cpu.platform_id,
        tee_type=enclave.tee_type.value,
        measurement=enclave.measurement,
        extension_register=enclave.extension_register,
        report_data=report_data,
    )
    return Quote(report=report, signature=enclave.cpu.sign_report(report.to_bytes()))


@dataclass
class Verifier:
    """Holds attestation collateral and policy; verifies quotes.

    ``trusted_measurements`` is the allowlist of acceptable enclave
    measurements (the model owner provisions expected init-variant and
    monitor measurements here).
    """

    _platform_keys: dict[str, bytes] = field(default_factory=dict)
    trusted_measurements: set[str] = field(default_factory=set)

    def register_platform(self, cpu: SimulatedCpu) -> None:
        """Provision a platform's verification key (attestation collateral)."""
        self._platform_keys[cpu.platform_id] = cpu.verification_key()

    def trust_measurement(self, measurement: str) -> None:
        """Add an enclave measurement to the allowlist."""
        self.trusted_measurements.add(measurement)

    def verify(
        self,
        quote: Quote,
        *,
        expected_report_data: bytes | None = None,
        require_trusted_measurement: bool = True,
    ) -> TeeReport:
        """Check a quote's signature, measurement policy and bound data.

        Returns the verified report; raises :class:`AttestationError` on
        any failure.
        """
        key = self._platform_keys.get(quote.report.platform_id)
        if key is None:
            raise AttestationError(
                f"unknown platform {quote.report.platform_id!r}: no collateral"
            )
        expected_sig = hmac_sha256(key, b"mvtee-quote|" + quote.report.to_bytes())
        if not hmac_mod.compare_digest(expected_sig, quote.signature):
            raise AttestationError("quote signature verification failed")
        if require_trusted_measurement and (
            quote.report.measurement not in self.trusted_measurements
        ):
            raise AttestationError(
                f"measurement {quote.report.measurement[:12]}... is not trusted"
            )
        if expected_report_data is not None:
            bound = expected_report_data
            if len(bound) > 64:
                bound = hashlib.sha256(bound).digest()
            if quote.report.report_data != bound:
                raise AttestationError("report data does not match expected binding")
        return quote.report


def fresh_nonce() -> bytes:
    """A 32-byte anti-replay nonce for challenge-response attestation."""
    return secrets.token_bytes(32)
