"""RA-TLS-style attested secure channels.

The paper enhances Gramine with *socket-level* RA-TLS: every connection
is established only after attestation, and all records are AEAD-protected
with unique sequence numbers for freshness.  The handshake here is a
finite-field Diffie-Hellman exchange (RFC 3526 group 14) where each
attesting side presents a quote whose report data binds its ephemeral
public key and the session nonce -- the binding that makes the channel
*attested* rather than merely encrypted.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Callable

from repro.crypto.aead import DEFAULT_BULK_AEAD, Aead, AeadError, get_aead
from repro.crypto.kdf import hkdf_sha256
from repro.tee.attestation import AttestationError, Quote, TeeReport, Verifier

__all__ = ["ChannelError", "SecureChannel", "establish_channel", "DhKeyPair"]

# RFC 3526, 2048-bit MODP group (group 14).
_DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
_DH_GENERATOR = 2


class ChannelError(Exception):
    """Raised on handshake failures, replay, reordering or tampering."""


@dataclass
class DhKeyPair:
    """Ephemeral Diffie-Hellman keypair."""

    private: int
    public: int

    @classmethod
    def generate(cls) -> "DhKeyPair":
        private = int.from_bytes(secrets.token_bytes(32), "big")
        return cls(private=private, public=pow(_DH_GENERATOR, private, _DH_PRIME))

    def shared_secret(self, peer_public: int) -> bytes:
        """The raw DH shared secret with a peer public key."""
        if not 1 < peer_public < _DH_PRIME - 1:
            raise ChannelError("peer DH public key out of range")
        return pow(peer_public, self.private, _DH_PRIME).to_bytes(256, "big")


class SecureChannel:
    """One endpoint of an established channel.

    Direction keys are distinct; records carry an implicit 64-bit
    sequence number (fed into the nonce and the AAD), so replayed,
    reordered or cross-direction records fail authentication.

    With ``oblivious=True``, payloads are padded to power-of-two size
    buckets before encryption (§4.3: transfers are "preferably oblivious
    to avoid timing side channels" -- bucket padding hides exact payload
    sizes from a network observer).

    Long-lived channels ratchet: every ``rekey_interval`` records each
    direction's key is replaced by an HKDF derivation of itself (§6.5:
    "Key rotation can be conducted on a regular basis for proactive
    defense").  The ratchet is one-way, so a key compromised at time T
    cannot decrypt records protected before the last rotation (forward
    secrecy for the record stream).
    """

    #: Minimum oblivious bucket: tiny control messages all look alike.
    MIN_BUCKET = 256
    #: Records per direction between key ratchets (0 disables).
    DEFAULT_REKEY_INTERVAL = 4096

    def __init__(
        self,
        *,
        send_key: bytes,
        recv_key: bytes,
        aead_name: str,
        peer_report: TeeReport | None,
        channel_id: str,
        oblivious: bool = False,
        rekey_interval: int = DEFAULT_REKEY_INTERVAL,
    ):
        self._aead_name = aead_name
        self._send_key = send_key
        self._recv_key = recv_key
        self._send_aead: Aead = get_aead(aead_name, send_key)
        self._recv_aead: Aead = get_aead(aead_name, recv_key)
        self._send_seq = 0
        self._recv_seq = 0
        self.peer_report = peer_report
        self.channel_id = channel_id
        self.oblivious = oblivious
        self.rekey_interval = rekey_interval
        self.generations = 0
        self.bytes_protected = 0
        self._last_ratchet = {"send": -1, "recv": -1}

    def _maybe_ratchet(self, direction: str, seq: int) -> None:
        # The guard on _last_ratchet keeps a failed open() (which does not
        # advance the sequence) from ratcheting the same boundary twice.
        if (
            self.rekey_interval
            and seq
            and seq % self.rekey_interval == 0
            and self._last_ratchet[direction] != seq
        ):
            self._last_ratchet[direction] = seq
            from repro.crypto.kdf import hkdf_sha256

            if direction == "send":
                self._send_key = hkdf_sha256(
                    self._send_key, info=b"mvtee-ratchet|" + seq.to_bytes(8, "big")
                )
                self._send_aead = get_aead(self._aead_name, self._send_key)
            else:
                self._recv_key = hkdf_sha256(
                    self._recv_key, info=b"mvtee-ratchet|" + seq.to_bytes(8, "big")
                )
                self._recv_aead = get_aead(self._aead_name, self._recv_key)
                self.generations += 1

    @staticmethod
    def _nonce(seq: int) -> bytes:
        return seq.to_bytes(12, "big")

    @classmethod
    def _bucket_size(cls, nbytes: int) -> int:
        bucket = cls.MIN_BUCKET
        while bucket < nbytes:
            bucket *= 2
        return bucket

    def _pad(self, payload: bytes) -> bytes:
        framed = len(payload).to_bytes(8, "big") + payload
        return framed + bytes(self._bucket_size(len(framed)) - len(framed))

    @staticmethod
    def _unpad(framed: bytes) -> bytes:
        length = int.from_bytes(framed[:8], "big")
        if length > len(framed) - 8:
            raise ChannelError("oblivious frame declares impossible length")
        return framed[8 : 8 + length]

    def protect(self, payload: bytes, aad: bytes = b"") -> bytes:
        """Encrypt + authenticate one record."""
        seq = self._send_seq
        self._maybe_ratchet("send", seq)
        self._send_seq += 1
        record_aad = seq.to_bytes(8, "big") + aad
        self.bytes_protected += len(payload)
        if self.oblivious:
            payload = self._pad(payload)
        return self._send_aead.encrypt(self._nonce(seq), payload, record_aad)

    def open(self, record: bytes, aad: bytes = b"") -> bytes:
        """Verify + decrypt the next record (strict in-order delivery)."""
        seq = self._recv_seq
        self._maybe_ratchet("recv", seq)
        record_aad = seq.to_bytes(8, "big") + aad
        try:
            payload = self._recv_aead.decrypt(self._nonce(seq), record, record_aad)
        except AeadError as exc:
            raise ChannelError(
                f"channel {self.channel_id}: record failed authentication "
                "(tampering, replay or reordering)"
            ) from exc
        self._recv_seq += 1
        if self.oblivious:
            payload = self._unpad(payload)
        return payload


QuoteFn = Callable[[bytes], Quote]


def _session_binding(nonce: bytes, public_a: int, public_b: int) -> bytes:
    return hashlib.sha256(
        b"mvtee-ra-tls|" + nonce + public_a.to_bytes(256, "big") + public_b.to_bytes(256, "big")
    ).digest()


def establish_channel(
    *,
    initiator_quote_fn: QuoteFn | None,
    responder_quote_fn: QuoteFn | None,
    verifier: Verifier,
    aead_name: str = DEFAULT_BULK_AEAD,
    channel_id: str = "channel",
    nonce: bytes | None = None,
    oblivious: bool = False,
) -> tuple[SecureChannel, SecureChannel]:
    """Run the attested handshake; return (initiator_end, responder_end).

    Each side that is a TEE supplies a ``quote_fn`` mapping report data to
    a signed quote; a ``None`` quote_fn models a non-TEE party (the model
    owner or the user), which authenticates the peer but not itself.
    Raises :class:`ChannelError` if any presented quote fails verification.
    """
    nonce = nonce if nonce is not None else secrets.token_bytes(32)
    initiator_keys = DhKeyPair.generate()
    responder_keys = DhKeyPair.generate()
    binding = _session_binding(nonce, initiator_keys.public, responder_keys.public)

    reports: dict[str, TeeReport | None] = {"initiator": None, "responder": None}
    for label, quote_fn in (("initiator", initiator_quote_fn), ("responder", responder_quote_fn)):
        if quote_fn is None:
            continue
        quote = quote_fn(binding)
        try:
            reports[label] = verifier.verify(quote, expected_report_data=binding)
        except AttestationError as exc:
            raise ChannelError(f"{label} attestation failed: {exc}") from exc
    initiator_report = reports["initiator"]
    responder_report = reports["responder"]

    shared = initiator_keys.shared_secret(responder_keys.public)
    assert shared == responder_keys.shared_secret(initiator_keys.public)
    key_i2r = hkdf_sha256(shared, salt=nonce, info=b"mvtee-i2r|" + binding, length=32)
    key_r2i = hkdf_sha256(shared, salt=nonce, info=b"mvtee-r2i|" + binding, length=32)

    initiator_end = SecureChannel(
        send_key=key_i2r,
        recv_key=key_r2i,
        aead_name=aead_name,
        peer_report=responder_report,
        channel_id=channel_id + ":initiator",
        oblivious=oblivious,
    )
    responder_end = SecureChannel(
        send_key=key_r2i,
        recv_key=key_i2r,
        aead_name=aead_name,
        peer_report=initiator_report,
        channel_id=channel_id + ":responder",
        oblivious=oblivious,
    )
    return initiator_end, responder_end
