"""The enclave abstraction: one TEE = one process = one variant.

An enclave is launched on a :class:`~repro.tee.hardware.SimulatedCpu`
from a manifest plus host-provided files; its *measurement* covers the
manifest and every trusted file (security property (viii): the chain of
trust reflects all loaded components).  Runtime events that change the
trusted state -- in MVTEE, the one-time second-stage manifest
installation -- are recorded in a hash-chained extension register that
attestation reports include, mirroring TDX RTMRs / SGX runtime
measurement proposals.
"""

from __future__ import annotations

import enum
import hashlib
import secrets
from dataclasses import dataclass, field

from repro.tee.gramine import GramineOS
from repro.tee.hardware import SimulatedCpu, TeeType
from repro.tee.manifest import Manifest

__all__ = ["Enclave", "EnclaveError", "EnclaveState"]


class EnclaveError(Exception):
    """Raised on invalid enclave lifecycle transitions or launch failures."""


class EnclaveState(enum.Enum):
    """Lifecycle states of an enclave."""

    CREATED = "created"
    RUNNING = "running"
    TERMINATED = "terminated"


def _measure(manifest: Manifest, host_files: dict[str, bytes]) -> str:
    digest = hashlib.sha256()
    digest.update(manifest.to_bytes())
    for path in sorted(manifest.trusted_files):
        content = host_files.get(path, b"")
        digest.update(path.encode())
        digest.update(hashlib.sha256(content).digest())
    return digest.hexdigest()


@dataclass
class Enclave:
    """A launched TEE instance hosting a Gramine OS and an application."""

    enclave_id: str
    cpu: SimulatedCpu
    tee_type: TeeType
    os: GramineOS
    measurement: str
    epc_reserved: int
    state: EnclaveState = EnclaveState.RUNNING
    _extensions: list[str] = field(default_factory=list)

    @classmethod
    def launch(
        cls,
        cpu: SimulatedCpu,
        tee_type: TeeType,
        manifest: Manifest,
        host_files: dict[str, bytes],
        *,
        enclave_id: str | None = None,
        epc_bytes: int = 64 << 20,
    ) -> "Enclave":
        """Create, measure and start an enclave on ``cpu``.

        Trusted files are verified against the manifest at load; any
        mismatch aborts the launch (load-time integrity, §2.2).
        """
        if not cpu.supports(tee_type):
            raise EnclaveError(f"platform {cpu.platform_id} does not support {tee_type.value}")
        for path, expected in manifest.trusted_files.items():
            actual = hashlib.sha256(host_files.get(path, b"")).hexdigest()
            if actual != expected:
                raise EnclaveError(
                    f"trusted file {path!r} hash mismatch at launch "
                    f"(expected {expected[:12]}..., got {actual[:12]}...)"
                )
        cpu.reserve_epc(tee_type, epc_bytes)
        enclave = cls(
            enclave_id=enclave_id or f"enclave-{secrets.token_hex(4)}",
            cpu=cpu,
            tee_type=tee_type,
            os=GramineOS(manifest, host_files),
            measurement=_measure(manifest, host_files),
            epc_reserved=epc_bytes,
        )
        enclave.os.on_trusted_event = enclave._extend
        return enclave

    def _extend(self, event: str) -> None:
        previous = self._extensions[-1] if self._extensions else "0" * 64
        self._extensions.append(
            hashlib.sha256(f"{previous}|{event}".encode()).hexdigest()
        )

    @property
    def extension_register(self) -> str:
        """Current value of the hash-chained runtime measurement register."""
        return self._extensions[-1] if self._extensions else "0" * 64

    def require_running(self) -> None:
        """Guard: raise unless the enclave is alive."""
        if self.state is not EnclaveState.RUNNING:
            raise EnclaveError(f"enclave {self.enclave_id} is {self.state.value}")

    def terminate(self) -> None:
        """Destroy the enclave and release its EPC."""
        if self.state is EnclaveState.TERMINATED:
            return
        self.state = EnclaveState.TERMINATED
        self.cpu.release_epc(self.tee_type, self.epc_reserved)
        self.os.wipe()
