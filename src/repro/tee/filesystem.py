"""Protected filesystem with rollback/replay detection.

Encrypted files (sealed blobs) live on the untrusted host; the TEE-side
:class:`ProtectedFs` tracks per-path freshness counters so a host that
reverts a file to an older (validly sealed) version is detected.  The
paper notes this runtime-metadata defense is partial and a complete
defense needs independent monotonic counters -- modeled here by the
optional :class:`MonotonicCounterService` (a ROTE-style external service
that survives TEE restarts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.sealed import SealedBlob, SealError, unseal_bytes

__all__ = ["MonotonicCounterService", "ProtectedFs", "RollbackError"]


class RollbackError(Exception):
    """Raised when a file's freshness counter regressed (rollback attack)."""


@dataclass
class MonotonicCounterService:
    """An external monotonic-counter provider (complete rollback defense)."""

    _counters: dict[str, int] = field(default_factory=dict)

    def advance(self, name: str, value: int) -> None:
        """Record a new counter value; must strictly increase."""
        current = self._counters.get(name, -1)
        if value <= current:
            raise RollbackError(
                f"monotonic counter {name!r} cannot move from {current} to {value}"
            )
        self._counters[name] = value

    def latest(self, name: str) -> int:
        """Most recent value (-1 if never advanced)."""
        return self._counters.get(name, -1)


@dataclass
class ProtectedFs:
    """TEE-side view over host-stored sealed blobs."""

    kdk: bytes
    key_id: str
    host_store: dict[str, bytes] = field(default_factory=dict)
    counters: MonotonicCounterService | None = None
    _freshness: dict[str, int] = field(default_factory=dict)

    def write(self, blob: SealedBlob) -> None:
        """Persist a sealed blob to the host store, advancing freshness."""
        current = self._freshness.get(blob.path, -1)
        if blob.freshness <= current:
            raise RollbackError(
                f"refusing to write {blob.path!r} with stale freshness "
                f"{blob.freshness} (current {current})"
            )
        self.host_store[blob.path] = blob.to_bytes()
        self._freshness[blob.path] = blob.freshness
        if self.counters is not None:
            self.counters.advance(f"{self.key_id}:{blob.path}", blob.freshness)

    def read(self, path: str) -> bytes:
        """Load, authenticate, freshness-check and decrypt a file."""
        raw = self.host_store.get(path)
        if raw is None:
            raise SealError(f"no sealed file at {path!r}")
        blob = SealedBlob.from_bytes(raw)
        if blob.path != path:
            raise SealError(f"sealed blob at {path!r} claims path {blob.path!r}")
        expected = self._expected_freshness(path)
        if expected is not None and blob.freshness < expected:
            raise RollbackError(
                f"file {path!r} rolled back: freshness {blob.freshness} < "
                f"expected {expected}"
            )
        plaintext = unseal_bytes(self.kdk, self.key_id, blob)
        self._freshness[path] = blob.freshness
        return plaintext

    def _expected_freshness(self, path: str) -> int | None:
        if self.counters is not None:
            latest = self.counters.latest(f"{self.key_id}:{path}")
            return latest if latest >= 0 else None
        return self._freshness.get(path)
