"""The Gramine-like TEE OS with MVTEE's §5.2 enhancements.

Implements the enforcement logic of a library OS inside a TEE:

- manifest-driven file access: trusted files are hash-verified, encrypted
  files are decrypted through sealed blobs, allowed files pass through,
  everything else is denied;
- environment-variable and syscall allowlists;
- the *two-stage manifest*: a second-stage manifest may be installed
  exactly once (via a pseudo-fs interface), is locked immediately, takes
  effect on the next ``exec()``, and the installation interface plus key
  manipulation are disabled in the second stage;
- exec() transition with thorough state reset (the paper zeroes memory,
  closes fds, clears TLS/signal handlers, unloads init-stage objects);
- host-signal cross-verification (§6.5 "Additional variant hardening").
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.crypto.sealed import SealedBlob, SealError, unseal_bytes
from repro.tee.manifest import Manifest, ManifestError

__all__ = ["GramineError", "GramineOS"]


class GramineError(Exception):
    """Raised on any policy violation enforced by the TEE OS."""


class GramineOS:
    """One TEE OS instance serving one application (init-variant, then variant)."""

    def __init__(self, manifest: Manifest, host_files: dict[str, bytes]):
        self.manifest = manifest
        self.host_files = host_files  # the untrusted host filesystem view
        self.stage = 1
        self.entrypoint = manifest.entrypoint
        self._second_stage: Manifest | None = None
        self._second_stage_locked = False
        self._keys: dict[str, bytes] = {}
        self._env: dict[str, str] = {}
        self._open_files: set[str] = set()
        self._scratch: dict[str, object] = {}  # application memory analog
        self._signal_handlers: dict[str, str] = {}
        self._exec_done = False
        #: Callback invoked on trust-relevant runtime events; the enclave
        #: wires this to its extension register.
        self.on_trusted_event: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # Keys (pseudo-fs /dev/attestation/keys analog)
    # ------------------------------------------------------------------

    def install_key(self, key_id: str, kdk: bytes) -> None:
        """Install a key-derivation key for the encrypted filesystem.

        Per §5.2 this is only legal in the first (init-variant) stage:
        "prohibits any key manipulation in the second stage".
        """
        if self.stage != 1:
            raise GramineError("key installation is disabled in the second stage")
        self._keys[key_id] = kdk
        self._event(f"key-installed:{key_id}")

    def has_key(self, key_id: str) -> bool:
        """Whether a KDK with this id is installed."""
        return key_id in self._keys

    # ------------------------------------------------------------------
    # File access
    # ------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Open a file under the active manifest's policy."""
        manifest = self.manifest
        raw = self.host_files.get(path)
        if path in manifest.trusted_files:
            if raw is None:
                raise GramineError(f"trusted file {path!r} missing from host")
            actual = hashlib.sha256(raw).hexdigest()
            if actual != manifest.trusted_files[path]:
                raise GramineError(
                    f"trusted file {path!r} failed integrity verification"
                )
            self._open_files.add(path)
            return raw
        if path in manifest.encrypted_files:
            if raw is None:
                raise GramineError(f"encrypted file {path!r} missing from host")
            try:
                blob = SealedBlob.from_bytes(raw)
                plaintext = self._unseal(blob)
            except SealError as exc:
                raise GramineError(f"encrypted file {path!r}: {exc}") from exc
            self._open_files.add(path)
            return plaintext
        if path in manifest.allowed_files:
            if raw is None:
                raise GramineError(f"allowed file {path!r} missing from host")
            self._open_files.add(path)
            return raw
        raise GramineError(f"file {path!r} is not permitted by the manifest")

    def _unseal(self, blob: SealedBlob) -> bytes:
        kdk = self._keys.get(blob.key_id)
        if kdk is None:
            raise GramineError(f"no key {blob.key_id!r} installed for encrypted file")
        return unseal_bytes(kdk, blob.key_id, blob)

    # ------------------------------------------------------------------
    # Environment and syscalls
    # ------------------------------------------------------------------

    def set_env(self, name: str, value: str) -> None:
        """Accept a host-provided environment variable if allowlisted."""
        if not self.manifest.allows_env(name):
            raise GramineError(f"environment variable {name!r} blocked by manifest")
        self._env[name] = value

    def get_env(self, name: str) -> str | None:
        """Read an accepted environment variable."""
        return self._env.get(name)

    def check_syscall(self, name: str) -> None:
        """Enforce the active syscall policy."""
        if not self.manifest.allows_syscall(name):
            raise GramineError(f"syscall {name!r} blocked by the active manifest")

    # ------------------------------------------------------------------
    # Two-stage manifest
    # ------------------------------------------------------------------

    def install_second_stage_manifest(self, manifest_bytes: bytes) -> None:
        """One-time installation of the second-stage manifest (pseudo-fs write)."""
        if self.stage != 1:
            raise GramineError("manifest installation interface is disabled in stage 2")
        if not self.manifest.two_stage:
            raise GramineError("two-stage manifests are not enabled for this TEE")
        if self._second_stage_locked:
            raise GramineError("second-stage manifest already installed and locked")
        manifest = Manifest.from_bytes(manifest_bytes)  # raises ManifestError
        if manifest.two_stage:
            raise ManifestError("a second-stage manifest cannot itself be two-stage")
        self._second_stage = manifest
        self._second_stage_locked = True
        self._event(f"second-stage-manifest:{manifest.hash()}")

    @property
    def second_stage_installed(self) -> bool:
        """Whether a second-stage manifest is installed (and locked)."""
        return self._second_stage_locked

    def exec(self, entrypoint: str) -> None:
        """The one-way stage transition, triggered by the first exec().

        Enforces that in a two-stage setup the new entrypoint executes
        solely from encrypted files, resets all init-stage state, and
        switches enforcement to the second-stage manifest.
        """
        if self._exec_done:
            raise GramineError("stage transition is one-way; exec() already performed")
        self.check_syscall("exec")
        if self.manifest.two_stage:
            if self._second_stage is None:
                raise GramineError("exec() before second-stage manifest installation")
            new_manifest = self._second_stage
            if entrypoint not in new_manifest.encrypted_files:
                raise GramineError(
                    "second-stage entrypoint must be one of Gramine's encrypted files"
                )
            if entrypoint != new_manifest.entrypoint:
                raise GramineError(
                    f"exec target {entrypoint!r} does not match the installed "
                    f"manifest entrypoint {new_manifest.entrypoint!r}"
                )
        else:
            new_manifest = self.manifest
        self._reset_state()
        self.manifest = new_manifest
        self.entrypoint = entrypoint
        self.stage = 2
        self._exec_done = True
        self._event(f"exec:{entrypoint}")

    def _reset_state(self) -> None:
        # The paper: zero memory areas, close fds, reset brk, clear TLS,
        # remove signal handlers, unlink/unload init-stage ELF objects.
        self._env.clear()
        self._open_files.clear()
        self._scratch.clear()
        self._signal_handlers.clear()

    # ------------------------------------------------------------------
    # Host-signal cross-verification (§6.5 additional hardening)
    # ------------------------------------------------------------------

    def record_request(self, kind: str, name: str) -> None:
        """Track an application request (open file, connect, ...) in TEE state."""
        self._scratch.setdefault("requests", set()).add((kind, name))  # type: ignore[union-attr]

    def verify_host_signal(self, kind: str, name: str) -> None:
        """Cross-check a host-reported event against TEE-tracked requests.

        Defends against malicious exceptions/signals (SIGY-style): a host
        signal referring to a resource the application never requested is
        rejected.
        """
        requests = self._scratch.get("requests", set())
        if (kind, name) not in requests:  # type: ignore[operator]
            raise GramineError(
                f"host-reported {kind} signal for {name!r} does not match any "
                "TEE-tracked request (possible signal injection)"
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _event(self, description: str) -> None:
        if self.on_trusted_event is not None:
            self.on_trusted_event(description)

    def wipe(self) -> None:
        """Destroy all TEE OS state (enclave teardown)."""
        self._keys.clear()
        self._reset_state()
        self._second_stage = None
