"""Simulated TEE-capable CPUs.

A :class:`SimulatedCpu` holds a per-platform root key -- the analog of a
fused attestation key -- and signs attestation reports with it.  The
paper supports SGX and TDX TEEs and argues the monitor can live in a
small integrity-enhanced TEE (SGX1) while variants use large-memory TEEs
(SGX2/TDX); the :class:`TeeType` properties capture those differences so
the security analysis and the cost model can reason about them.
"""

from __future__ import annotations

import enum
import secrets
from dataclasses import dataclass, field

from repro.crypto.kdf import hmac_sha256

__all__ = ["SimulatedCpu", "TeeType"]


class TeeType(enum.Enum):
    """TEE families supported by MVTEE, with their salient properties."""

    SGX1 = "sgx1"
    SGX2 = "sgx2"
    TDX = "tdx"

    @property
    def memory_integrity_tree(self) -> bool:
        """SGX1 has a hardware integrity tree (MAC + replay protection)."""
        return self is TeeType.SGX1

    @property
    def epc_bytes(self) -> int:
        """Usable secure-memory capacity (testbed: 128 GB EPC for SGX2)."""
        return {
            TeeType.SGX1: 128 << 20,  # classic 128 MB EPC
            TeeType.SGX2: 128 << 30,
            TeeType.TDX: 256 << 30,
        }[self]

    @property
    def dynamic_memory(self) -> bool:
        """EDMM-style dynamic page management (SGX2/TDX)."""
        return self is not TeeType.SGX1


@dataclass
class SimulatedCpu:
    """One platform: creates enclaves and signs their reports.

    The root key never leaves the object; quotes are HMAC tags over the
    serialized report, verified by :class:`repro.tee.attestation.Verifier`
    via the provisioned per-platform verification key (in real SGX this
    is the Intel-rooted certificate chain).
    """

    platform_id: str
    tee_types: tuple[TeeType, ...] = (TeeType.SGX1, TeeType.SGX2, TeeType.TDX)
    _root_key: bytes = field(default_factory=lambda: secrets.token_bytes(32), repr=False)
    _epc_used: dict[TeeType, int] = field(default_factory=dict)

    def supports(self, tee_type: TeeType) -> bool:
        """Whether this platform offers the given TEE family."""
        return tee_type in self.tee_types

    def sign_report(self, report_bytes: bytes) -> bytes:
        """Produce the quote signature over a serialized report."""
        return hmac_sha256(self._root_key, b"mvtee-quote|" + report_bytes)

    def verification_key(self) -> bytes:
        """Key material a verifier registers to check this platform's quotes.

        With HMAC standing in for asymmetric signatures, the verification
        key equals the signing key; it models the provisioned attestation
        collateral, not a secret shared with adversaries.
        """
        return self._root_key

    def reserve_epc(self, tee_type: TeeType, nbytes: int) -> None:
        """Account EPC usage; raises MemoryError when the EPC is exhausted."""
        used = self._epc_used.get(tee_type, 0)
        if used + nbytes > tee_type.epc_bytes:
            raise MemoryError(
                f"platform {self.platform_id}: {tee_type.value} EPC exhausted "
                f"({used + nbytes} > {tee_type.epc_bytes})"
            )
        self._epc_used[tee_type] = used + nbytes

    def release_epc(self, tee_type: TeeType, nbytes: int) -> None:
        """Return EPC pages to the pool."""
        self._epc_used[tee_type] = max(0, self._epc_used.get(tee_type, 0) - nbytes)

    def epc_in_use(self, tee_type: TeeType) -> int:
        """Currently reserved EPC bytes for a TEE family."""
        return self._epc_used.get(tee_type, 0)
