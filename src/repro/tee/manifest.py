"""Gramine-style manifests.

A manifest declares everything an application inside a TEE may touch:
its entrypoint, trusted files (integrity-checked against build-time
hashes), encrypted files (decrypted through the protected FS), allowed
files (passthrough), the environment-variable allowlist, and the syscall
policy.  MVTEE adds the ``two_stage`` option (§5.2): when set, the
init-variant may install a *second-stage* manifest exactly once via the
TEE OS's pseudo-fs interface; the new manifest takes effect at exec().
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["Manifest", "ManifestError", "DEFAULT_SYSCALLS"]


class ManifestError(Exception):
    """Raised on malformed manifests or policy violations at load time."""


#: Baseline syscall allowlist for inference workloads (paper §5.2 adds
#: syscall restrictions to Gramine; variants get a narrower list).
DEFAULT_SYSCALLS = frozenset(
    {
        "read",
        "write",
        "open",
        "close",
        "mmap",
        "munmap",
        "brk",
        "futex",
        "clock_gettime",
        "exit",
        "exit_group",
        "socket",
        "connect",
        "send",
        "recv",
        "exec",
    }
)


@dataclass(frozen=True)
class Manifest:
    """An immutable TEE OS manifest."""

    entrypoint: str
    trusted_files: dict[str, str] = field(default_factory=dict)  # path -> sha256 hex
    encrypted_files: frozenset[str] = field(default_factory=frozenset)
    allowed_files: frozenset[str] = field(default_factory=frozenset)
    env_allowlist: frozenset[str] = field(default_factory=frozenset)
    syscalls: frozenset[str] = field(default_factory=lambda: DEFAULT_SYSCALLS)
    two_stage: bool = False
    extra: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.entrypoint:
            raise ManifestError("manifest entrypoint must be non-empty")
        object.__setattr__(self, "encrypted_files", frozenset(self.encrypted_files))
        object.__setattr__(self, "allowed_files", frozenset(self.allowed_files))
        object.__setattr__(self, "env_allowlist", frozenset(self.env_allowlist))
        object.__setattr__(self, "syscalls", frozenset(self.syscalls))
        overlap = set(self.trusted_files) & self.encrypted_files
        if overlap:
            raise ManifestError(f"files both trusted and encrypted: {sorted(overlap)}")

    def to_json(self) -> dict:
        """Canonical JSON form (used for hashing and serialization)."""
        return {
            "entrypoint": self.entrypoint,
            "trusted_files": dict(sorted(self.trusted_files.items())),
            "encrypted_files": sorted(self.encrypted_files),
            "allowed_files": sorted(self.allowed_files),
            "env_allowlist": sorted(self.env_allowlist),
            "syscalls": sorted(self.syscalls),
            "two_stage": self.two_stage,
            "extra": dict(sorted(self.extra.items())),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Manifest":
        """Inverse of :meth:`to_json`."""
        return cls(
            entrypoint=data["entrypoint"],
            trusted_files=dict(data.get("trusted_files", {})),
            encrypted_files=frozenset(data.get("encrypted_files", ())),
            allowed_files=frozenset(data.get("allowed_files", ())),
            env_allowlist=frozenset(data.get("env_allowlist", ())),
            syscalls=frozenset(data.get("syscalls", DEFAULT_SYSCALLS)),
            two_stage=bool(data.get("two_stage", False)),
            extra=dict(data.get("extra", {})),
        )

    def to_bytes(self) -> bytes:
        """Serialized form."""
        return json.dumps(self.to_json(), sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Manifest":
        """Parse a serialized manifest."""
        try:
            return cls.from_json(json.loads(data))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ManifestError(f"malformed manifest: {exc}") from exc

    def hash(self) -> str:
        """SHA-256 over the canonical form -- part of the TEE measurement."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def allows_syscall(self, name: str) -> bool:
        """Whether the syscall policy admits ``name``."""
        return name in self.syscalls

    def allows_env(self, name: str) -> bool:
        """Whether the host may pass environment variable ``name``."""
        return name in self.env_allowlist
