"""In-memory network fabric connecting monitor, variants and model owner.

Endpoints exchange opaque byte messages through per-destination FIFO
queues.  An optional *adversary* hook sees every message in transit and
may tamper, drop or duplicate it -- the tests use this to demonstrate
that the secure channels detect manipulation by the untrusted network
(threat model (i)/(ii): everything outside the TEEs is untrusted).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Fabric", "NetworkError"]


class NetworkError(Exception):
    """Raised on sends to unknown endpoints or receives from empty queues."""


AdversaryHook = Callable[[str, str, bytes], "bytes | None"]


@dataclass
class Fabric:
    """A star network of named endpoints with injectable interference."""

    adversary: AdversaryHook | None = None
    _queues: dict[tuple[str, str], deque[bytes]] = field(default_factory=dict)
    _endpoints: set[str] = field(default_factory=set)
    bytes_sent: dict[tuple[str, str], int] = field(default_factory=dict)

    def register(self, name: str) -> None:
        """Create an endpoint (idempotent)."""
        self._endpoints.add(name)

    def send(self, src: str, dst: str, data: bytes) -> None:
        """Deliver ``data`` from ``src`` to ``dst`` (via the adversary, if any)."""
        if dst not in self._endpoints:
            raise NetworkError(f"unknown endpoint {dst!r}")
        if self.adversary is not None:
            mutated = self.adversary(src, dst, data)
            if mutated is None:
                return  # dropped
            data = mutated
        key = (src, dst)
        self._queues.setdefault(key, deque()).append(data)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0) + len(data)

    def recv(self, src: str, dst: str) -> bytes:
        """Pop the next message from ``src`` addressed to ``dst``."""
        queue = self._queues.get((src, dst))
        if not queue:
            raise NetworkError(f"no message from {src!r} to {dst!r}")
        return queue.popleft()

    def pending(self, src: str, dst: str) -> int:
        """Messages queued from ``src`` to ``dst``."""
        return len(self._queues.get((src, dst), ()))

    def total_bytes(self) -> int:
        """Total payload bytes that crossed the fabric."""
        return sum(self.bytes_sent.values())
