"""Multi-level variant generation (Figure 3).

Variants differ at three levels, all automated:

- *model graph level* (:mod:`repro.variants.transforms`): semantics-
  preserving graph rewrites -- dummy operators, operator decomposition,
  conv-to-linear replacement, channel duplication/shuffling with weight
  adjustment, selective optimization, commutative reordering;
- *inference instance level* (:class:`repro.runtime.RuntimeConfig`):
  engine (interpreter/compiled), executor, BLAS backend, optimization
  level, compiler flags;
- *TEE/system level* (:class:`repro.variants.spec.VariantSpec` fields):
  TEE family, ASLR-style settings, sanitizer flags.

:mod:`repro.variants.pool` materializes a pool of verified, encrypted
variant artifacts per partition; :mod:`repro.variants.manifests` emits
the two-stage Gramine manifests and bootstrap scripts.
"""

from repro.variants.transforms import (
    TransformError,
    apply_transforms,
    available_transforms,
    verify_equivalent,
)
from repro.variants.spec import VariantSpec
from repro.variants.pool import VariantArtifact, VariantPool, build_pool
from repro.variants.manifests import variant_manifests

__all__ = [
    "TransformError",
    "VariantArtifact",
    "VariantPool",
    "VariantSpec",
    "apply_transforms",
    "available_transforms",
    "build_pool",
    "variant_manifests",
    "verify_equivalent",
]
