"""Gramine manifest and bootstrap-script generation for variants.

Implements the file/settings split of Figure 5: the *public* part is the
init-variant binary and its manifest (trusted, hash-pinned, two-stage
enabled); the *private* part is the variant's second-stage manifest,
model partition, runtime config and entrypoint, all sealed under the
variant-specific key.
"""

from __future__ import annotations

import hashlib

from repro.tee.manifest import Manifest
from repro.variants.spec import VariantSpec

__all__ = [
    "INIT_VARIANT_CODE",
    "bootstrap_script",
    "variant_manifests",
    "variant_paths",
]

#: Canonical init-variant "binary".  Every variant TEE starts from this
#: identical, publicly measurable program (the paper's init-variant),
#: whose job is: attest, receive the variant key, install it, fetch and
#: install the second-stage manifest, then exec() into the main variant.
INIT_VARIANT_CODE = (
    b"#!mvtee-init-variant v1\n"
    b"attest-to-monitor; receive-key; install-key;\n"
    b"fetch second-stage manifest; install-manifest (one-time);\n"
    b"exec(main-variant)\n"
)


def variant_paths(spec: VariantSpec) -> dict[str, str]:
    """Host filesystem layout of one variant TEE container."""
    root = f"/var/mvtee/{spec.variant_id}"
    return {
        "init": f"{root}/init",
        "stage2_manifest": f"{root}/manifest.stage2.enc",
        "model": f"{root}/model.enc",
        "config": f"{root}/config.enc",
        "main": f"{root}/main.enc",
    }


def variant_manifests(spec: VariantSpec) -> tuple[Manifest, Manifest]:
    """Build (public init manifest, private second-stage manifest)."""
    paths = variant_paths(spec)
    init_manifest = Manifest(
        entrypoint=paths["init"],
        trusted_files={paths["init"]: hashlib.sha256(INIT_VARIANT_CODE).hexdigest()},
        encrypted_files={paths["stage2_manifest"]},
        env_allowlist=frozenset({"MVTEE_MONITOR_ADDR"}),
        syscalls=frozenset(
            {"read", "write", "open", "close", "socket", "connect", "send",
             "recv", "exec", "exit", "exit_group", "clock_gettime"}
        ),
        two_stage=True,
        extra={"role": "init-variant", "variant_id": spec.variant_id},
    )
    second_manifest = Manifest(
        entrypoint=paths["main"],
        encrypted_files={paths["model"], paths["config"], paths["main"]},
        env_allowlist=frozenset(),  # §6.5: block all host env by default
        syscalls=frozenset(
            {"read", "write", "mmap", "munmap", "brk", "futex", "send", "recv",
             "clock_gettime", "exit", "exit_group"}
        ),
        two_stage=False,
        extra={
            "role": "variant",
            "variant_id": spec.variant_id,
            "runtime_identity": spec.runtime.identity(),
        },
    )
    return init_manifest, second_manifest


def bootstrap_script(spec: VariantSpec) -> str:
    """The generated variant bootstrap script (§5.1 variant construction)."""
    paths = variant_paths(spec)
    lines = [
        f"# bootstrap for variant {spec.variant_id} (partition {spec.partition_index})",
        f"# diversification: {spec.diversification_summary()}",
        "mvtee-init attest --monitor $MVTEE_MONITOR_ADDR",
        "mvtee-init install-key --from-monitor",
        f"mvtee-init install-manifest {paths['stage2_manifest']}",
        f"exec {paths['main']}",
    ]
    return "\n".join(lines) + "\n"
