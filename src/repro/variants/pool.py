"""The variant pool: verified, sealed variant artifacts per partition.

The offline tool materializes every :class:`VariantSpec` into a
:class:`VariantArtifact`: the transformed partition subgraph, its sealed
private files, the public init manifest and the expected measurements --
everything the online bootstrap protocol (Figure 6) needs.
"""

from __future__ import annotations

import json
import secrets
from dataclasses import dataclass, field, replace

from repro.crypto.keys import KeyManager, KeyRecord
from repro.crypto.sealed import seal_bytes
from repro.graph.model import ModelGraph
from repro.partition.partition import PartitionSet
from repro.runtime.base import RuntimeConfig
from repro.tee.manifest import Manifest
from repro.variants.manifests import (
    INIT_VARIANT_CODE,
    bootstrap_script,
    variant_manifests,
    variant_paths,
)
from repro.variants.spec import VariantSpec
from repro.variants.transforms import TransformError, apply_transforms, verify_equivalent

__all__ = ["VariantArtifact", "VariantPool", "build_pool", "diversified_specs"]


@dataclass
class VariantArtifact:
    """Everything produced offline for one variant."""

    spec: VariantSpec
    model: ModelGraph
    key_record: KeyRecord
    init_manifest: Manifest
    second_manifest: Manifest
    host_files: dict[str, bytes]
    paths: dict[str, str]

    @property
    def variant_id(self) -> str:
        """Identifier of the variant this artifact realizes."""
        return self.spec.variant_id


@dataclass
class VariantPool:
    """Pool of artifacts, grouped by partition index."""

    partition_set: PartitionSet
    artifacts: dict[int, list[VariantArtifact]] = field(default_factory=dict)

    def add(self, artifact: VariantArtifact) -> None:
        """Register an artifact under its partition."""
        self.artifacts.setdefault(artifact.spec.partition_index, []).append(artifact)

    def for_partition(self, index: int) -> list[VariantArtifact]:
        """All pooled artifacts of one partition."""
        return list(self.artifacts.get(index, ()))

    def select(self, index: int, count: int, *, seed: int | None = None) -> list[VariantArtifact]:
        """Pick ``count`` variants for a partition (deterministic or random).

        Figure 6 step 4: "a selection of partition variants is made
        (either deterministically or randomly) from the pre-established
        pool".
        """
        pool = self.for_partition(index)
        if count > len(pool):
            raise ValueError(
                f"partition {index}: requested {count} variants, pool has {len(pool)}"
            )
        if seed is None:
            return pool[:count]
        import numpy as np

        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in sorted(chosen)]

    def total_variants(self) -> int:
        """Number of artifacts across all partitions."""
        return sum(len(v) for v in self.artifacts.values())


def _materialize(
    spec: VariantSpec,
    partition_set: PartitionSet,
    key_manager: KeyManager,
    *,
    verify: bool,
) -> VariantArtifact:
    subgraph = partition_set.subgraph(spec.partition_index)
    if spec.graph_transforms:
        try:
            model = apply_transforms(
                subgraph, list(spec.graph_transforms), seed=spec.transform_seed
            )
        except TransformError:
            # A transform may be inapplicable to this particular subgraph
            # (e.g. no shuffle-safe chain); fall back to the untransformed
            # partition -- instance-level diversification still applies.
            spec = replace(spec, graph_transforms=())
            model = subgraph.copy()
    else:
        model = subgraph.copy()
    if verify and spec.graph_transforms:
        verify_equivalent(subgraph, model, trials=1)
    key_record = key_manager.create_key(spec.variant_id)
    init_manifest, second_manifest = variant_manifests(spec)
    paths = variant_paths(spec)
    main_program = (
        f"#!mvtee-variant {spec.variant_id}\n{bootstrap_script(spec)}".encode()
    )
    config_blob = json.dumps(spec.to_json(), sort_keys=True).encode()
    host_files = {
        paths["init"]: INIT_VARIANT_CODE,
        paths["stage2_manifest"]: seal_bytes(
            key_record, paths["stage2_manifest"], second_manifest.to_bytes(), freshness=1
        ).to_bytes(),
        paths["model"]: seal_bytes(
            key_record, paths["model"], model.to_bytes(), freshness=1
        ).to_bytes(),
        paths["config"]: seal_bytes(
            key_record, paths["config"], config_blob, freshness=1
        ).to_bytes(),
        paths["main"]: seal_bytes(
            key_record, paths["main"], main_program, freshness=1
        ).to_bytes(),
    }
    return VariantArtifact(
        spec=spec,
        model=model,
        key_record=key_record,
        init_manifest=init_manifest,
        second_manifest=second_manifest,
        host_files=host_files,
        paths=paths,
    )


def build_pool(
    partition_set: PartitionSet,
    specs: list[VariantSpec],
    *,
    key_manager: KeyManager | None = None,
    verify: bool = True,
) -> VariantPool:
    """Materialize a pool from specs (offline phase steps 1-2 of Figure 2)."""
    key_manager = key_manager or KeyManager()
    pool = VariantPool(partition_set=partition_set)
    for spec in specs:
        if not 0 <= spec.partition_index < len(partition_set):
            raise ValueError(
                f"spec {spec.variant_id!r} targets partition {spec.partition_index}, "
                f"but the set has {len(partition_set)}"
            )
        pool.add(_materialize(spec, partition_set, key_manager, verify=verify))
    return pool


#: Rotating menu of instance-level diversification used by the default
#: spec generator; mirrors the heterogeneity of Figure 3.
_INSTANCE_MENU: tuple[dict, ...] = (
    {"engine": "interpreter", "blas_backend": "mkl-sim", "optimization_level": 1},
    {"engine": "compiled", "blas_backend": "openblas-sim", "executor": "graph"},
    {"engine": "interpreter", "blas_backend": "eigen-sim", "optimization_level": 0},
    {"engine": "compiled", "blas_backend": "mkl-sim", "executor": "vm"},
    {"engine": "interpreter", "blas_backend": "openblas-sim", "optimization_level": 1},
)

_GRAPH_MENU: tuple[tuple[str, ...], ...] = (
    (),
    ("dummy-zero-add",),
    ("commute-add",),
    ("channel-shuffle",),
    ("dummy-identity", "commute-add"),
    ("dead-channel-insert",),
    ("selective-optimize", "fuse-conv-relu"),
)

_SYSTEM_MENU: tuple[tuple[str, ...], ...] = (
    ("aslr",),
    ("bounds-check",),
    ("aslr", "stack-protector"),
    ("asan",),
    ("aslr", "error-handling"),
)


def diversified_specs(
    partition_index: int,
    count: int,
    *,
    seed: int = 0,
    prefix: str | None = None,
) -> list[VariantSpec]:
    """Generate ``count`` multi-level-diversified specs for one partition.

    Walks the instance/graph/system menus with a seeded offset so
    different partitions (or different deployments) get different
    combinations, while variant 0 is always the plain reference.
    """
    prefix = prefix or f"p{partition_index}"
    specs = []
    for index in range(count):
        if index == 0:
            runtime = RuntimeConfig(label=f"{prefix}-v0")
            transforms: tuple[str, ...] = ()
            system: tuple[str, ...] = ()
        else:
            offset = seed + partition_index * 7 + index
            menu = dict(_INSTANCE_MENU[offset % len(_INSTANCE_MENU)])
            menu["label"] = f"{prefix}-v{index}"
            runtime = RuntimeConfig(**menu)
            transforms = _GRAPH_MENU[offset % len(_GRAPH_MENU)]
            system = _SYSTEM_MENU[offset % len(_SYSTEM_MENU)]
        specs.append(
            VariantSpec(
                variant_id=f"{prefix}-v{index}-{secrets.token_hex(3)}",
                partition_index=partition_index,
                runtime=runtime,
                graph_transforms=transforms,
                transform_seed=seed + index,
                system_measures=system,
                description=f"auto-diversified variant {index} of partition {partition_index}",
            )
        )
    return specs
