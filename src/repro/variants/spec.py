"""Variant specifications: the JSON variant configuration of §5.1.

A :class:`VariantSpec` fully determines one inference variant of one
partition: which graph-level transforms were applied, which runtime
configuration executes it, which TEE family hosts it, and which extra
system-level measures (sanitizers, ASLR) are enabled.  Its ``identity()``
feeds the expected enclave measurement for attestation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.runtime.base import RuntimeConfig
from repro.tee.hardware import TeeType

__all__ = ["VariantSpec"]


@dataclass(frozen=True)
class VariantSpec:
    """Declarative description of one diversified variant."""

    variant_id: str
    partition_index: int
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    graph_transforms: tuple[str, ...] = ()
    transform_seed: int = 0
    tee_type: TeeType = TeeType.SGX2
    system_measures: tuple[str, ...] = ()  # e.g. ("aslr", "asan", "stack-protector")
    description: str = ""

    def to_json(self) -> dict:
        """The JSON variant-configuration format."""
        return {
            "variant_id": self.variant_id,
            "partition_index": self.partition_index,
            "runtime": self.runtime.to_json(),
            "graph_transforms": list(self.graph_transforms),
            "transform_seed": self.transform_seed,
            "tee_type": self.tee_type.value,
            "system_measures": list(self.system_measures),
            "description": self.description,
        }

    @classmethod
    def from_json(cls, data: dict) -> "VariantSpec":
        """Inverse of :meth:`to_json`."""
        return cls(
            variant_id=data["variant_id"],
            partition_index=int(data["partition_index"]),
            runtime=RuntimeConfig.from_json(data.get("runtime", {})),
            graph_transforms=tuple(data.get("graph_transforms", ())),
            transform_seed=int(data.get("transform_seed", 0)),
            tee_type=TeeType(data.get("tee_type", "sgx2")),
            system_measures=tuple(data.get("system_measures", ())),
            description=data.get("description", ""),
        )

    def identity(self) -> str:
        """Stable content hash of the full specification."""
        return hashlib.sha256(
            json.dumps(self.to_json(), sort_keys=True).encode()
        ).hexdigest()

    def diversification_summary(self) -> str:
        """One-line description of the diversification applied."""
        parts = [f"engine={self.runtime.engine}", f"blas={self.runtime.blas_backend}"]
        if self.runtime.executor != "graph":
            parts.append(f"executor={self.runtime.executor}")
        if self.graph_transforms:
            parts.append("graph=" + "+".join(self.graph_transforms))
        if self.system_measures:
            parts.append("sys=" + "+".join(self.system_measures))
        parts.append(f"tee={self.tee_type.value}")
        return ", ".join(parts)
