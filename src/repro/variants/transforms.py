"""Model-graph-level diversification transforms (§4.2).

Every transform maps a model to a functionally equivalent model with a
different structure.  Equivalence is checkable with
:func:`verify_equivalent` (used by the pool builder and the CI-style
auto-verification the paper suggests).

Transforms never touch tensors that are graph outputs, so a transformed
partition produces byte-compatible checkpoint tensor names and shapes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graph.model import ModelGraph
from repro.graph.node import Node
from repro.runtime.base import RuntimeConfig
from repro.runtime.interpreter import InterpreterRuntime

__all__ = [
    "TransformError",
    "apply_transforms",
    "available_transforms",
    "register_transform",
    "verify_equivalent",
]


class TransformError(Exception):
    """Raised when a transform cannot apply or would change semantics."""


_REGISTRY: dict[str, Callable[[ModelGraph, np.random.Generator], ModelGraph]] = {}


def register_transform(name: str):
    """Decorator registering a graph transform."""

    def decorate(fn):
        if name in _REGISTRY:
            raise ValueError(f"transform {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return decorate


def available_transforms() -> list[str]:
    """Names of all registered transforms."""
    return sorted(_REGISTRY)


def apply_transforms(model: ModelGraph, names: list[str], *, seed: int = 0) -> ModelGraph:
    """Apply a pipeline of named transforms with a seeded RNG."""
    rng = np.random.default_rng(seed)
    result = model
    for name in names:
        fn = _REGISTRY.get(name)
        if fn is None:
            raise TransformError(
                f"unknown transform {name!r}; available: {available_transforms()}"
            )
        result = fn(result, rng)
        result.validate()
    return result


def verify_equivalent(
    original: ModelGraph,
    transformed: ModelGraph,
    *,
    seed: int = 0,
    trials: int = 2,
    rtol: float = 1e-3,
    atol: float = 1e-4,
) -> None:
    """Assert two models agree on random inputs (raises on divergence)."""
    if {s.name for s in original.outputs} != {s.name for s in transformed.outputs}:
        raise TransformError(
            "transformed model changed the graph output set: "
            f"{sorted(s.name for s in original.outputs)} vs "
            f"{sorted(s.name for s in transformed.outputs)}"
        )
    rng = np.random.default_rng(seed)
    config = RuntimeConfig(optimization_level=0)
    runtime_a = InterpreterRuntime(config)
    runtime_a.prepare(original)
    runtime_b = InterpreterRuntime(config)
    runtime_b.prepare(transformed)
    for _ in range(trials):
        feeds = {
            spec.name: rng.normal(size=spec.shape).astype(spec.dtype.numpy)
            for spec in original.inputs
        }
        out_a = runtime_a.run(feeds)
        out_b = runtime_b.run(feeds)
        for name, expected in out_a.items():
            if not np.allclose(expected, out_b[name], rtol=rtol, atol=atol):
                deviation = float(np.max(np.abs(expected - out_b[name])))
                raise TransformError(
                    f"transform broke equivalence on {name!r}: max dev {deviation:g}"
                )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _internal_edges(model: ModelGraph) -> list[tuple[Node, int]]:
    """Edges (consumer node, input slot) whose tensor is not a graph output
    or initializer -- the safe places to interpose nodes."""
    outputs = model.output_names()
    producers = model.producers()
    edges = []
    for node in model.nodes:
        for slot, name in enumerate(node.inputs):
            if name in producers and name not in outputs:
                edges.append((node, slot))
    return edges


def _fresh_name(model: ModelGraph, base: str) -> str:
    existing = {n.name for n in model.nodes}
    index = 0
    while f"{base}_{index}" in existing:
        index += 1
    return f"{base}_{index}"


# ----------------------------------------------------------------------
# Dummy operators
# ----------------------------------------------------------------------


@register_transform("dummy-identity")
def insert_dummy_identity(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Insert an Identity node on a random internal edge."""
    return _insert_dummy(model, rng, "Identity")


@register_transform("dummy-zero-add")
def insert_dummy_zero_add(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Insert a ZeroAdd node (adds a literal zero) on a random internal edge."""
    return _insert_dummy(model, rng, "ZeroAdd")


def _insert_dummy(model: ModelGraph, rng: np.random.Generator, op_type: str) -> ModelGraph:
    out = model.copy()
    edges = _internal_edges(out)
    if not edges:
        raise TransformError("no internal edge available for dummy-operator insertion")
    consumer, slot = edges[int(rng.integers(len(edges)))]
    source = consumer.inputs[slot]
    node_name = _fresh_name(out, f"dummy_{op_type.lower()}")
    new_tensor = f"{node_name}:out"
    out.nodes.append(
        Node(name=node_name, op_type=op_type, inputs=[source], outputs=[new_tensor])
    )
    consumer.inputs[slot] = new_tensor
    out.toposort_inplace()
    return out


# ----------------------------------------------------------------------
# Equivalent operator replacement
# ----------------------------------------------------------------------


@register_transform("conv1x1-to-gemm")
def conv1x1_to_gemm(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Replace one 1x1 stride-1 Conv with an equivalent linear (Gemm) chain.

    The paper's "substituting a convolutional operator with an equivalent
    fully connected linear operator": the NCHW activation is reshaped to
    a (H*W, C) matrix, multiplied by the (M, C) kernel matrix, and
    reshaped back.
    """
    out = model.copy()
    candidates = [
        n
        for n in out.nodes
        if n.op_type == "Conv"
        and out.initializers.get(n.inputs[1]) is not None
        and out.initializers[n.inputs[1]].shape[2:] == (1, 1)
        and int(n.attrs.get("group", 1)) == 1
        and list(n.attrs.get("strides", [1, 1])) == [1, 1]
        and len(n.inputs) == 2
    ]
    if not candidates:
        raise TransformError("no 1x1 stride-1 Conv available for conv1x1-to-gemm")
    target = candidates[int(rng.integers(len(candidates)))]
    from repro.graph.shapes import infer_shapes

    specs = infer_shapes(out)
    n_batch, c_in, h, w = specs[target.inputs[0]].shape
    m_out = specs[target.outputs[0]].shape[1]
    if n_batch != 1:
        raise TransformError("conv1x1-to-gemm currently supports batch size 1")
    weight = out.initializers[target.inputs[1]]
    gemm_weight_name = f"{target.inputs[1]}.as_fc"
    out.initializers[gemm_weight_name] = weight.reshape(m_out, c_in).copy()
    base = target.name
    reshape_in = Node(
        name=f"{base}.fc_reshape_in",
        op_type="Reshape",
        inputs=[target.inputs[0]],
        outputs=[f"{base}.fc_x2d"],
        attrs={"shape": [c_in, h * w]},
    )
    transpose_in = Node(
        name=f"{base}.fc_transpose_in",
        op_type="Transpose",
        inputs=[f"{base}.fc_x2d"],
        outputs=[f"{base}.fc_xT"],
        attrs={"perm": [1, 0]},
    )
    gemm = Node(
        name=f"{base}.fc_gemm",
        op_type="Gemm",
        inputs=[f"{base}.fc_xT", gemm_weight_name],
        outputs=[f"{base}.fc_y"],
        attrs={"transB": 1},
    )
    transpose_out = Node(
        name=f"{base}.fc_transpose_out",
        op_type="Transpose",
        inputs=[f"{base}.fc_y"],
        outputs=[f"{base}.fc_yT"],
        attrs={"perm": [1, 0]},
    )
    reshape_out = Node(
        name=f"{base}.fc_reshape_out",
        op_type="Reshape",
        inputs=[f"{base}.fc_yT"],
        outputs=[target.outputs[0]],
        attrs={"shape": [1, m_out, h, w]},
    )
    out.nodes = [n for n in out.nodes if n.name != target.name]
    out.nodes.extend([reshape_in, transpose_in, gemm, transpose_out, reshape_out])
    if not any(
        target.inputs[1] in n.inputs for n in out.nodes
    ):
        out.initializers.pop(target.inputs[1], None)
    out.toposort_inplace()
    return out


@register_transform("split-conv")
def split_conv(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Decompose one Conv into two half-width Convs plus a Concat.

    Operator decomposition: the output channels are computed by two
    independent convolutions whose results are concatenated.
    """
    out = model.copy()
    candidates = [
        n
        for n in out.nodes
        if n.op_type == "Conv"
        and int(n.attrs.get("group", 1)) == 1
        and out.initializers.get(n.inputs[1]) is not None
        and out.initializers[n.inputs[1]].shape[0] >= 2
    ]
    if not candidates:
        raise TransformError("no splittable Conv found")
    target = candidates[int(rng.integers(len(candidates)))]
    weight = out.initializers[target.inputs[1]]
    half = weight.shape[0] // 2
    bias = out.initializers.get(target.inputs[2]) if len(target.inputs) > 2 else None
    base = target.name
    new_nodes = []
    part_outputs = []
    for pi, (lo, hi) in enumerate(((0, half), (half, weight.shape[0]))):
        w_name = f"{target.inputs[1]}.split{pi}"
        out.initializers[w_name] = weight[lo:hi].copy()
        inputs = [target.inputs[0], w_name]
        if bias is not None:
            b_name = f"{target.inputs[2]}.split{pi}"
            out.initializers[b_name] = bias[lo:hi].copy()
            inputs.append(b_name)
        out_name = f"{base}.split{pi}:out"
        new_nodes.append(
            Node(
                name=f"{base}.split{pi}",
                op_type="Conv",
                inputs=inputs,
                outputs=[out_name],
                attrs=dict(target.attrs),
            )
        )
        part_outputs.append(out_name)
    concat = Node(
        name=f"{base}.split_concat",
        op_type="Concat",
        inputs=part_outputs,
        outputs=[target.outputs[0]],
        attrs={"axis": 1},
    )
    out.nodes = [n for n in out.nodes if n.name != target.name]
    out.nodes.extend(new_nodes + [concat])
    used = {i for n in out.nodes for i in n.inputs}
    out.initializers = {k: v for k, v in out.initializers.items() if k in used}
    out.toposort_inplace()
    return out


# ----------------------------------------------------------------------
# Channel manipulation
# ----------------------------------------------------------------------


def _channelwise_chain(model: ModelGraph, start: Node) -> tuple[list[Node], Node] | None:
    """Follow start's output through channel-wise ops to a single Conv.

    Returns (intermediate channel-wise nodes, terminal conv) or None if
    the pattern does not hold (branching, graph outputs, non-channelwise
    consumers, grouped terminal conv).
    """
    channelwise = {"Relu", "Sigmoid", "HardSigmoid", "HardSwish", "Silu", "Tanh",
                   "Clip", "Identity", "Dropout", "BatchNormalization", "ZeroAdd"}
    consumers = model.consumers()
    outputs = model.output_names()
    chain: list[Node] = []
    tensor = start.outputs[0]
    for _ in range(16):
        if tensor in outputs:
            return None
        users = consumers.get(tensor, [])
        if len(users) != 1:
            return None
        node = users[0]
        if node.op_type == "Conv":
            if int(node.attrs.get("group", 1)) != 1 or node.inputs[0] != tensor:
                return None
            return chain, node
        if node.op_type not in channelwise or node.inputs[0] != tensor:
            return None
        chain.append(node)
        tensor = node.outputs[0]
    return None


def _permute_channels(
    model: ModelGraph, source: Node, chain: list[Node], sink: Node, perm: np.ndarray
) -> None:
    """Apply a channel permutation across source-conv, chain params, sink-conv."""
    weight = model.initializers[source.inputs[1]]
    model.initializers[source.inputs[1]] = weight[perm].copy()
    if len(source.inputs) > 2:
        bias = model.initializers[source.inputs[2]]
        model.initializers[source.inputs[2]] = bias[perm].copy()
    for node in chain:
        if node.op_type == "BatchNormalization":
            for param in node.inputs[1:5]:
                model.initializers[param] = model.initializers[param][perm].copy()
    sink_weight = model.initializers[sink.inputs[1]]
    model.initializers[sink.inputs[1]] = sink_weight[:, perm].copy()


@register_transform("channel-shuffle")
def channel_shuffle(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Permute the output channels of one Conv, adjusting downstream weights.

    Applies to a Conv whose output flows through channel-wise ops into
    exactly one ungrouped Conv; the permutation is undone by permuting the
    consumer's input-channel weights, so the model is equivalent.
    """
    out = model.copy()
    candidates = []
    for node in out.nodes:
        if node.op_type != "Conv" or int(node.attrs.get("group", 1)) != 1:
            continue
        if node.inputs[1] not in out.initializers:
            continue
        result = _channelwise_chain(out, node)
        if result is not None:
            candidates.append((node, *result))
    if not candidates:
        raise TransformError("no shuffle-safe Conv chain found")
    source, chain, sink = candidates[int(rng.integers(len(candidates)))]
    channels = out.initializers[source.inputs[1]].shape[0]
    perm = rng.permutation(channels)
    _permute_channels(out, source, chain, sink, perm)
    out.validate()
    return out


@register_transform("channel-duplicate")
def channel_duplicate(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Duplicate one output channel of a Conv, halving its downstream weights.

    The duplicated channel carries the same activation; the consumer's
    weights for the two copies are each half the original, so their sum
    reproduces the original contribution exactly.
    """
    out = model.copy()
    candidates = []
    for node in out.nodes:
        if node.op_type != "Conv" or int(node.attrs.get("group", 1)) != 1:
            continue
        if node.inputs[1] not in out.initializers:
            continue
        result = _channelwise_chain(out, node)
        if result is not None:
            chain, sink = result
            # BatchNorm in the chain is per-channel affine, which commutes
            # with duplication; all other chain ops are elementwise.
            candidates.append((node, chain, sink))
    if not candidates:
        raise TransformError("no duplication-safe Conv chain found")
    source, chain, sink = candidates[int(rng.integers(len(candidates)))]
    weight = out.initializers[source.inputs[1]]
    channel = int(rng.integers(weight.shape[0]))
    out.initializers[source.inputs[1]] = np.concatenate(
        [weight, weight[channel : channel + 1]], axis=0
    )
    if len(source.inputs) > 2:
        bias = out.initializers[source.inputs[2]]
        out.initializers[source.inputs[2]] = np.concatenate(
            [bias, bias[channel : channel + 1]], axis=0
        )
    for node in chain:
        if node.op_type == "BatchNormalization":
            for param in node.inputs[1:5]:
                arr = out.initializers[param]
                out.initializers[param] = np.concatenate(
                    [arr, arr[channel : channel + 1]], axis=0
                )
    sink_weight = out.initializers[sink.inputs[1]]
    duplicated = sink_weight[:, channel : channel + 1] * 0.5
    adjusted = sink_weight.copy()
    adjusted[:, channel : channel + 1] = duplicated
    out.initializers[sink.inputs[1]] = np.concatenate([adjusted, duplicated], axis=1)
    out.validate()
    return out


# ----------------------------------------------------------------------
# Commutative reordering and selective optimization
# ----------------------------------------------------------------------


@register_transform("dead-channel-insert")
def dead_channel_insert(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Append a random-weight channel whose downstream weights are zero.

    The structural analog of compiler-inserted padding: the new channel
    carries real (random) activations -- perturbing memory layout and any
    layout-targeted fault -- but contributes exactly nothing downstream.
    """
    out = model.copy()
    candidates = []
    for node in out.nodes:
        if node.op_type != "Conv" or int(node.attrs.get("group", 1)) != 1:
            continue
        if node.inputs[1] not in out.initializers:
            continue
        result = _channelwise_chain(out, node)
        if result is not None:
            candidates.append((node, *result))
    if not candidates:
        raise TransformError("no insertion-safe Conv chain found")
    source, chain, sink = candidates[int(rng.integers(len(candidates)))]
    weight = out.initializers[source.inputs[1]]
    pad_filter = rng.normal(0.0, 0.05, size=(1,) + weight.shape[1:]).astype(np.float32)
    out.initializers[source.inputs[1]] = np.concatenate([weight, pad_filter], axis=0)
    if len(source.inputs) > 2:
        bias = out.initializers[source.inputs[2]]
        out.initializers[source.inputs[2]] = np.concatenate(
            [bias, np.zeros(1, dtype=np.float32)], axis=0
        )
    for node in chain:
        if node.op_type == "BatchNormalization":
            for param in node.inputs[1:5]:
                arr = out.initializers[param]
                filler = np.ones(1, dtype=np.float32) if param.endswith((".scale", ".var")) else np.zeros(1, dtype=np.float32)
                out.initializers[param] = np.concatenate([arr, filler], axis=0)
    sink_weight = out.initializers[sink.inputs[1]]
    zeros = np.zeros(
        (sink_weight.shape[0], 1) + sink_weight.shape[2:], dtype=np.float32
    )
    out.initializers[sink.inputs[1]] = np.concatenate([sink_weight, zeros], axis=1)
    out.validate()
    return out


@register_transform("commute-add")
def commute_add(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Swap the operands of every binary Add/Mul (mathematically commutative)."""
    out = model.copy()
    swapped = 0
    for node in out.nodes:
        if node.op_type in ("Add", "Mul") and len(node.inputs) == 2:
            node.inputs = [node.inputs[1], node.inputs[0]]
            swapped += 1
    if not swapped:
        raise TransformError("no commutative node to reorder")
    return out


@register_transform("fuse-conv-relu")
def fuse_conv_relu(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Fuse every Conv whose sole consumer is a Relu into FusedConvRelu.

    The fusion direction of §4.2's equivalent operator replacement: the
    variant's operator stream (and kernel code) changes while the
    computation is identical.
    """
    return _fuse_with_relu(model, "Conv", "FusedConvRelu")


@register_transform("fuse-gemm-relu")
def fuse_gemm_relu(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Fuse every Gemm whose sole consumer is a Relu into FusedGemmRelu."""
    return _fuse_with_relu(model, "Gemm", "FusedGemmRelu")


def _fuse_with_relu(model: ModelGraph, op_type: str, fused_op: str) -> ModelGraph:
    out = model.copy()
    out.toposort_inplace()
    consumers = out.consumers()
    outputs = out.output_names()
    fused = 0
    removed: set[str] = set()
    for node in out.nodes:
        if node.op_type != op_type or node.outputs[0] in outputs:
            continue
        users = consumers.get(node.outputs[0], [])
        if len(users) != 1 or users[0].op_type != "Relu":
            continue
        relu = users[0]
        node.op_type = fused_op
        node.outputs = [relu.outputs[0]]
        removed.add(relu.name)
        fused += 1
    if not fused:
        raise TransformError(f"no {op_type}+Relu pair available to fuse")
    out.nodes = [n for n in out.nodes if n.name not in removed]
    out.toposort_inplace()
    return out


@register_transform("selective-optimize")
def selective_optimize(model: ModelGraph, rng: np.random.Generator) -> ModelGraph:
    """Pre-fold Conv+BN at the graph level (a deterministic optimization).

    Used "as a defense": the variant carries the optimization baked into
    the graph instead of relying on the runtime's optimizer, so runtime
    optimizer bugs cannot affect it.
    """
    from repro.runtime.optimizations import fold_batch_norm

    return fold_batch_norm(model)
