"""Model zoo: the seven DNNs of the paper's evaluation plus test models.

Architectures follow the published topologies (channel counts, strides,
block layouts); weights are seeded-random since MVTEE never relies on
learned accuracy -- only topology, tensor shapes and FLOPs matter for
partitioning, diversification and the performance model.

All builders accept ``input_size`` so tests can instantiate cheap small
versions while benchmarks use the paper's 3x224x224 default.
"""

from repro.zoo.registry import available_models, build_model, register_model
from repro.zoo.tiny import tiny_cnn, tiny_mlp, small_resnet

__all__ = [
    "available_models",
    "build_model",
    "register_model",
    "small_resnet",
    "tiny_cnn",
    "tiny_mlp",
]
