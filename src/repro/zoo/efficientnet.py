"""EfficientNet-B7 (Tan & Le) -- compound-scaled MBConv blocks with SE."""

from __future__ import annotations

import math

from repro.graph.builder import GraphBuilder
from repro.graph.model import ModelGraph
from repro.zoo.registry import register_model

__all__ = ["efficientnet_b7"]

# B0 base: (expansion, out_channels, repeats, first_stride, kernel)
_B0_BLOCKS = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)

_B7_WIDTH = 2.0
_B7_DEPTH = 3.1


def _round_channels(channels: float, *, divisor: int = 8) -> int:
    rounded = max(divisor, int(channels + divisor / 2) // divisor * divisor)
    if rounded < 0.9 * channels:
        rounded += divisor
    return rounded


def _se_block(b: GraphBuilder, x: str, channels: int, *, reduce_to: int) -> str:
    squeezed = b.global_avg_pool(x)
    gate = b.silu(b.conv(squeezed, reduce_to, kernel=1, pad=0, bias=True))
    gate = b.sigmoid(b.conv(gate, channels, kernel=1, pad=0, bias=True))
    return b.mul(x, gate)


@register_model("efficientnet-b7")
def efficientnet_b7(
    *, batch: int = 1, input_size: int = 224, num_classes: int = 1000, seed: int = 0
) -> ModelGraph:
    """EfficientNet-B7 (width x2.0, depth x3.1; ~38 GFLOPs at 224px).

    The paper evaluates all models at 3x224x224, so the default input size
    here is 224 rather than B7's native 600.
    """
    b = GraphBuilder("efficientnet-b7", seed=seed)
    x = b.input("input", (batch, 3, input_size, input_size))
    stem = _round_channels(32 * _B7_WIDTH)
    y = b.silu(b.batch_norm(b.conv(x, stem, kernel=3, stride=2, pad=1)))
    in_channels = stem
    for expansion, base_out, base_repeats, first_stride, kernel in _B0_BLOCKS:
        out = _round_channels(base_out * _B7_WIDTH)
        repeats = int(math.ceil(base_repeats * _B7_DEPTH))
        for block in range(repeats):
            stride = first_stride if block == 0 else 1
            block_in = y
            expanded = in_channels * expansion
            z = y
            if expansion != 1:
                z = b.silu(b.batch_norm(b.conv(z, expanded, kernel=1, pad=0)))
            z = b.silu(
                b.batch_norm(
                    b.conv(z, expanded, kernel=kernel, stride=stride, pad=kernel // 2, group=expanded)
                )
            )
            z = _se_block(b, z, expanded, reduce_to=max(1, in_channels // 4))
            z = b.batch_norm(b.conv(z, out, kernel=1, pad=0))
            if stride == 1 and in_channels == out:
                z = b.add(z, block_in)
            y = z
            in_channels = out
    head = _round_channels(1280 * _B7_WIDTH)
    y = b.silu(b.batch_norm(b.conv(y, head, kernel=1, pad=0)))
    y = b.global_avg_pool(y)
    b.set_output(b.softmax(b.fc(y, num_classes)))
    return b.finish()
