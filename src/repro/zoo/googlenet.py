"""GoogleNet (Inception v1, Szegedy et al., BN flavor as in torchvision)."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.model import ModelGraph
from repro.zoo.registry import register_model

__all__ = ["googlenet"]


def _conv_bn(b: GraphBuilder, x: str, out: int, *, kernel: int, stride: int = 1, pad: int = 0) -> str:
    return b.relu(b.batch_norm(b.conv(x, out, kernel=kernel, stride=stride, pad=pad)))


def _inception(
    b: GraphBuilder,
    x: str,
    ch1x1: int,
    ch3x3red: int,
    ch3x3: int,
    ch5x5red: int,
    ch5x5: int,
    pool_proj: int,
) -> str:
    branch1 = _conv_bn(b, x, ch1x1, kernel=1)
    branch2 = _conv_bn(b, _conv_bn(b, x, ch3x3red, kernel=1), ch3x3, kernel=3, pad=1)
    branch3 = _conv_bn(b, _conv_bn(b, x, ch5x5red, kernel=1), ch5x5, kernel=3, pad=1)
    branch4 = _conv_bn(b, b.max_pool(x, kernel=3, stride=1, pad=1), pool_proj, kernel=1)
    return b.concat([branch1, branch2, branch3, branch4])


@register_model("googlenet")
def googlenet(
    *, batch: int = 1, input_size: int = 224, num_classes: int = 1000, seed: int = 0
) -> ModelGraph:
    """GoogleNet with the standard nine inception modules (~1.5 GFLOPs)."""
    b = GraphBuilder("googlenet", seed=seed)
    x = b.input("input", (batch, 3, input_size, input_size))
    y = _conv_bn(b, x, 64, kernel=7, stride=2, pad=3)
    y = b.max_pool(y, kernel=3, stride=2, ceil_mode=True)
    y = _conv_bn(b, y, 64, kernel=1)
    y = _conv_bn(b, y, 192, kernel=3, pad=1)
    y = b.max_pool(y, kernel=3, stride=2, ceil_mode=True)
    y = _inception(b, y, 64, 96, 128, 16, 32, 32)  # 3a
    y = _inception(b, y, 128, 128, 192, 32, 96, 64)  # 3b
    y = b.max_pool(y, kernel=3, stride=2, ceil_mode=True)
    y = _inception(b, y, 192, 96, 208, 16, 48, 64)  # 4a
    y = _inception(b, y, 160, 112, 224, 24, 64, 64)  # 4b
    y = _inception(b, y, 128, 128, 256, 24, 64, 64)  # 4c
    y = _inception(b, y, 112, 144, 288, 32, 64, 64)  # 4d
    y = _inception(b, y, 256, 160, 320, 32, 128, 128)  # 4e
    y = b.max_pool(y, kernel=2, stride=2, ceil_mode=True)
    y = _inception(b, y, 256, 160, 320, 32, 128, 128)  # 5a
    y = _inception(b, y, 384, 192, 384, 48, 128, 128)  # 5b
    y = b.global_avg_pool(y)
    b.set_output(b.softmax(b.fc(y, num_classes)))
    return b.finish()
