"""Inception V3 (Szegedy et al., torchvision block layout)."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.model import ModelGraph
from repro.zoo.registry import register_model

__all__ = ["inception_v3"]


def _conv_bn(
    b: GraphBuilder,
    x: str,
    out: int,
    *,
    kernel: int | tuple[int, int],
    stride: int = 1,
    pad: int | tuple[int, int] = 0,
) -> str:
    return b.relu(b.batch_norm(b.conv(x, out, kernel=kernel, stride=stride, pad=pad)))


def _inception_a(b: GraphBuilder, x: str, pool_features: int) -> str:
    branch1 = _conv_bn(b, x, 64, kernel=1)
    branch5 = _conv_bn(b, _conv_bn(b, x, 48, kernel=1), 64, kernel=5, pad=2)
    branch3 = _conv_bn(b, x, 64, kernel=1)
    branch3 = _conv_bn(b, branch3, 96, kernel=3, pad=1)
    branch3 = _conv_bn(b, branch3, 96, kernel=3, pad=1)
    pool = _conv_bn(b, b.avg_pool(x, kernel=3, stride=1, pad=1), pool_features, kernel=1)
    return b.concat([branch1, branch5, branch3, pool])


def _inception_b(b: GraphBuilder, x: str) -> str:
    branch3 = _conv_bn(b, x, 384, kernel=3, stride=2)
    branch3dbl = _conv_bn(b, x, 64, kernel=1)
    branch3dbl = _conv_bn(b, branch3dbl, 96, kernel=3, pad=1)
    branch3dbl = _conv_bn(b, branch3dbl, 96, kernel=3, stride=2)
    pool = b.max_pool(x, kernel=3, stride=2)
    return b.concat([branch3, branch3dbl, pool])


def _inception_c(b: GraphBuilder, x: str, c7: int) -> str:
    branch1 = _conv_bn(b, x, 192, kernel=1)
    branch7 = _conv_bn(b, x, c7, kernel=1)
    branch7 = _conv_bn(b, branch7, c7, kernel=(1, 7), pad=(0, 3))
    branch7 = _conv_bn(b, branch7, 192, kernel=(7, 1), pad=(3, 0))
    branch7dbl = _conv_bn(b, x, c7, kernel=1)
    branch7dbl = _conv_bn(b, branch7dbl, c7, kernel=(7, 1), pad=(3, 0))
    branch7dbl = _conv_bn(b, branch7dbl, c7, kernel=(1, 7), pad=(0, 3))
    branch7dbl = _conv_bn(b, branch7dbl, c7, kernel=(7, 1), pad=(3, 0))
    branch7dbl = _conv_bn(b, branch7dbl, 192, kernel=(1, 7), pad=(0, 3))
    pool = _conv_bn(b, b.avg_pool(x, kernel=3, stride=1, pad=1), 192, kernel=1)
    return b.concat([branch1, branch7, branch7dbl, pool])


def _inception_d(b: GraphBuilder, x: str) -> str:
    branch3 = _conv_bn(b, _conv_bn(b, x, 192, kernel=1), 320, kernel=3, stride=2)
    branch7 = _conv_bn(b, x, 192, kernel=1)
    branch7 = _conv_bn(b, branch7, 192, kernel=(1, 7), pad=(0, 3))
    branch7 = _conv_bn(b, branch7, 192, kernel=(7, 1), pad=(3, 0))
    branch7 = _conv_bn(b, branch7, 192, kernel=3, stride=2)
    pool = b.max_pool(x, kernel=3, stride=2)
    return b.concat([branch3, branch7, pool])


def _inception_e(b: GraphBuilder, x: str) -> str:
    branch1 = _conv_bn(b, x, 320, kernel=1)
    branch3 = _conv_bn(b, x, 384, kernel=1)
    branch3 = b.concat(
        [
            _conv_bn(b, branch3, 384, kernel=(1, 3), pad=(0, 1)),
            _conv_bn(b, branch3, 384, kernel=(3, 1), pad=(1, 0)),
        ]
    )
    branch3dbl = _conv_bn(b, x, 448, kernel=1)
    branch3dbl = _conv_bn(b, branch3dbl, 384, kernel=3, pad=1)
    branch3dbl = b.concat(
        [
            _conv_bn(b, branch3dbl, 384, kernel=(1, 3), pad=(0, 1)),
            _conv_bn(b, branch3dbl, 384, kernel=(3, 1), pad=(1, 0)),
        ]
    )
    pool = _conv_bn(b, b.avg_pool(x, kernel=3, stride=1, pad=1), 192, kernel=1)
    return b.concat([branch1, branch3, branch3dbl, pool])


@register_model("inception-v3")
def inception_v3(
    *, batch: int = 1, input_size: int = 224, num_classes: int = 1000, seed: int = 0
) -> ModelGraph:
    """Inception V3 with A/B/C/D/E blocks (~5.7 GFLOPs at 224px)."""
    b = GraphBuilder("inception-v3", seed=seed)
    x = b.input("input", (batch, 3, input_size, input_size))
    y = _conv_bn(b, x, 32, kernel=3, stride=2)
    y = _conv_bn(b, y, 32, kernel=3)
    y = _conv_bn(b, y, 64, kernel=3, pad=1)
    y = b.max_pool(y, kernel=3, stride=2)
    y = _conv_bn(b, y, 80, kernel=1)
    y = _conv_bn(b, y, 192, kernel=3)
    y = b.max_pool(y, kernel=3, stride=2)
    y = _inception_a(b, y, 32)
    y = _inception_a(b, y, 64)
    y = _inception_a(b, y, 64)
    y = _inception_b(b, y)
    for c7 in (128, 160, 160, 192):
        y = _inception_c(b, y, c7)
    y = _inception_d(b, y)
    y = _inception_e(b, y)
    y = _inception_e(b, y)
    y = b.global_avg_pool(y)
    b.set_output(b.softmax(b.fc(y, num_classes)))
    return b.finish()
