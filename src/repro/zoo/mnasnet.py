"""MnasNet-B1 (Tan et al.) -- mobile inverted bottlenecks with ReLU6."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.model import ModelGraph
from repro.zoo.registry import register_model

__all__ = ["mnasnet"]

# (kernel, expansion, out_channels, repeats, first_stride)
_B1_CONFIG = (
    (3, 3, 24, 3, 2),
    (5, 3, 40, 3, 2),
    (5, 6, 80, 3, 2),
    (3, 6, 96, 2, 1),
    (5, 6, 192, 4, 2),
    (3, 6, 320, 1, 1),
)


def _relu6(b: GraphBuilder, x: str) -> str:
    return b.clip(x, lo=0.0, hi=6.0)


@register_model("mnasnet")
def mnasnet(
    *, batch: int = 1, input_size: int = 224, num_classes: int = 1000, seed: int = 0
) -> ModelGraph:
    """MnasNet-B1 (~0.33 GFLOPs at 224px)."""
    b = GraphBuilder("mnasnet", seed=seed)
    x = b.input("input", (batch, 3, input_size, input_size))
    y = _relu6(b, b.batch_norm(b.conv(x, 32, kernel=3, stride=2, pad=1)))
    # Initial separable conv to 16 channels.
    y = _relu6(b, b.batch_norm(b.conv(y, 32, kernel=3, pad=1, group=32)))
    y = b.batch_norm(b.conv(y, 16, kernel=1, pad=0))
    in_channels = 16
    for kernel, expansion, out, repeats, first_stride in _B1_CONFIG:
        for block in range(repeats):
            stride = first_stride if block == 0 else 1
            block_in = y
            expanded = in_channels * expansion
            z = _relu6(b, b.batch_norm(b.conv(y, expanded, kernel=1, pad=0)))
            z = _relu6(
                b,
                b.batch_norm(
                    b.conv(z, expanded, kernel=kernel, stride=stride, pad=kernel // 2, group=expanded)
                ),
            )
            z = b.batch_norm(b.conv(z, out, kernel=1, pad=0))
            if stride == 1 and in_channels == out:
                z = b.add(z, block_in)
            y = z
            in_channels = out
    y = _relu6(b, b.batch_norm(b.conv(y, 1280, kernel=1, pad=0)))
    y = b.global_avg_pool(y)
    b.set_output(b.softmax(b.fc(y, num_classes)))
    return b.finish()
