"""MobileNet V3 (Large) -- Howard et al., inverted residuals with SE."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.model import ModelGraph
from repro.zoo.registry import register_model

__all__ = ["mobilenet_v3"]

# (kernel, expanded, out, use_se, use_hswish, stride)
_LARGE_CONFIG = (
    (3, 16, 16, False, False, 1),
    (3, 64, 24, False, False, 2),
    (3, 72, 24, False, False, 1),
    (5, 72, 40, True, False, 2),
    (5, 120, 40, True, False, 1),
    (5, 120, 40, True, False, 1),
    (3, 240, 80, False, True, 2),
    (3, 200, 80, False, True, 1),
    (3, 184, 80, False, True, 1),
    (3, 184, 80, False, True, 1),
    (3, 480, 112, True, True, 1),
    (3, 672, 112, True, True, 1),
    (5, 672, 160, True, True, 2),
    (5, 960, 160, True, True, 1),
    (5, 960, 160, True, True, 1),
)


def _se_block(b: GraphBuilder, x: str, channels: int, *, reduce_to: int) -> str:
    squeezed = b.global_avg_pool(x)
    gate = b.relu(b.conv(squeezed, reduce_to, kernel=1, pad=0, bias=True))
    gate = b.hard_sigmoid(b.conv(gate, channels, kernel=1, pad=0, bias=True))
    return b.mul(x, gate)


def _activate(b: GraphBuilder, x: str, hswish: bool) -> str:
    return b.hard_swish(x) if hswish else b.relu(x)


@register_model("mobilenet-v3")
def mobilenet_v3(
    *, batch: int = 1, input_size: int = 224, num_classes: int = 1000, seed: int = 0
) -> ModelGraph:
    """MobileNet V3 Large (~0.22 GFLOPs at 224px)."""
    b = GraphBuilder("mobilenet-v3", seed=seed)
    x = b.input("input", (batch, 3, input_size, input_size))
    y = b.hard_swish(b.batch_norm(b.conv(x, 16, kernel=3, stride=2, pad=1)))
    in_channels = 16
    for kernel, expanded, out, use_se, use_hswish, stride in _LARGE_CONFIG:
        block_in = y
        z = y
        if expanded != in_channels:
            z = _activate(b, b.batch_norm(b.conv(z, expanded, kernel=1, pad=0)), use_hswish)
        z = b.batch_norm(
            b.conv(z, expanded, kernel=kernel, stride=stride, pad=kernel // 2, group=expanded)
        )
        z = _activate(b, z, use_hswish)
        if use_se:
            z = _se_block(b, z, expanded, reduce_to=max(8, (expanded // 4 + 3) // 8 * 8))
        z = b.batch_norm(b.conv(z, out, kernel=1, pad=0))
        if stride == 1 and in_channels == out:
            z = b.add(z, block_in)
        y = z
        in_channels = out
    y = b.hard_swish(b.batch_norm(b.conv(y, 960, kernel=1, pad=0)))
    y = b.global_avg_pool(y)
    y = b.hard_swish(b.fc(y, 1280))
    b.set_output(b.softmax(b.fc(y, num_classes, flatten=False)))
    return b.finish()
