"""Registry mapping model names to builder functions.

The evaluation harness iterates ``EVALUATION_MODELS`` -- the set used in
the paper's §6.1 ("EfficientNet-b7, GoogleNet, Inception V3, MnasNet,
MobileNet V3, ResNet-152 and ResNet-50").
"""

from __future__ import annotations

from typing import Callable

from repro.graph.model import ModelGraph

__all__ = ["EVALUATION_MODELS", "available_models", "build_model", "register_model"]

_REGISTRY: dict[str, Callable[..., ModelGraph]] = {}

#: Model names used throughout the paper's figures.
EVALUATION_MODELS = (
    "efficientnet-b7",
    "googlenet",
    "inception-v3",
    "mnasnet",
    "mobilenet-v3",
    "resnet-152",
    "resnet-50",
)


def register_model(name: str):
    """Decorator registering a model builder under ``name``."""

    def decorate(fn: Callable[..., ModelGraph]):
        if name in _REGISTRY:
            raise ValueError(f"model {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return decorate


def available_models() -> list[str]:
    """All registered model names."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def build_model(name: str, **kwargs) -> ModelGraph:
    """Instantiate a registered model (kwargs: batch, input_size, seed, ...)."""
    _ensure_loaded()
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}") from None
    return builder(**kwargs)


def _ensure_loaded() -> None:
    # Import side-effect modules once so their @register_model calls run.
    from repro.zoo import (  # noqa: F401
        efficientnet,
        googlenet,
        inception,
        mnasnet,
        mobilenet,
        resnet,
        tiny,
        transformer,
    )
