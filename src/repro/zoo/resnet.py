"""ResNet-50 and ResNet-152 (He et al., bottleneck variant)."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.model import ModelGraph
from repro.zoo.registry import register_model

__all__ = ["resnet50", "resnet152"]


def _bottleneck(b: GraphBuilder, x: str, mid: int, out: int, *, stride: int, project: bool) -> str:
    y = b.relu(b.batch_norm(b.conv(x, mid, kernel=1, pad=0)))
    y = b.relu(b.batch_norm(b.conv(y, mid, kernel=3, stride=stride, pad=1)))
    y = b.batch_norm(b.conv(y, out, kernel=1, pad=0))
    shortcut = x
    if project:
        shortcut = b.batch_norm(b.conv(x, out, kernel=1, stride=stride, pad=0))
    return b.relu(b.add(y, shortcut))


def _resnet(
    name: str,
    layers: tuple[int, int, int, int],
    *,
    batch: int,
    input_size: int,
    num_classes: int,
    seed: int,
) -> ModelGraph:
    b = GraphBuilder(name, seed=seed)
    x = b.input("input", (batch, 3, input_size, input_size))
    y = b.relu(b.batch_norm(b.conv(x, 64, kernel=7, stride=2, pad=3)))
    y = b.max_pool(y, kernel=3, stride=2, pad=1)
    channels = 64
    for stage, count in enumerate(layers):
        mid = 64 * 2**stage
        out = mid * 4
        for block in range(count):
            stride = 2 if stage > 0 and block == 0 else 1
            project = block == 0
            y = _bottleneck(b, y, mid, out, stride=stride, project=project)
            channels = out
    y = b.global_avg_pool(y)
    b.set_output(b.softmax(b.fc(y, num_classes)))
    return b.finish()


@register_model("resnet-50")
def resnet50(
    *, batch: int = 1, input_size: int = 224, num_classes: int = 1000, seed: int = 0
) -> ModelGraph:
    """ResNet-50: stages of 3/4/6/3 bottleneck blocks (~4.1 GFLOPs at 224px)."""
    return _resnet(
        "resnet-50",
        (3, 4, 6, 3),
        batch=batch,
        input_size=input_size,
        num_classes=num_classes,
        seed=seed,
    )


@register_model("resnet-152")
def resnet152(
    *, batch: int = 1, input_size: int = 224, num_classes: int = 1000, seed: int = 0
) -> ModelGraph:
    """ResNet-152: stages of 3/8/36/3 bottleneck blocks (~11.5 GFLOPs at 224px)."""
    return _resnet(
        "resnet-152",
        (3, 8, 36, 3),
        batch=batch,
        input_size=input_size,
        num_classes=num_classes,
        seed=seed,
    )
