"""Small models for tests and examples: cheap to execute with real kernels."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.model import ModelGraph
from repro.zoo.registry import register_model

__all__ = ["tiny_cnn", "tiny_mlp", "small_resnet"]


@register_model("tiny-cnn")
def tiny_cnn(
    *, batch: int = 1, input_size: int = 16, num_classes: int = 10, seed: int = 0
) -> ModelGraph:
    """A 7-node conv net; executes in milliseconds with real kernels."""
    b = GraphBuilder("tiny-cnn", seed=seed)
    x = b.input("input", (batch, 3, input_size, input_size))
    y = b.relu(b.batch_norm(b.conv(x, 8, kernel=3, stride=1, pad=1)))
    y = b.max_pool(y, kernel=2)
    y = b.relu(b.conv(y, 16, kernel=3, stride=2, pad=1))
    y = b.global_avg_pool(y)
    b.set_output(b.softmax(b.fc(y, num_classes)))
    return b.finish()


@register_model("tiny-mlp")
def tiny_mlp(
    *, batch: int = 1, in_features: int = 32, num_classes: int = 10, seed: int = 0
) -> ModelGraph:
    """A 3-layer MLP used by protocol-level tests."""
    b = GraphBuilder("tiny-mlp", seed=seed)
    x = b.input("input", (batch, in_features))
    y = b.relu(b.fc(x, 64, flatten=False))
    y = b.relu(b.fc(y, 64, flatten=False))
    b.set_output(b.softmax(b.fc(y, num_classes, flatten=False)))
    return b.finish()


@register_model("small-resnet")
def small_resnet(
    *,
    batch: int = 1,
    input_size: int = 32,
    num_classes: int = 10,
    blocks_per_stage: int = 2,
    seed: int = 0,
) -> ModelGraph:
    """A ResNet-18-style model small enough for real partitioned inference tests."""
    b = GraphBuilder("small-resnet", seed=seed)
    x = b.input("input", (batch, 3, input_size, input_size))
    y = b.relu(b.batch_norm(b.conv(x, 16, kernel=3, pad=1)))
    channels = 16
    for stage, out_channels in enumerate((16, 32, 64)):
        for block in range(blocks_per_stage):
            stride = 2 if stage > 0 and block == 0 else 1
            shortcut = y
            out = b.relu(b.batch_norm(b.conv(y, out_channels, kernel=3, stride=stride, pad=1)))
            out = b.batch_norm(b.conv(out, out_channels, kernel=3, pad=1))
            if stride != 1 or channels != out_channels:
                shortcut = b.batch_norm(b.conv(y, out_channels, kernel=1, stride=stride, pad=0))
            y = b.relu(b.add(out, shortcut))
            channels = out_channels
    y = b.global_avg_pool(y)
    b.set_output(b.softmax(b.fc(y, num_classes)))
    return b.finish()
