"""Decoder-only transformer models (§7.4: Foundation Models in CPU TEEs).

A GPT-style causal transformer built on the extension operator family
(LayerNormalization, Gelu, BatchMatMul, Split, CausalMask).  The model
takes pre-embedded token representations (1, seq, d_model) as its
protected input, mirroring a serving stack where embedding lookup
happens at the edge and the transformer trunk runs inside MVTEE.

``tiny-gpt`` executes with real kernels in tests; ``gpt-small-sim``
matches GPT-2-small dimensions for partitioning/performance studies.
"""

from __future__ import annotations

import repro.ops  # noqa: F401 -- registers the transformer op family
from repro.graph.builder import GraphBuilder
from repro.graph.model import ModelGraph
from repro.zoo.registry import register_model

__all__ = ["gpt_small_sim", "tiny_gpt", "transformer_lm"]


def _attention_block(
    b: GraphBuilder, x: str, *, d_model: int, n_heads: int, seq: int
) -> str:
    head_dim = d_model // n_heads
    normed = b.layer_norm(x)
    qkv = b.linear(normed, 3 * d_model)
    q, k, v = b.split(qkv, 3, axis=-1)

    def heads(tensor: str) -> str:
        reshaped = b.reshape(tensor, [1, seq, n_heads, head_dim])
        return b.transpose(reshaped, [0, 2, 1, 3])  # (1, H, T, dh)

    q, k, v = heads(q), heads(k), heads(v)
    scores = b.batch_matmul(q, k, trans_b=True, scale=1.0 / head_dim**0.5)
    attn = b.softmax(b.causal_mask(scores), axis=-1)
    context = b.batch_matmul(attn, v)  # (1, H, T, dh)
    merged = b.reshape(b.transpose(context, [0, 2, 1, 3]), [1, seq, d_model])
    projected = b.linear(merged, d_model)
    return b.add(x, projected)


def _mlp_block(b: GraphBuilder, x: str, *, d_model: int) -> str:
    normed = b.layer_norm(x)
    hidden = b.gelu(b.linear(normed, 4 * d_model))
    return b.add(x, b.linear(hidden, d_model))


def transformer_lm(
    *,
    name: str,
    seq: int,
    d_model: int,
    n_heads: int,
    n_layers: int,
    vocab: int,
    seed: int = 0,
) -> ModelGraph:
    """Build a causal transformer language-model trunk."""
    if d_model % n_heads:
        raise ValueError(f"d_model {d_model} not divisible by heads {n_heads}")
    b = GraphBuilder(name, seed=seed)
    x = b.input("embeddings", (1, seq, d_model))
    y = x
    for _ in range(n_layers):
        y = _attention_block(b, y, d_model=d_model, n_heads=n_heads, seq=seq)
        y = _mlp_block(b, y, d_model=d_model)
    y = b.layer_norm(y)
    logits = b.linear(y, vocab)
    b.set_output(b.softmax(logits, axis=-1))
    return b.finish()


@register_model("tiny-gpt")
def tiny_gpt(
    *, seq: int = 8, d_model: int = 32, n_heads: int = 2, n_layers: int = 2,
    vocab: int = 50, seed: int = 0,
) -> ModelGraph:
    """A 2-layer causal transformer small enough for real MVX inference tests."""
    return transformer_lm(
        name="tiny-gpt", seq=seq, d_model=d_model, n_heads=n_heads,
        n_layers=n_layers, vocab=vocab, seed=seed,
    )


@register_model("gpt-small-sim")
def gpt_small_sim(
    *, seq: int = 128, d_model: int = 768, n_heads: int = 12, n_layers: int = 12,
    vocab: int = 50257, seed: int = 0,
) -> ModelGraph:
    """GPT-2-small dimensions, for partitioning and performance studies."""
    return transformer_lm(
        name="gpt-small-sim", seq=seq, d_model=d_model, n_heads=n_heads,
        n_layers=n_layers, vocab=vocab, seed=seed,
    )
