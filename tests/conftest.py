"""Shared fixtures.

Deployment fixtures are module-scoped where tests only read state;
tests that mutate a deployment (attacks, updates) build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mvx.system import MvteeSystem
from repro.runtime.base import RuntimeConfig
from repro.runtime.interpreter import InterpreterRuntime
from repro.zoo import build_model


@pytest.fixture(scope="session")
def tiny_cnn():
    return build_model("tiny-cnn")


@pytest.fixture(scope="session")
def tiny_mlp():
    return build_model("tiny-mlp")


@pytest.fixture(scope="session")
def small_resnet():
    return build_model("small-resnet", input_size=16, blocks_per_stage=1)


@pytest.fixture(scope="session")
def small_input():
    rng = np.random.default_rng(0)
    return rng.normal(size=(1, 3, 16, 16)).astype(np.float32)


@pytest.fixture(scope="session")
def small_resnet_reference(small_resnet, small_input):
    runtime = InterpreterRuntime(RuntimeConfig(optimization_level=0))
    runtime.prepare(small_resnet)
    return runtime.run({"input": small_input})


@pytest.fixture(scope="module")
def deployed_system(small_resnet):
    """A 3-partition deployment with MVX on the middle partition."""
    return MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )
