"""Security analysis tests: Table 1 CVEs, FrameFlip, weight flips.

The central claims under test (§6.5):
- every attack impacts only the variants holding the vulnerable
  implementation;
- a diversified pool detects each attack (crash or divergence);
- homogeneous replication misses silent-corruption attacks that a
  diversified pool catches.
"""

import numpy as np
import pytest

from repro.attacks import (
    FrameFlipAttack,
    TABLE1_CVES,
    WeightBitFlipAttack,
    run_input_attack,
    run_persistent_attack,
)
from repro.attacks.cves import Impact, craft_malicious_input
from repro.chaos import InjectionTarget, SlowVariantInjector
from repro.mvx import MvteeSystem, ResponseAction
from repro.runtime import RuntimeConfig, create_runtime
from repro.runtime.faults import FaultInjector


def deploy(small_resnet, mvx, seed=0):
    system = MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions=mvx,
        seed=seed,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    return system


class TestCveCatalog:
    def test_twelve_cases(self):
        assert len(TABLE1_CVES) == 12

    def test_all_vuln_classes_covered(self):
        classes = {c.vuln_class.name for c in TABLE1_CVES}
        assert classes == {"OOB", "UNP", "FPE", "IO", "UAF", "ACF"}

    def test_arm_respects_engine(self, small_resnet):
        case = TABLE1_CVES[0]  # interpreter Conv
        vulnerable = create_runtime(RuntimeConfig(engine="interpreter"))
        immune = create_runtime(RuntimeConfig(engine="compiled"))
        vulnerable.prepare(small_resnet)
        immune.prepare(small_resnet)
        assert case.arm(vulnerable)
        assert not case.arm(immune)

    def test_benign_input_does_not_trigger(self, small_resnet, small_input, small_resnet_reference):
        case = TABLE1_CVES[0]
        runtime = create_runtime(RuntimeConfig(engine="interpreter", optimization_level=0))
        runtime.prepare(small_resnet)
        case.arm(runtime)
        out = runtime.run({"input": small_input})
        name = next(iter(out))
        assert np.allclose(out[name], small_resnet_reference[name], atol=1e-4)

    def test_crafted_input_carries_marker(self):
        evil = craft_malicious_input((1, 3, 4, 4))
        assert np.max(np.abs(evil)) >= 1e10

    @pytest.mark.parametrize(
        "case", [c for c in TABLE1_CVES if c.crashes], ids=lambda c: c.cve_id
    )
    def test_dos_cves_detected_by_diversified_pool(self, small_resnet, case):
        op_present = any(n.op_type == case.vulnerable_op for n in small_resnet.nodes)
        system = deploy(small_resnet, {0: 3, 1: 3, 2: 3}, seed=1)
        armed = sum(
            case.arm(connection.host.runtime)
            for connections in system.monitor.connections.values()
            for connection in connections
        )
        outcome = run_input_attack(system, {"input": craft_malicious_input((1, 3, 16, 16))})
        if armed and op_present:
            assert outcome.detected
            assert outcome.mechanism == "crash"
        elif not op_present:
            # The model never invokes the vulnerable kernel: attack fails.
            assert outcome.crashes == 0

    def test_corruption_cve_detected_by_divergence(self, small_resnet):
        # CVE-2022-41883: OOB data corruption in the Gemm kernel -- small
        # resnet's classifier head runs Gemm, in the final partition.
        case = next(c for c in TABLE1_CVES if c.cve_id == "CVE-2022-41883")
        assert case.impact is Impact.DATA_CORRUPTION and not case.crashes
        system = deploy(small_resnet, {2: 3}, seed=1)
        connections = system.monitor.stage_connections(2)
        armed = [case.arm(c.host.runtime) for c in connections]
        assert any(armed) and not all(armed)
        outcome = run_input_attack(system, {"input": craft_malicious_input((1, 3, 16, 16))})
        assert outcome.detected
        assert outcome.mechanism == "divergence"

    def test_homogeneous_pool_misses_silent_corruption(self, small_resnet):
        """The MVX premise: identical replicas fail identically."""
        case = next(c for c in TABLE1_CVES if c.cve_id == "CVE-2022-41883")
        system = deploy(small_resnet, {2: 3}, seed=1)
        # Arm EVERY variant regardless of engine: models a homogeneous
        # deployment where all replicas share the buggy kernel.
        for connection in system.monitor.stage_connections(2):
            runtime = connection.host.runtime
            assert runtime.kernel_context is not None
            forced = type(case)(
                cve_id=case.cve_id,
                vuln_class=case.vuln_class,
                impact=case.impact,
                vulnerable_engine=runtime.config.engine,
                vulnerable_op=case.vulnerable_op,
                defending_variants=case.defending_variants,
            )
            assert forced.arm(runtime)
        outcome = run_input_attack(system, {"input": craft_malicious_input((1, 3, 16, 16))})
        assert not outcome.detected  # unanimous agreement on the WRONG result


class TestFrameFlip:
    def test_only_target_backend_affected(self, small_resnet, small_input):
        system = deploy(small_resnet, {0: 3, 1: 3, 2: 3}, seed=1)
        reference = system.infer({"input": small_input})
        attack = FrameFlipAttack(target_backend="openblas-sim")
        affected = attack.launch(system.monitor)
        all_variants = [
            c.variant_id
            for conns in system.monitor.connections.values()
            for c in conns
        ]
        assert 0 < len(affected) < len(all_variants)
        outcome = run_persistent_attack(system, {"input": small_input}, reference)
        assert outcome.detected
        assert not outcome.silent_corruption

    def test_attack_fails_without_target_backend(self, small_resnet, small_input):
        system = deploy(small_resnet, {1: 3}, seed=3)
        attack = FrameFlipAttack(target_backend="nonexistent-blas")
        assert attack.launch(system.monitor) == []

    def test_lift_restores(self, small_resnet, small_input):
        system = deploy(small_resnet, {1: 3}, seed=1)
        reference = system.infer({"input": small_input})
        attack = FrameFlipAttack(target_backend="openblas-sim")
        attack.launch(system.monitor)
        attack.lift(system.monitor)
        outcome = run_persistent_attack(system, {"input": small_input}, reference)
        assert not outcome.detected
        assert not outcome.output_corrupted


class TestWeightBitFlip:
    def test_single_variant_flip_detected(self, small_resnet, small_input):
        system = deploy(small_resnet, {1: 3}, seed=2)
        reference = system.infer({"input": small_input})
        target = system.monitor.stage_connections(1)[1].variant_id
        attack = WeightBitFlipAttack(target_variant=target, num_flips=2)
        assert attack.launch(system.monitor)
        outcome = run_persistent_attack(system, {"input": small_input}, reference)
        assert outcome.detected

    def test_missing_target_is_noop(self, small_resnet):
        system = deploy(small_resnet, {1: 3}, seed=2)
        attack = WeightBitFlipAttack(target_variant="ghost")
        assert attack.launch(system.monitor) == []


class TestRestoreAudit:
    """Every attack must come with a faithful, narrow undo.

    The chaos campaign re-uses the attacks as revertible injections, so
    each restore path is audited here: it must return the runtime to its
    pre-attack state bit-exactly, touch only its own fault, and stay
    safe to call twice.
    """

    def test_cve_disarm_restores_clean_outputs(self, small_resnet):
        case = next(c for c in TABLE1_CVES if c.cve_id == "CVE-2022-41883")
        runtime = create_runtime(RuntimeConfig(engine=case.vulnerable_engine))
        runtime.prepare(small_resnet)
        evil = craft_malicious_input((1, 3, 16, 16))
        clean = runtime.run({"input": np.array(evil, copy=True)})
        name = next(iter(clean))
        assert case.arm(runtime)
        corrupted = runtime.run({"input": np.array(evil, copy=True)})
        assert not np.allclose(corrupted[name], clean[name], equal_nan=True)
        assert case.disarm(runtime)
        restored = runtime.run({"input": np.array(evil, copy=True)})
        assert np.array_equal(restored[name], clean[name])
        # Disarming twice (or before arming) is a harmless no-op.
        assert case.disarm(runtime)
        again = runtime.run({"input": np.array(evil, copy=True)})
        assert np.array_equal(again[name], clean[name])

    def test_frameflip_lift_leaves_armed_op_faults(self, small_resnet):
        # Lifting a FrameFlip must clear only the BLAS-level fault: an
        # unrelated op fault armed on the same runtime survives, so
        # overlapping chaos windows cannot erase each other's state.
        system = deploy(small_resnet, {1: 3}, seed=1)
        attack = FrameFlipAttack(target_backend="openblas-sim")
        affected = attack.launch(system.monitor)
        assert affected
        runtime = next(
            c.host.runtime
            for conns in system.monitor.connections.values()
            for c in conns
            if c.variant_id == affected[0]
        )
        assert runtime.kernel_context.blas.fault_hook is not None
        FaultInjector(runtime).arm_op_corruption("Relu")
        attack.lift(system.monitor)
        assert runtime.kernel_context.blas.fault_hook is None
        assert "Relu" in runtime.kernel_context.op_hooks
        FaultInjector(runtime).disarm_op("Relu")

    def test_weight_flip_revert_is_bit_exact(self, small_resnet):
        system = deploy(small_resnet, {1: 3}, seed=2)
        connection = system.monitor.stage_connections(1)[0]
        runtime = connection.host.runtime
        before = {
            k: np.array(v, copy=True) for k, v in runtime.model.initializers.items()
        }
        attack = WeightBitFlipAttack(target_variant=connection.variant_id, num_flips=3)
        flips = attack.launch(system.monitor)
        assert flips
        assert any(
            not np.array_equal(runtime.model.initializers[k], v)
            for k, v in before.items()
        )
        assert attack.revert(system.monitor) == len(flips)
        for k, v in before.items():
            assert np.array_equal(runtime.model.initializers[k], v)
        # Reverting again finds the recorded flips already cancelled out
        # -- XOR twice restores, so a double revert would re-corrupt; the
        # attack guards by clearing its flip log on the first revert.
        assert attack.revert(system.monitor) == 0
        for k, v in before.items():
            assert np.array_equal(runtime.model.initializers[k], v)

    def test_injector_context_restores_on_exception(self, small_resnet):
        system = deploy(small_resnet, {1: 3}, seed=1)
        target = InjectionTarget(system=system, engine=system.serving_engine())
        injector = SlowVariantInjector(added_latency_s=0.05)
        injector.resolve(target, np.random.default_rng(0))
        host = target.connection(injector.targets[0]).host
        with pytest.raises(RuntimeError, match="window blew up"):
            with injector.on(target):
                assert host.simulated_latency == 0.05
                raise RuntimeError("window blew up")
        assert host.simulated_latency == 0.0
        assert not host.realtime_latency
