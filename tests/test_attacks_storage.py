"""Rollback and fork attack drivers."""

import pytest

from repro.attacks import ForkAttack, RollbackAttack
from repro.crypto.keys import KeyManager
from repro.crypto.sealed import seal_bytes
from repro.mvx import MvteeSystem
from repro.tee.filesystem import MonotonicCounterService, ProtectedFs


@pytest.fixture()
def fs():
    record = KeyManager().create_key("v")
    fs = ProtectedFs(kdk=record.key, key_id="v", counters=MonotonicCounterService())
    fs._record = record  # test convenience
    return fs


class TestRollbackAttack:
    def test_detected_with_counters(self, fs):
        fs.write(seal_bytes(fs._record, "model.enc", b"v1", freshness=1))
        attack = RollbackAttack(path="model.enc")
        attack.capture(fs)
        fs.write(seal_bytes(fs._record, "model.enc", b"v2", freshness=2))
        assert attack.launch(fs) is True  # detected

    def test_detected_with_runtime_metadata_only(self):
        record = KeyManager().create_key("w")
        fs = ProtectedFs(kdk=record.key, key_id="w")  # no counter service
        fs.write(seal_bytes(record, "f", b"v1", freshness=1))
        attack = RollbackAttack(path="f")
        attack.capture(fs)
        fs.write(seal_bytes(record, "f", b"v2", freshness=2))
        assert attack.launch(fs) is True

    def test_capture_missing_file(self, fs):
        with pytest.raises(KeyError):
            RollbackAttack(path="ghost").capture(fs)

    def test_launch_without_capture(self, fs):
        with pytest.raises(RuntimeError, match="capture"):
            RollbackAttack(path="f").launch(fs)


class TestForkAttack:
    def test_rejected_on_live_deployment(self, small_resnet):
        system = MvteeSystem.deploy(
            small_resnet, num_partitions=2, mvx_partitions={},
            seed=0, verify_partitions=False, verify_variants=False,
        )
        artifact = system.pool.for_partition(0)[0]
        attack = ForkAttack(artifact=artifact)
        rejected = attack.launch(system.monitor, system.orchestrator._pick_cpu())
        assert rejected is True
        # The legitimate binding is untouched.
        assert artifact.variant_id in system.monitor.ledger.active_bindings()
        assert len(system.monitor.stage_connections(0)) == 1
