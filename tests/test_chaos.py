"""Chaos harness: verdict semantics, seeded plans, revertible injectors,
and a live mini-campaign with its SLO floor.

The verdict layer is pure (no deployment needed), so its taxonomy --
detected / masked / missed / silent-corruption -- is pinned down with
synthetic observations.  The live tests then prove the mechanics: plan
replay identity, injector restore really reverting state, and a short
in-process campaign holding the floor end to end.
"""

import numpy as np
import pytest

from repro.attacks.cves import TABLE1_CVES
from repro.chaos import (
    OUTCOME_DETECTED,
    OUTCOME_ERROR,
    OUTCOME_MASKED,
    OUTCOME_MISSED,
    OUTCOME_SILENT_CORRUPTION,
    ChaosCampaign,
    CveInjector,
    ForkInjector,
    InjectionError,
    InjectionTarget,
    ProbeResult,
    RollbackInjector,
    SlowVariantInjector,
    WindowObservation,
    WorkerKillInjector,
    judge,
)
from repro.mvx import MvteeSystem, ResponseAction
from repro.serving.engine import ServingPolicy


def deploy(small_resnet, mvx, seed=0, response=ResponseAction.DROP_VARIANT):
    system = MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions=mvx,
        seed=seed,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = response
    return system


CORRUPTION_CVE = next(c for c in TABLE1_CVES if c.cve_id == "CVE-2022-41883")


class FakeIncident:
    def __init__(self, culprits, kind="divergence", incident_id="inc-1"):
        self.incident_id = incident_id
        self.kind = kind
        self.suspected_culprits = tuple(culprits)


class FakeInjector:
    detection = "incident"

    def __init__(self, targets=("v1",), detection=None):
        self.targets = list(targets)
        if detection is not None:
            self.detection = detection


CLEAN_COUNTS = {"ok": 20, "corrupt": 0, "failed": 0, "timeout": 0, "shed": 0}


class TestJudge:
    def test_masked_when_incident_names_target_and_service_clean(self):
        verdict = judge(
            "cve:x", "cve", FakeInjector(["v1"]),
            WindowObservation(incidents=[FakeIncident(["v1"])], counts=dict(CLEAN_COUNTS)),
        )
        assert verdict.outcome == OUTCOME_MASKED
        assert verdict.culprit_correct is True
        assert verdict.passed

    def test_detected_but_not_masked_when_requests_failed(self):
        counts = dict(CLEAN_COUNTS, failed=2)
        verdict = judge(
            "kill", "worker-kill", FakeInjector(["v1"]),
            WindowObservation(incidents=[FakeIncident(["v1"], kind="crash")], counts=counts),
        )
        assert verdict.outcome == OUTCOME_DETECTED
        assert verdict.passed  # detected-with-impact still holds the floor

    def test_missed_when_no_incident(self):
        verdict = judge(
            "cve:x", "cve", FakeInjector(["v1"]),
            WindowObservation(incidents=[], counts=dict(CLEAN_COUNTS)),
        )
        assert verdict.outcome == OUTCOME_MISSED
        assert not verdict.passed

    def test_silent_corruption_beats_detection(self):
        # One wrong answer served to a client fails the campaign even
        # though an incident fired: the voting layer exists precisely so
        # detection implies the served output stayed clean.
        counts = dict(CLEAN_COUNTS, corrupt=1)
        verdict = judge(
            "cve:x", "cve", FakeInjector(["v1"]),
            WindowObservation(incidents=[FakeIncident(["v1"])], counts=counts),
        )
        assert verdict.outcome == OUTCOME_SILENT_CORRUPTION
        assert not verdict.passed

    def test_corrupted_probe_is_silent_corruption(self):
        verdict = judge(
            "cve:x", "cve", FakeInjector(["v1"]),
            WindowObservation(
                incidents=[FakeIncident(["v1"])],
                counts=dict(CLEAN_COUNTS),
                probes=[ProbeResult(kind="malicious", completed=True, corrupted=True)],
            ),
        )
        assert verdict.outcome == OUTCOME_SILENT_CORRUPTION

    def test_wrong_culprit_fails_even_when_detected(self):
        verdict = judge(
            "cve:x", "cve", FakeInjector(["v1"]),
            WindowObservation(
                incidents=[FakeIncident(["innocent"])], counts=dict(CLEAN_COUNTS)
            ),
        )
        assert verdict.outcome == OUTCOME_MASKED  # detected, service clean
        assert verdict.culprit_correct is False
        assert not verdict.passed  # ...but attribution named only innocents

    def test_blown_recovery_budget_fails(self):
        verdict = judge(
            "kill", "worker-kill", FakeInjector(["v1"]),
            WindowObservation(
                incidents=[FakeIncident(["v1"], kind="crash")],
                counts=dict(CLEAN_COUNTS),
                recovered=False,
            ),
        )
        assert not verdict.passed

    def test_broken_audit_chain_fails(self):
        verdict = judge(
            "cve:x", "cve", FakeInjector(["v1"]),
            WindowObservation(
                incidents=[FakeIncident(["v1"])],
                counts=dict(CLEAN_COUNTS),
                chain_ok=False,
                chain_error="digest mismatch",
            ),
        )
        assert not verdict.passed

    def test_telemetry_mode_uses_injector_verdict(self):
        class TelemetryInjector(FakeInjector):
            detection = "telemetry"

            def telemetry_verdict(self, observation):
                return True, True, "heartbeat stalled"

        verdict = judge(
            "wedge", "worker-wedge", TelemetryInjector(["v1"]),
            WindowObservation(counts=dict(CLEAN_COUNTS)),
        )
        assert verdict.outcome == OUTCOME_MASKED
        assert verdict.detail == "heartbeat stalled"

    def test_direct_mode_reads_attack_result(self):
        class DirectInjector(FakeInjector):
            detection = "direct"
            direct_detected = True
            direct_detail = "rollback rejected"

        verdict = judge(
            "rollback", "storage", DirectInjector([]),
            WindowObservation(counts=dict(CLEAN_COUNTS)),
        )
        assert verdict.outcome == OUTCOME_MASKED
        assert verdict.passed

    def test_verdict_json_round_trip_fields(self):
        verdict = judge(
            "cve:x", "cve", FakeInjector(["v1"]),
            WindowObservation(incidents=[FakeIncident(["v1"])], counts=dict(CLEAN_COUNTS)),
        )
        doc = verdict.to_json()
        assert doc["outcome"] == OUTCOME_MASKED
        assert doc["passed"] is True
        assert doc["targets"] == ["v1"]


@pytest.fixture(scope="module")
def chaos_system(small_resnet):
    return deploy(small_resnet, {0: 3, 1: 3, 2: 3}, seed=1)


def roster():
    return [
        CveInjector(case=CORRUPTION_CVE),
        RollbackInjector(),
        ForkInjector(),
        SlowVariantInjector(added_latency_s=0.08),
    ]


class TestPlanning:
    def test_same_seed_same_plan(self, chaos_system, small_input):
        feeds = {"input": small_input}
        engine_a = chaos_system.serving_engine(policy=ServingPolicy(num_workers=2))
        engine_b = chaos_system.serving_engine(policy=ServingPolicy(num_workers=2))
        plan_a = ChaosCampaign(
            chaos_system, engine_a, roster(), benign_feeds=feeds, seed=99
        ).plan()
        plan_b = ChaosCampaign(
            chaos_system, engine_b, roster(), benign_feeds=feeds, seed=99
        ).plan()
        assert [p.to_json() for p in plan_a] == [p.to_json() for p in plan_b]
        assert len(plan_a) == 4

    def test_plan_is_cached(self, chaos_system, small_input):
        campaign = ChaosCampaign(
            chaos_system,
            chaos_system.serving_engine(),
            roster(),
            benign_feeds={"input": small_input},
            seed=5,
        )
        assert campaign.plan() is campaign.plan()

    def test_worker_faults_unsupported_in_process_are_skipped(
        self, chaos_system, small_input
    ):
        campaign = ChaosCampaign(
            chaos_system,
            chaos_system.serving_engine(),
            [WorkerKillInjector(), RollbackInjector()],
            benign_feeds={"input": small_input},
            seed=0,
        )
        names = [p.name for p in campaign.plan()]
        assert names == ["storage-rollback"]

    def test_halt_response_rejected(self, small_resnet, small_input):
        system = deploy(small_resnet, {1: 3}, seed=1, response=ResponseAction.HALT)
        with pytest.raises(ValueError, match="HALT"):
            ChaosCampaign(
                system,
                system.serving_engine(),
                roster(),
                benign_feeds={"input": small_input},
            )


class TestInjectorRestore:
    def test_cve_restore_reverts_to_clean_outputs(self, small_resnet, small_input):
        system = deploy(small_resnet, {0: 3, 1: 3, 2: 3}, seed=0)
        reference = system.infer({"input": np.array(small_input, copy=True)})
        engine = system.serving_engine()
        target = InjectionTarget(
            system=system, engine=engine, benign_feeds={"input": small_input}
        )
        injector = CveInjector(case=CORRUPTION_CVE)
        assert injector.supported(target)
        injector.resolve(target, np.random.default_rng(0))
        probe = injector.probes(target)[0]
        name = next(iter(reference))
        with injector.on(target):
            # Armed: the crafted probe diverges (and is detected).
            system.infer({k: np.array(v, copy=True) for k, v in probe.items()})
            assert system.monitor.incidents()
        # Restored: the same probe now computes cleanly on all variants.
        incidents_before = len(system.monitor.incidents())
        out = system.infer({k: np.array(v, copy=True) for k, v in probe.items()})
        assert len(system.monitor.incidents()) == incidents_before
        benign = system.infer({"input": np.array(small_input, copy=True)})
        assert np.allclose(benign[name], reference[name], rtol=1e-2, atol=1e-3)
        assert np.isfinite(out[name]).all()
        # Restore is idempotent.
        injector.restore(target)

    def test_slow_variant_restore_resets_latency(self, small_resnet, small_input):
        system = deploy(small_resnet, {1: 3}, seed=2)
        target = InjectionTarget(system=system, engine=system.serving_engine())
        injector = SlowVariantInjector(added_latency_s=0.05)
        injector.resolve(target, np.random.default_rng(3))
        victim = injector.targets[0]
        host = target.connection(victim).host
        assert host.simulated_latency == 0.0
        injector.inject(target)
        assert host.simulated_latency == 0.05 and host.realtime_latency
        injector.restore(target)
        assert host.simulated_latency == 0.0 and not host.realtime_latency
        injector.restore(target)  # idempotent
        assert host.simulated_latency == 0.0


class TestLiveCampaign:
    def test_inprocess_campaign_holds_the_floor(self, small_resnet, small_input):
        system = deploy(small_resnet, {0: 3, 1: 3, 2: 3}, seed=1)
        engine = system.serving_engine(policy=ServingPolicy(num_workers=2))
        campaign = ChaosCampaign(
            system,
            engine,
            roster(),
            benign_feeds={"input": small_input},
            seed=42,
            window_s=1.0,
            settle_s=0.2,
            recovery_timeout_s=10.0,
            rate_rps=6.0,
            deadline_s=3.0,
        )
        report = campaign.run()
        assert report.passed, [v.to_json() for v in report.failures()]
        assert len(report.verdicts) == 4
        # The CVE must be *masked* with correct attribution, not merely
        # detected: voting kept every served output clean.
        cve = next(v for v in report.verdicts if v.fault_class == "cve")
        assert cve.outcome == OUTCOME_MASKED
        assert cve.culprit_correct is True
        assert cve.incident_kinds  # divergence incidents were raised
        # Zero corrupt samples anywhere in the campaign.
        assert report.traffic is not None
        per_class = report.per_class()
        assert all(row["silent-corruption"] == 0 for row in per_class.values())
        # Chaos metrics flowed.
        injections = engine.registry.counter(
            "mvtee_chaos_injections_total", "Chaos injections applied by fault class"
        )
        assert injections.total() == 4
        # The deployment is back at full strength for whoever runs next.
        assert len(system.live_variants()[1]) == 3

    def test_error_verdict_on_uninjectable_fault(self, small_resnet, small_input):
        system = deploy(small_resnet, {1: 3}, seed=3)
        engine = system.serving_engine(policy=ServingPolicy(num_workers=2))

        class BrokenInjector(RollbackInjector):
            def inject(self, target):
                raise InjectionError("nothing to attack")

        campaign = ChaosCampaign(
            system,
            engine,
            [BrokenInjector()],
            benign_feeds={"input": small_input},
            seed=0,
            window_s=0.3,
            settle_s=0.1,
            recovery_timeout_s=4.0,
            rate_rps=6.0,
        )
        report = campaign.run()
        assert report.verdicts[0].outcome == OUTCOME_ERROR
        assert not report.passed
