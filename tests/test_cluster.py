"""Process-cluster execution: workers, shm lane, supervision, restarts.

The cluster moves each variant host into its own forked OS process; the
contract under test is that nothing observable changes for correct
executions (same outputs as in-process mode) while *real* process death
(SIGKILL) behaves exactly like the crashed-TEE path the monitor already
implements: typed failure, crash incident with pid/exit code, restart
within policy, no orphan processes or shared-memory segments.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterSupervisor,
    ProcessDispatcher,
    RestartPolicy,
    WorkerCrashed,
)
from repro.cluster import shm
from repro.cluster.supervisor import _LIVE_SUPERVISORS, _atexit_shutdown_all
from repro.mvx import MonitorError, MvteeSystem, ResponseAction
from repro.observability import Sinks
from repro.mvx.variant_host import VariantUnavailable
from repro.mvx.wire import decode_message, encode_message
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import (
    KIND_WORKER_EXITED,
    KIND_WORKER_RESTARTED,
    KIND_WORKER_STARTED,
    FlightRecorder,
)
from repro.serving import ServingPolicy, TicketState


def fast_policy(**overrides) -> RestartPolicy:
    defaults = dict(backoff_base_s=0.01, backoff_max_s=0.05, graceful_timeout_s=0.5)
    defaults.update(overrides)
    return RestartPolicy(**defaults)


def deploy_cluster(model, *, policy=None, recorder=None, metrics=None, mvx={1: 3}):
    return MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions=mvx,
        seed=0,
        verify_partitions=False,
        verify_variants=False,
        execution="process",
        restart_policy=policy if policy is not None else fast_policy(),
        sinks=Sinks(metrics=metrics, recorder=recorder),
    )


def wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Wire framing (satellite: zero-size and non-contiguous tensors)
# ----------------------------------------------------------------------


class TestWireRoundTrip:
    def test_zero_size_tensor(self):
        empty = np.zeros((0, 4), dtype=np.float32)
        _, _, tensors = decode_message(encode_message("t", {}, {"e": empty}))
        assert tensors["e"].shape == (0, 4)
        assert tensors["e"].dtype == np.float32

    def test_transposed_view(self):
        base = np.arange(12, dtype=np.float64).reshape(3, 4)
        view = base.T
        assert not view.flags["C_CONTIGUOUS"]
        _, _, tensors = decode_message(encode_message("t", {}, {"v": view}))
        np.testing.assert_array_equal(tensors["v"], view)

    def test_strided_slice_view(self):
        base = np.arange(40, dtype=np.int32).reshape(8, 5)
        view = base[::2, 1:4]
        _, _, tensors = decode_message(encode_message("t", {}, {"s": view}))
        np.testing.assert_array_equal(tensors["s"], view)


# ----------------------------------------------------------------------
# Shared-memory lane
# ----------------------------------------------------------------------


class TestShmLane:
    def test_small_tensor_stays_inline(self):
        registry = MetricsRegistry()
        headers, inline = shm.export_tensors(
            {"x": np.ones(8, dtype=np.float32)}, registry=registry
        )
        assert headers == [] and "x" in inline

    def test_large_tensor_round_trips_and_unlinks(self):
        registry = MetricsRegistry()
        big = np.random.default_rng(0).normal(size=(256, 256)).astype(np.float32)
        headers, inline = shm.export_tensors(
            {"big": big}, threshold=1024, registry=registry, direction="request"
        )
        assert inline == {} and len(headers) == 1
        assert headers[0]["shm"] in shm.tracked_segment_names()
        back = shm.import_tensors(headers, registry=registry, direction="request")
        np.testing.assert_array_equal(back["big"], big)
        # Receiver is the terminal owner: segment gone, tracking clean.
        assert headers[0]["shm"] not in shm.tracked_segment_names()
        counter = registry.counter("mvtee_shm_bytes_total")
        assert counter.value(direction="request") == 2 * big.nbytes

    def test_cleanup_segments_sweeps_leaks(self):
        headers, _ = shm.export_tensors(
            {"leak": np.zeros(4096, dtype=np.float64)},
            threshold=1,
            registry=MetricsRegistry(),
        )
        assert shm.tracked_segment_names()
        assert shm.cleanup_segments() >= 1
        assert headers[0]["shm"] not in shm.tracked_segment_names()


# ----------------------------------------------------------------------
# Process-mode deployment
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster_system(small_resnet):
    system = deploy_cluster(small_resnet, recorder=FlightRecorder())
    yield system
    system.shutdown()


class TestProcessDeployment:
    def test_workers_forked_per_variant(self, cluster_system):
        workers = cluster_system.cluster.workers()
        assert len(workers) == 5  # 1 + 3 + 1 variants
        pids = {w.pid for w in workers.values()}
        assert len(pids) == 5 and os.getpid() not in pids

    def test_outputs_match_in_process(
        self, cluster_system, small_input, small_resnet_reference
    ):
        outputs = cluster_system.infer({"input": small_input})
        name = next(iter(small_resnet_reference))
        assert np.allclose(outputs[name], small_resnet_reference[name], atol=1e-2)

    def test_worker_ping_reports_service(self, cluster_system, small_input):
        cluster_system.infer({"input": small_input})
        worker = next(iter(cluster_system.cluster.workers().values()))
        meta = worker.ping()
        assert meta is not None
        assert meta["pid"] == worker.pid
        assert meta["served"] >= 1 and not meta["crashed"]

    def test_lifecycle_events_audited(self, cluster_system):
        started = cluster_system.monitor.recorder.events(KIND_WORKER_STARTED)
        assert len(started) >= 5
        assert all(e.data["pid"] for e in started)

    def test_rejects_explicit_transport_combo(self, small_resnet):
        from repro.mvx.transport import DirectTransport

        with pytest.raises(ValueError, match="ProcessTransport"):
            MvteeSystem.deploy(
                small_resnet,
                num_partitions=2,
                verify_partitions=False,
                verify_variants=False,
                execution="process",
                transport=DirectTransport(),
            )

    def test_rejects_unknown_execution(self, small_resnet):
        with pytest.raises(ValueError, match="execution"):
            MvteeSystem.deploy(small_resnet, execution="thread")


# ----------------------------------------------------------------------
# Crash isolation and supervision
# ----------------------------------------------------------------------


class TestCrashSupervision:
    def test_sigkill_mid_inference_is_typed_and_recovered(self, small_resnet, small_input):
        """SIGKILL one replica mid-batch: the other variants' results
        survive, the crash incident carries pid/exit code, and the
        supervisor restores the pool within the restart budget."""
        recorder = FlightRecorder()
        system = deploy_cluster(small_resnet, recorder=recorder)
        try:
            system.monitor.response_action = ResponseAction.DROP_VARIANT
            cluster = system.cluster
            victim_id = sorted(
                v for v in cluster.workers() if v.startswith("p1-")
            )[1]
            victim = cluster.worker(victim_id)
            victim_pid = victim.pid
            # Make the victim slow enough that the kill lands mid-exchange.
            victim.configure(simulated_latency=0.5, realtime_latency=True)
            killer = threading.Timer(0.1, os.kill, (victim_pid, signal.SIGKILL))
            killer.start()
            try:
                outputs = system.infer({"input": small_input})
            finally:
                killer.join()
            # 2-of-3 replicas agree: the batch is unharmed.
            assert outputs
            incident = system.monitor.incident_store.latest()
            assert incident.kind == "crash"
            assert victim_id in incident.suspected_culprits
            assert f"pid={victim_pid}" in incident.error
            assert "exit_code=-9" in incident.error
            # The supervisor refills the slot (fresh enclave, fresh worker).
            assert wait_until(lambda: cluster.live_worker_count() == 5)
            assert cluster.worker(victim_id).pid != victim_pid
            restarted = recorder.events(KIND_WORKER_RESTARTED)
            assert any(e.data["variant"] == victim_id for e in restarted)
            # The restored pool serves (and votes) again.
            system.infer({"input": small_input})
            assert len(system.monitor.stage_connections(1)) == 3
        finally:
            system.shutdown()

    def test_fast_path_worker_death_fails_like_in_process_crash(
        self, small_resnet, small_input
    ):
        """Killing the single variant of a fast-path partition fails the
        request with the same typed MonitorError as an in-process
        crash; the in-flight request is never silently retried."""
        system = deploy_cluster(small_resnet)
        try:
            victim = system.cluster.worker(
                next(v for v in system.cluster.workers() if v.startswith("p0-"))
            )
            os.kill(victim.pid, signal.SIGKILL)
            with pytest.raises(MonitorError):
                system.infer({"input": small_input})
            assert system.monitor.crash_events()
        finally:
            system.shutdown()

    def test_idle_death_detected_by_heartbeat(self, small_resnet):
        """A worker killed between requests is still detected, reported
        once and restarted -- no in-flight exchange required."""
        recorder = FlightRecorder()
        system = deploy_cluster(small_resnet, recorder=recorder)
        try:
            cluster = system.cluster
            victim_id = sorted(v for v in cluster.workers() if v.startswith("p1-"))[0]
            victim_pid = cluster.worker(victim_id).pid
            os.kill(victim_pid, signal.SIGKILL)
            assert wait_until(
                lambda: cluster.worker(victim_id) is not None
                and cluster.worker(victim_id).pid != victim_pid
            )
            exits = [
                e
                for e in recorder.events(KIND_WORKER_EXITED)
                if e.data.get("pid") == victim_pid
            ]
            assert len(exits) == 1 and exits[0].data["exit_code"] == -9
            crash_incidents = [
                i for i in system.monitor.incident_store.incidents() if i.kind == "crash"
            ]
            assert len(crash_incidents) == 1
        finally:
            system.shutdown()

    def test_restart_budget_exhaustion_abandons_slot(self, small_resnet):
        policy = fast_policy(max_restarts=2, window_s=60.0)
        system = deploy_cluster(small_resnet, policy=policy)
        try:
            system.monitor.response_action = ResponseAction.DROP_VARIANT
            cluster = system.cluster
            victim_id = sorted(v for v in cluster.workers() if v.startswith("p1-"))[2]
            killed_pids: set[int] = set()

            def fresh_worker_or_abandoned():
                if victim_id in cluster.abandoned_slots():
                    return True
                worker = cluster.worker(victim_id)
                return (
                    worker is not None
                    and worker.is_alive()
                    and worker.pid not in killed_pids
                )

            for _ in range(policy.max_restarts + 1):
                assert wait_until(fresh_worker_or_abandoned)
                if victim_id in cluster.abandoned_slots():
                    break
                worker = cluster.worker(victim_id)
                killed_pids.add(worker.pid)
                os.kill(worker.pid, signal.SIGKILL)
            assert wait_until(lambda: victim_id in cluster.abandoned_slots())
            assert cluster.worker(victim_id) is None
            registry = cluster._registry
            assert (
                registry.counter("mvtee_worker_restarts_total").value(
                    variant=victim_id
                )
                == policy.max_restarts
            )
        finally:
            system.shutdown()

    def test_worker_crash_metric_and_heartbeat_gauge(self, small_resnet):
        metrics = MetricsRegistry()
        system = deploy_cluster(small_resnet, metrics=metrics)
        try:
            cluster = system.cluster
            victim_id = sorted(v for v in cluster.workers() if v.startswith("p1-"))[0]
            gauge = metrics.gauge("mvtee_worker_heartbeat_age_seconds")
            assert wait_until(
                lambda: any(victim_id in labels for _, labels, _v in gauge.samples())
            )
            os.kill(cluster.worker(victim_id).pid, signal.SIGKILL)
            assert wait_until(
                lambda: metrics.counter("mvtee_worker_restarts_total").value(
                    variant=victim_id
                )
                == 1
            )
        finally:
            system.shutdown()


# ----------------------------------------------------------------------
# Shutdown hygiene (satellite: SIGKILL fallback + atexit sweep)
# ----------------------------------------------------------------------


class TestShutdownHygiene:
    def test_graceful_stop_exits_zero(self, small_resnet):
        system = deploy_cluster(small_resnet, mvx={})
        workers = list(system.cluster.workers().values())
        pids = [w.pid for w in workers]
        system.shutdown()
        assert all(not w.is_alive() for w in workers)
        assert all(w.exitcode == 0 for w in workers)
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # process is gone, not a zombie

    def test_wedged_worker_is_hard_killed(self, small_resnet, small_input):
        """A worker stuck in a long kernel ignores the stop request and
        is SIGTERM/SIGKILLed after the graceful timeout."""
        system = deploy_cluster(small_resnet, mvx={})
        worker = system.cluster.worker(
            next(v for v in system.cluster.workers() if v.startswith("p0-"))
        )
        worker.configure(simulated_latency=30.0, realtime_latency=True)

        # Wedge the worker: a real inference sleeps 30s inside the child
        # while holding the pipe, so stop() contends for the lock.
        def wedged_infer():
            with pytest.raises((MonitorError, WorkerCrashed, VariantUnavailable)):
                system.infer({"input": small_input})

        wedger = threading.Thread(target=wedged_infer, daemon=True)
        wedger.start()
        time.sleep(0.3)  # let the exchange reach the child's sleep
        start = time.monotonic()
        system.shutdown()
        assert time.monotonic() - start < 10.0
        assert not worker.is_alive()
        assert worker.exitcode != 0  # killed, not graceful
        wedger.join(timeout=10.0)

    def test_atexit_sweep_covers_live_supervisors(self, small_resnet):
        system = deploy_cluster(small_resnet, mvx={})
        assert system.cluster in _LIVE_SUPERVISORS
        workers = list(system.cluster.workers().values())
        # The sweep is global: shield other fixtures' supervisors so this
        # test only tears down its own deployment.
        others = set(_LIVE_SUPERVISORS) - {system.cluster}
        for other in others:
            _LIVE_SUPERVISORS.discard(other)
        try:
            _atexit_shutdown_all()  # what a crashed run's interpreter exit runs
        finally:
            for other in others:
                _LIVE_SUPERVISORS.add(other)
        assert all(not w.is_alive() for w in workers)
        assert system.cluster not in _LIVE_SUPERVISORS
        assert shm.tracked_segment_names() == set()
        system.cluster = None  # already torn down


# ----------------------------------------------------------------------
# Serving engine over the cluster
# ----------------------------------------------------------------------


class TestServingOverCluster:
    def test_engine_uses_cluster_dispatcher(self, cluster_system):
        engine = cluster_system.serving_engine()
        assert isinstance(engine._executor, ProcessDispatcher)
        assert engine._executor.cluster is cluster_system.cluster

    def test_engine_serves_over_workers(self, cluster_system, small_input):
        with cluster_system.serving_engine() as engine:
            tickets = [engine.submit({"input": small_input}) for _ in range(4)]
            results = [t.result(timeout=60.0) for t in tickets]
        assert all(r for r in results)

    def test_sigkill_mid_batch_with_overlapping_workers(
        self, small_resnet, small_input
    ):
        """SIGKILL a worker while num_workers>1 batches are in flight:
        the affected tickets fail with the typed monitor error, the
        supervisor refills the slot, and the engine keeps serving."""
        system = deploy_cluster(small_resnet)
        try:
            policy = ServingPolicy(capacity=64, max_batch_size=2, num_workers=2)
            with system.serving_engine(policy=policy) as engine:
                # Warm: the pipeline serves before the fault.
                assert engine.submit({"input": small_input}).result(timeout=60.0)
                victim = system.cluster.worker(
                    next(
                        v
                        for v in system.cluster.workers()
                        if v.startswith("p0-")
                    )
                )
                # Slow the doomed stage so batches are mid-flight when
                # the process dies.
                victim.configure(simulated_latency=0.2, realtime_latency=True)
                tickets = [engine.submit({"input": small_input}) for _ in range(6)]
                time.sleep(0.1)  # let the first batch reach the worker
                os.kill(victim.pid, signal.SIGKILL)
                outcomes = [t.exception(timeout=60.0) for t in tickets]
                failures = [e for e in outcomes if e is not None]
                # Typed failures only -- nothing hangs, nothing leaks an
                # untyped error to a caller.
                assert failures
                assert all(isinstance(e, MonitorError) for e in failures)
                # The supervisor restarts the dead worker...
                assert wait_until(lambda: system.cluster.live_worker_count() == 5)
                # ...and the same engine serves again, no restart of its own.
                fresh = engine.submit({"input": small_input})
                assert fresh.result(timeout=60.0)
                assert fresh.state is TicketState.DONE
        finally:
            system.shutdown()
