"""Combined attestation and update cost accounting."""

import pytest

from repro.mvx import MonitorError, combined_attestation
from repro.simulation import CostModel
from repro.simulation.updates import full_update_cost, partial_update_cost
from repro.tee.attestation import Verifier, fresh_nonce


class TestCombinedAttestation:
    def test_enumerates_all_variants(self, deployed_system):
        result = combined_attestation(
            deployed_system.monitor, deployed_system.monitor.verifier, fresh_nonce()
        )
        assert len(result.variants) == 5
        assert result.monitor_measurement == deployed_system.monitor.enclave.measurement

    def test_ledger_head_binds_updates(self, small_resnet):
        from repro.mvx import MvteeSystem

        system = MvteeSystem.deploy(
            small_resnet, num_partitions=3, mvx_partitions={1: 3}, seed=0,
            verify_partitions=False, verify_variants=False,
        )
        before = combined_attestation(
            system.monitor, system.monitor.verifier, fresh_nonce()
        )
        system.update_partition(1, seed=21)
        after = combined_attestation(
            system.monitor, system.monitor.verifier, fresh_nonce()
        )
        assert before.ledger_head != after.ledger_head
        assert set(before.variant_ids()) != set(after.variant_ids())

    def test_untrusting_verifier_rejects(self, deployed_system):
        stranger = Verifier()  # no collateral at all
        with pytest.raises(MonitorError, match="combined attestation failed"):
            combined_attestation(deployed_system.monitor, stranger, fresh_nonce())

    def test_nonce_bound(self, deployed_system):
        # Two calls with different nonces both verify (fresh bindings).
        verifier = deployed_system.monitor.verifier
        a = combined_attestation(deployed_system.monitor, verifier, fresh_nonce())
        b = combined_attestation(deployed_system.monitor, verifier, fresh_nonce())
        assert a.ledger_head == b.ledger_head


class TestUpdateCosts:
    COST = CostModel()

    def test_partial_cheaper_than_full(self):
        partial = partial_update_cost(self.COST, variants=3, artifact_bytes=10**7)
        full = full_update_cost(self.COST, total_variants=9, artifact_bytes=10**7)
        assert partial.fresh_total < full.fresh_total
        assert not partial.service_interrupted
        assert full.service_interrupted

    def test_soundness_premium_is_tee_init(self):
        update = partial_update_cost(self.COST, variants=4, artifact_bytes=10**6)
        assert update.soundness_premium == pytest.approx(4 * self.COST.tee_init_seconds)

    def test_load_cost_scales_with_artifact(self):
        small = partial_update_cost(self.COST, variants=1, artifact_bytes=10**6)
        large = partial_update_cost(self.COST, variants=1, artifact_bytes=10**8)
        assert large.load_seconds > 10 * small.load_seconds
        # ...and loading is unavoidable under either policy (the paper's
        # point (ii) for rejecting reuse).
        assert large.reuse_total > small.reuse_total
