"""Per-partition consistency tuning (§4.3 precision/recall balance)."""

import numpy as np
import pytest

from repro.mvx import MonitorError, MvteeSystem
from repro.mvx.config import MvxConfig
from repro.mvx.consistency import ConsistencyPolicy


@pytest.fixture()
def noisy_system(small_resnet):
    """Partition 1 carries a noise-loosened policy; global stays strict."""
    config = MvxConfig.selective(
        3,
        {1: 3},
        consistency={
            "min_cosine": 0.9999,
            "per_partition": {1: {"min_cosine": 0.9, "max_abs": 1.0,
                                  "max_mse": 1.0, "rtol": 0.5, "atol": 0.5}},
        },
    )
    return MvteeSystem.deploy(
        small_resnet, num_partitions=3, config=config, seed=0,
        verify_partitions=False, verify_variants=False,
    )


class TestPerPartitionPolicies:
    def test_policies_installed(self, noisy_system):
        monitor = noisy_system.monitor
        assert monitor.policy_for(0).min_cosine == 0.9999
        assert monitor.policy_for(1).min_cosine == 0.9
        assert monitor.policy_for(1).max_abs == 1.0
        assert monitor.policy_for(2) is monitor.policy_for(0)

    def test_loose_partition_tolerates_noise(self, noisy_system, small_input):
        """A mildly perturbed variant passes the loosened checkpoint."""
        victim = noisy_system.monitor.stage_connections(1)[0]
        runtime = victim.host.runtime
        assert runtime.kernel_context is not None

        def small_noise(node, inputs, outputs):
            rng = np.random.default_rng(0)
            return [
                out + rng.normal(scale=5e-3, size=out.shape).astype(out.dtype)
                for out in outputs
            ]

        runtime.kernel_context.op_hooks["Conv"] = small_noise
        noisy_system.infer({"input": small_input})  # must not halt
        assert not noisy_system.monitor.divergence_events()

    def test_strict_default_flags_same_noise(self, small_resnet, small_input):
        system = MvteeSystem.deploy(
            small_resnet,
            num_partitions=3,
            config=MvxConfig.selective(
                3, {1: 3},
                consistency={"min_cosine": 0.999999999, "max_abs": 1e-7,
                             "max_mse": 1e-12, "atol": 1e-8, "rtol": 1e-8},
            ),
            seed=0,
            verify_partitions=False,
            verify_variants=False,
        )
        victim = system.monitor.stage_connections(1)[0]
        runtime = victim.host.runtime

        def small_noise(node, inputs, outputs):
            rng = np.random.default_rng(0)
            return [
                out + rng.normal(scale=5e-3, size=out.shape).astype(out.dtype)
                for out in outputs
            ]

        runtime.kernel_context.op_hooks["Conv"] = small_noise
        with pytest.raises(MonitorError):
            system.infer({"input": small_input})

    def test_config_json_carries_overrides(self, noisy_system):
        config = noisy_system.config
        restored = MvxConfig.from_json(config.to_json())
        overrides = restored.consistency["per_partition"]
        entry = overrides.get(1, overrides.get("1"))
        assert entry["min_cosine"] == 0.9

    def test_large_attack_still_detected_under_loose_policy(self, noisy_system, small_input):
        from repro.runtime.faults import FaultInjector

        victim = noisy_system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        with pytest.raises(MonitorError):
            noisy_system.infer({"input": small_input})
        assert noisy_system.monitor.divergence_events()
