"""AES block cipher: FIPS-197 vectors and structural checks."""

import pytest

from repro.crypto.aes import AesBlockCipher


class TestAesVectors:
    def test_fips197_aes128(self):
        cipher = AesBlockCipher(bytes(range(16)))
        out = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_fips197_aes192(self):
        cipher = AesBlockCipher(bytes(range(24)))
        out = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_fips197_aes256(self):
        cipher = AesBlockCipher(bytes(range(32)))
        out = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out.hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_sp800_38a_aes128_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        block = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert AesBlockCipher(key).encrypt_block(block).hex() == (
            "3ad77bb40d7a3660a89ecaf32466ef97"
        )


class TestAesInterface:
    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError, match="AES key"):
            AesBlockCipher(b"short")

    def test_rejects_bad_block_length(self):
        with pytest.raises(ValueError, match="16 bytes"):
            AesBlockCipher(bytes(16)).encrypt_block(b"tiny")

    def test_deterministic(self):
        cipher = AesBlockCipher(bytes(16))
        assert cipher.encrypt_block(bytes(16)) == cipher.encrypt_block(bytes(16))

    def test_different_keys_different_output(self):
        a = AesBlockCipher(bytes(16)).encrypt_block(bytes(16))
        b = AesBlockCipher(bytes([1] * 16)).encrypt_block(bytes(16))
        assert a != b


class TestCtrKeystream:
    def test_length_exact(self):
        cipher = AesBlockCipher(bytes(16))
        for n in (0, 1, 15, 16, 17, 100):
            assert len(cipher.ctr_keystream(bytes(16), n)) == n

    def test_prefix_property(self):
        cipher = AesBlockCipher(bytes(16))
        long = cipher.ctr_keystream(bytes(16), 64)
        short = cipher.ctr_keystream(bytes(16), 20)
        assert long[:20] == short

    def test_counter_increments_across_blocks(self):
        cipher = AesBlockCipher(bytes(16))
        ks = cipher.ctr_keystream(bytes(16), 32)
        assert ks[:16] != ks[16:]

    def test_counter_wraps_32bit(self):
        cipher = AesBlockCipher(bytes(16))
        start = bytes(12) + b"\xff\xff\xff\xff"
        ks = cipher.ctr_keystream(start, 32)
        # second block uses counter 0
        expected_second = cipher.encrypt_block(bytes(16))
        assert ks[16:] == expected_second

    def test_rejects_bad_start_block(self):
        with pytest.raises(ValueError, match="16 bytes"):
            AesBlockCipher(bytes(16)).ctr_keystream(bytes(8), 16)
