"""ChaCha20-Poly1305: RFC 8439 vectors and security properties."""

import numpy as np
import pytest

from repro.crypto.chacha import (
    ChaCha20Poly1305,
    ChaChaAuthError,
    chacha20_xor,
    poly1305_mac,
)

SUNSCREEN = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)


class TestChaCha20Vectors:
    def test_rfc8439_section_2_4_2(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        ct = chacha20_xor(key, nonce, 1, SUNSCREEN)
        assert ct.hex().startswith("6e2e359a2568f98041ba0728dd0d6981")
        assert ct.hex().endswith("874d")

    def test_xor_is_involution(self):
        key = bytes(32)
        nonce = bytes(12)
        data = bytes(range(256))
        assert chacha20_xor(key, nonce, 7, chacha20_xor(key, nonce, 7, data)) == data

    def test_counter_offsets_differ(self):
        key, nonce = bytes(32), bytes(12)
        assert chacha20_xor(key, nonce, 0, bytes(64)) != chacha20_xor(key, nonce, 1, bytes(64))

    def test_empty_data(self):
        assert chacha20_xor(bytes(32), bytes(12), 1, b"") == b""

    def test_bad_key_nonce_rejected(self):
        with pytest.raises(ValueError):
            chacha20_xor(bytes(16), bytes(12), 0, b"x")
        with pytest.raises(ValueError):
            chacha20_xor(bytes(32), bytes(8), 0, b"x")


class TestPoly1305:
    def test_rfc8439_section_2_5_2(self):
        key = bytes.fromhex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
        )
        tag = poly1305_mac(key, b"Cryptographic Forum Research Group")
        assert tag.hex() == "a8061dc1305136c6c22b8baf0c0127a9"

    def test_distinct_messages_distinct_tags(self):
        key = bytes(range(32))
        assert poly1305_mac(key, b"a") != poly1305_mac(key, b"b")

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError):
            poly1305_mac(bytes(16), b"x")


class TestChaChaPolyAead:
    def test_rfc8439_section_2_8_2(self):
        key = bytes.fromhex(
            "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
        )
        nonce = bytes.fromhex("070000004041424344454647")
        aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
        aead = ChaCha20Poly1305(key)
        out = aead.encrypt(nonce, SUNSCREEN, aad)
        assert out[-16:].hex() == "1ae10b594f09e26a7e902ecbd0600691"
        assert aead.decrypt(nonce, out, aad) == SUNSCREEN

    def test_tamper_detected(self):
        aead = ChaCha20Poly1305(bytes(32))
        out = bytearray(aead.encrypt(bytes(12), b"tensor bytes"))
        out[3] ^= 0x80
        with pytest.raises(ChaChaAuthError):
            aead.decrypt(bytes(12), bytes(out))

    def test_aad_binding(self):
        aead = ChaCha20Poly1305(bytes(32))
        out = aead.encrypt(bytes(12), b"x", b"good")
        with pytest.raises(ChaChaAuthError):
            aead.decrypt(bytes(12), out, b"evil")

    def test_truncated_rejected(self):
        with pytest.raises(ChaChaAuthError, match="shorter"):
            ChaCha20Poly1305(bytes(32)).decrypt(bytes(12), b"abc")

    def test_large_tensor_payload_roundtrip(self):
        rng = np.random.default_rng(1)
        payload = rng.integers(0, 256, size=1_000_000, dtype=np.uint8).tobytes()
        aead = ChaCha20Poly1305(bytes(32))
        out = aead.encrypt(bytes(12), payload)
        assert aead.decrypt(bytes(12), out) == payload

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            ChaCha20Poly1305(bytes(16))
